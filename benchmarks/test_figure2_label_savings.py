"""Figure 2: expected absolute error vs label budget, per dataset.

The paper's central result: on every heavily-imbalanced ER pool, OASIS
reaches a given estimate precision with far fewer labels than Passive,
Stratified or static IS sampling; on the mildly-imbalanced cora pool it
is merely competitive; on the balanced tweets pool all methods tie.

One benchmark per dataset.  Each runs the full line-up (Passive,
Stratified, IS, OASIS at K = 30/60/120 — 10/20/40 for tweets, as in the
paper) for N_REPEATS seeded repeats, prints the abs-err and std-dev
series, and asserts the method ordering.  NaN curves mean the paper's
95%-defined rule failed — passive sampling often cannot produce an
estimate at all, which is itself the reproduced behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import aggregate_trajectories, format_series, run_trials

from conftest import N_REPEATS, run_once, standard_specs

# Per-dataset budget grids (the paper's x-axes, scaled ~5-10x down).
BUDGETS = {
    "amazon_google": [100, 250, 500, 1000, 2000, 4000],
    "restaurant": [100, 250, 500, 1000, 2000, 3000],
    "dblp_acm": [100, 250, 500, 1000, 2000],
    "abt_buy": [100, 250, 500, 1000, 2000, 4000],
    "cora": [100, 250, 500, 1000, 2000],
    "tweets100k": [50, 100, 250, 500, 1000],
}
OASIS_K = {
    "amazon_google": (30, 60, 120),
    "restaurant": (30, 60, 120),
    "dblp_acm": (30, 60, 120),
    "abt_buy": (30, 60, 120),
    "cora": (30, 60, 120),
    "tweets100k": (10, 20, 40),  # the paper's smaller grid for tweets
}


def _final_error(stats):
    """Last defined abs-err; +inf when the curve never became defined."""
    value = stats.final_abs_error()
    return np.inf if np.isnan(value) else value


def _run_figure2(pool, name):
    specs = standard_specs(pool, oasis_k=OASIS_K[name])
    results = run_trials(
        pool,
        specs,
        budgets=BUDGETS[name],
        n_repeats=N_REPEATS,
        random_state=2017,
    )
    return {spec.name: aggregate_trajectories(results[spec.name]) for spec in specs}


def _print_curves(name, stats_by_method, capsys):
    with capsys.disabled():
        print(f"\nFigure 2 [{name}]  (abs. err / std. dev vs label budget)")
        for method, stats in stats_by_method.items():
            print(format_series(
                f"  {method} abs_err", stats.budgets, stats.abs_error
            ))
            print(format_series(
                f"  {method} std_dev", stats.budgets, stats.std_dev
            ))


@pytest.mark.parametrize(
    "name", ["amazon_google", "restaurant", "dblp_acm", "abt_buy"]
)
def test_figure2_heavy_imbalance(benchmark, pools, capsys, name):
    """Heavily-imbalanced pools: OASIS wins outright."""
    pool = pools(name)
    stats = run_once(benchmark, lambda: _run_figure2(pool, name))
    _print_curves(name, stats, capsys)

    best_oasis = min(
        _final_error(stats[f"OASIS {k}"]) for k in OASIS_K[name]
    )
    passive = _final_error(stats["Passive"])
    stratified = _final_error(stats["Stratified"])
    importance = _final_error(stats["IS"])

    # OASIS beats the unbiased baselines decisively (they are often
    # not even defined at the final budget -> inf).
    assert best_oasis < passive
    assert best_oasis < stratified
    # And is at least competitive with static IS (the paper shows a
    # clear win; we allow slack for the reduced repeat count).
    assert best_oasis <= importance * 1.3


def test_figure2_cora_mild_imbalance(benchmark, pools, capsys):
    """cora: imbalance ~48 — OASIS competitive, not dominant."""
    pool = pools("cora")
    stats = run_once(benchmark, lambda: _run_figure2(pool, "cora"))
    _print_curves("cora", stats, capsys)

    best_oasis = min(_final_error(stats[f"OASIS {k}"]) for k in (30, 60, 120))
    others = [
        _final_error(stats["Passive"]),
        _final_error(stats["Stratified"]),
        _final_error(stats["IS"]),
    ]
    finite_others = [e for e in others if np.isfinite(e)]
    assert finite_others, "baselines should produce estimates on cora"
    # Competitive: within 2x of the best baseline.
    assert best_oasis <= 2.0 * min(finite_others)


def test_figure2_tweets_balanced(benchmark, pools, capsys):
    """tweets100k: balanced classes — all methods effectively tie."""
    pool = pools("tweets100k")
    stats = run_once(benchmark, lambda: _run_figure2(pool, "tweets100k"))
    _print_curves("tweets100k", stats, capsys)

    finals = {m: _final_error(s) for m, s in stats.items()}
    # Everything converges and nothing dominates: all errors small.
    assert all(np.isfinite(e) for e in finals.values())
    assert all(e < 0.06 for e in finals.values())


def test_figure2_headline_label_savings(benchmark, pools, capsys):
    """The paper's headline: up to 83% fewer labels at 1:3000 imbalance.

    Measured as: labels OASIS needs to reach the error Passive attains
    at its final budget, versus Passive's budget.
    """
    name = "amazon_google"
    pool = pools(name)
    stats = run_once(benchmark, lambda: _run_figure2(pool, name))

    passive = stats["Passive"]
    tolerance = passive.final_abs_error()
    if np.isnan(tolerance):
        # Passive never defined: infinite savings; the strongest
        # possible form of the paper's claim.
        with capsys.disabled():
            print(
                "\nFigure 2 headline: passive sampling produced no defined "
                "estimate at the final budget; OASIS savings are unbounded."
            )
        return

    passive_budget = passive.budgets[-1]
    oasis_budget = min(
        stats[f"OASIS {k}"].labels_to_reach(tolerance) for k in (30, 60, 120)
    )
    savings = 1.0 - oasis_budget / passive_budget
    with capsys.disabled():
        print(
            f"\nFigure 2 headline [{name}]: passive reaches abs err "
            f"{tolerance:.4f} at {passive_budget} labels; OASIS reaches it "
            f"at {oasis_budget:.0f} labels -> {100 * savings:.0f}% savings "
            f"(paper: 83% at imbalance 1:3000)"
        )
    assert savings > 0.5
