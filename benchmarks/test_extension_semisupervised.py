"""Extension benchmark: Welinder-style semi-supervised estimation.

The paper's related work (section 7) argues the semi-supervised
generative approach of Welinder et al. [26] is unsuited to ER
evaluation: it has no biased-sampling mechanism, so uniform labelling
under extreme imbalance sees almost no positives, and its parametric
score-distribution assumption introduces bias that labels cannot fix.
This benchmark quantifies both effects against OASIS on Abt-Buy.
"""

from __future__ import annotations

import numpy as np

from repro.core import OASISSampler
from repro.experiments import format_table
from repro.oracle import DeterministicOracle
from repro.samplers import SemiSupervisedEstimator
from repro.utils import spawn_rngs

from conftest import run_once

BUDGETS = [300, 1000, 3000]
N_REPEATS = 8


def _mean_errors(pool):
    true_f = pool.performance["f_measure"]
    rows = []
    for budget in BUDGETS:
        semi, oasis = [], []
        for rng in spawn_rngs(123, N_REPEATS):
            estimator = SemiSupervisedEstimator(threshold=0.5, random_state=rng)
            estimator.fit(
                pool.scores_calibrated,
                DeterministicOracle(pool.true_labels),
                n_labels=budget,
            )
            error = abs(estimator.estimate - true_f)
            semi.append(1.0 if np.isnan(error) else error)

            sampler = OASISSampler(
                pool.predictions,
                pool.scores_calibrated,
                DeterministicOracle(pool.true_labels),
                random_state=rng,
            )
            sampler.sample_until_budget(budget)
            error = abs(sampler.estimate - true_f)
            oasis.append(1.0 if np.isnan(error) else error)
        rows.append([budget, float(np.mean(semi)), float(np.mean(oasis))])
    return rows


def test_extension_semisupervised_bias(benchmark, pools, capsys):
    pool = pools("abt_buy")
    rows = run_once(benchmark, lambda: _mean_errors(pool))

    with capsys.disabled():
        print()
        print(format_table(
            ["budget", "semi-supervised", "OASIS"],
            rows,
            title="Extension: Welinder-style mixture model vs OASIS "
                  "(abt_buy, calibrated scores)",
        ))

    # The measured shape (also visible in the committed run): at the
    # tiniest budget the mixture model can lead — it exploits every
    # unlabelled score, the "lazy" appeal of [26] — but it improves
    # only slowly with more labels (parametric bias floor), while
    # OASIS overtakes it and keeps converging.
    for budget, semi, oasis in rows[1:]:
        assert oasis < semi, f"OASIS behind at budget {budget}"
    semi_improvement = rows[0][1] - rows[-1][1]
    oasis_improvement = rows[0][2] - rows[-1][2]
    assert oasis_improvement > semi_improvement
