"""Table-3-style pipeline scoring benchmark: vectorised vs reference.

The paper's Table 3 reports per-stage CPU cost on the cora pool and its
background section singles out full-pool pair scoring as the most
expensive pipeline stage.  This benchmark regenerates that datapoint
for the scoring pass itself: the vectorised
``PairFeatureExtractor.transform`` must beat the per-pair
``transform_reference`` by at least ``PIPELINE_BENCH_MIN_SPEEDUP``
(default 10x) on a ~50k-pair cora-style pool, and the join-based
blocking must agree with the set-based reference.  Results are written
to ``BENCH_pipeline.json`` so the repository's perf trajectory has a
pipeline datapoint next to the sampler benchmarks.

The scale-ladder benchmark runs the out-of-core pipeline end-to-end
per rung (chunked stores on disk, MinHash-LSH blocking, memory-budgeted
chunk-wise scoring, OASIS evaluation) and records each rung's
throughput and peak RSS as a *trajectory* under the ``ladder`` section,
asserting the LSH recall floor against the exact token-blocking oracle
on the parity rung and that peak RSS stays under a bound the eager
pair materialisation provably exceeds.

Environment knobs (used by the CI smoke job):

* ``PIPELINE_BENCH_PAIRS`` — pool size (default 50000).
* ``PIPELINE_BENCH_MIN_SPEEDUP`` — assertion floor (default 10.0).
* ``PIPELINE_BENCH_OUT`` — output path (default repo-root
  ``BENCH_pipeline.json``).
* ``PIPELINE_BENCH_RUNGS`` — comma-separated ladder rungs (default
  ``small``; CI runs ``small,medium``).
* ``PIPELINE_BENCH_RSS_BUDGET`` — peak-RSS ceiling in bytes for the
  ladder run (default 2 GiB).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.citations import generate_citation_dedup
from repro.datasets.products import generate_product_pair
from repro.datasets.scale import DATASET_SPECS
from repro.experiments.scale import run_scale_rung
from repro.pipeline import (
    FieldSpec,
    PairFeatureExtractor,
    PairSpaceError,
    cross_product_pairs,
    sorted_neighbourhood_pairs,
    sorted_neighbourhood_pairs_reference,
    token_blocking_pairs,
    token_blocking_pairs_reference,
)
from repro.utils.memory import rss_supported

N_PAIRS = int(os.environ.get("PIPELINE_BENCH_PAIRS", "50000"))
MIN_SPEEDUP = float(os.environ.get("PIPELINE_BENCH_MIN_SPEEDUP", "10"))
OUT_PATH = Path(
    os.environ.get(
        "PIPELINE_BENCH_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_pipeline.json",
    )
)
LADDER_RUNGS = [
    r for r in os.environ.get("PIPELINE_BENCH_RUNGS", "small").split(",") if r
]
RSS_BUDGET = int(
    os.environ.get("PIPELINE_BENCH_RSS_BUDGET", str(2 * 1024**3))
)

RNG_SEED = 42


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _record(section: str, payload: dict) -> None:
    """Merge one section into the benchmark JSON."""
    report = {}
    if OUT_PATH.exists():
        report = json.loads(OUT_PATH.read_text())
    report[section] = payload
    report["n_pairs"] = N_PAIRS
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def cora_pool():
    """Cora-style dedup: one citation store scored against itself."""
    rng = np.random.default_rng(RNG_SEED)
    store = generate_citation_dedup(400, noise_level=1.5, random_state=rng)
    extractor = PairFeatureExtractor(
        [
            FieldSpec("title", "short_text"),
            FieldSpec("authors", "short_text"),
            FieldSpec("venue", "short_text"),
            FieldSpec("year", "numeric"),
        ]
    ).fit(store, store)
    pairs = np.column_stack(
        [
            rng.integers(0, len(store), N_PAIRS),
            rng.integers(0, len(store), N_PAIRS),
        ]
    )
    return store, extractor, pairs


@pytest.fixture(scope="module")
def product_stores():
    """Two product catalogues: the long-text (tf-idf cosine) workload."""
    rng = np.random.default_rng(RNG_SEED)
    store_a, store_b = generate_product_pair(
        800, 0.5, noise_level=2.0, variant_prob=0.2, random_state=rng
    )
    return store_a, store_b


def test_table3_transform_speedup(cora_pool):
    """Vectorised scoring is >= MIN_SPEEDUP x the per-pair reference."""
    store, extractor, pairs = cora_pool
    extractor.transform(pairs)  # warm caches (bitmaps, buffers)
    vectorised_s, features = _best_of(lambda: extractor.transform(pairs), 5)
    reference_s, reference = _best_of(
        lambda: extractor.transform_reference(pairs), 2
    )
    np.testing.assert_allclose(features, reference, rtol=0.0, atol=1e-12)
    speedup = reference_s / vectorised_s
    _record(
        "transform_cora",
        {
            "dataset": "cora-style citation dedup",
            "n_records": len(store),
            "fields": extractor.feature_names,
            "chunk_size": extractor.chunk_size,
            "reference_seconds": round(reference_s, 4),
            "vectorised_seconds": round(vectorised_s, 4),
            "speedup": round(speedup, 1),
            "min_speedup_required": MIN_SPEEDUP,
            "pairs_per_second_vectorised": int(N_PAIRS / vectorised_s),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised transform only {speedup:.1f}x faster than reference "
        f"({vectorised_s * 1e3:.1f}ms vs {reference_s * 1e3:.1f}ms) "
        f"on {N_PAIRS} pairs; required {MIN_SPEEDUP}x"
    )


def test_products_transform_speedup(product_stores):
    """Secondary datapoint with a tf-idf cosine field in the mix."""
    store_a, store_b = product_stores
    rng = np.random.default_rng(RNG_SEED)
    extractor = PairFeatureExtractor(
        [
            FieldSpec("name", "short_text"),
            FieldSpec("description", "long_text"),
            FieldSpec("price", "numeric"),
        ]
    ).fit(store_a, store_b)
    pairs = np.column_stack(
        [
            rng.integers(0, len(store_a), N_PAIRS),
            rng.integers(0, len(store_b), N_PAIRS),
        ]
    )
    extractor.transform(pairs)
    vectorised_s, features = _best_of(lambda: extractor.transform(pairs), 5)
    reference_s, reference = _best_of(
        lambda: extractor.transform_reference(pairs), 2
    )
    np.testing.assert_allclose(features, reference, rtol=0.0, atol=1e-12)
    speedup = reference_s / vectorised_s
    _record(
        "transform_products",
        {
            "dataset": "two-source products",
            "n_records": [len(store_a), len(store_b)],
            "fields": extractor.feature_names,
            "reference_seconds": round(reference_s, 4),
            "vectorised_seconds": round(vectorised_s, 4),
            "speedup": round(speedup, 1),
            "pairs_per_second_vectorised": int(N_PAIRS / vectorised_s),
        },
    )
    # The cosine-heavy mix clears a lower floor; the headline >=10x
    # claim is asserted on the cora-style pool above.
    assert speedup >= min(MIN_SPEEDUP, 3.0)


def test_blocking_join_parity_and_timing(product_stores):
    """Join-based blocking: identical pairs, recorded timings."""
    store_a, store_b = product_stores
    results = {}

    token_s, token_pairs = _best_of(
        lambda: token_blocking_pairs(store_a, store_b, "name"), 3
    )
    token_ref_s, token_ref = _best_of(
        lambda: token_blocking_pairs_reference(store_a, store_b, "name"), 2
    )
    np.testing.assert_array_equal(token_pairs, token_ref)
    results["token"] = {
        "join_seconds": round(token_s, 4),
        "reference_seconds": round(token_ref_s, 4),
        "candidate_pairs": len(token_pairs),
    }

    snm_s, snm_pairs = _best_of(
        lambda: sorted_neighbourhood_pairs(store_a, store_b, "name", window=7), 3
    )
    snm_ref_s, snm_ref = _best_of(
        lambda: sorted_neighbourhood_pairs_reference(
            store_a, store_b, "name", window=7
        ),
        2,
    )
    np.testing.assert_array_equal(snm_pairs, snm_ref)
    results["sorted_neighbourhood"] = {
        "join_seconds": round(snm_s, 4),
        "reference_seconds": round(snm_ref_s, 4),
        "candidate_pairs": len(snm_pairs),
    }
    _record("blocking", results)


_LADDER_ORDER = list(DATASET_SPECS)


def _merge_ladder(new_rungs: list[dict]) -> list[dict]:
    """Merge freshly-run rungs into the recorded ladder trajectory.

    Keyed by rung name so a small-only tier-1 run refreshes its own
    datapoint without clobbering committed medium/large numbers.
    """
    existing: dict[str, dict] = {}
    if OUT_PATH.exists():
        for entry in json.loads(OUT_PATH.read_text()).get("ladder", []):
            existing[entry["rung"]] = entry
    for entry in new_rungs:
        existing[entry["rung"]] = entry
    return sorted(existing.values(), key=lambda e: _LADDER_ORDER.index(e["rung"]))


def test_scale_ladder_trajectory():
    """Out-of-core ladder: recall floor, RSS bound, trajectory record.

    Each rung streams generation into chunked stores, blocks with
    MinHash-LSH, scores chunk-wise under the memory budget, and
    evaluates with OASIS.  The eager alternative for any rung past
    ``small`` would materialise a pair array larger than the RSS
    budget — the guard proves it refuses to.
    """
    rungs = []
    for name in LADDER_RUNGS:
        metrics = run_scale_rung(name, seed=RNG_SEED)
        rungs.append(metrics)

        spec = DATASET_SPECS[name]
        assert metrics["lsh_recall_truth"] >= 0.9, (
            f"{name}: LSH found only {metrics['lsh_recall_truth']:.3f} "
            "of the true matches"
        )
        if "oracle" in metrics:
            assert metrics["oracle"]["lsh_recall_vs_exact"] >= 0.9, (
                f"{name}: LSH recovered only "
                f"{metrics['oracle']['lsh_recall_vs_exact']:.3f} of the "
                "exact token-blocking oracle's true matches"
            )
        if rss_supported():
            assert metrics["peak_rss_bytes"] <= RSS_BUDGET, (
                f"{name}: peak RSS {metrics['peak_rss_bytes'] / 2**20:.0f} "
                f"MiB exceeds the {RSS_BUDGET / 2**20:.0f} MiB budget"
            )
        # The eager pair space the chunked path avoided, in bytes; for
        # every rung past small it provably exceeds the RSS budget and
        # the guarded constructor refuses to build it.
        if metrics["exact_pair_bytes"] > RSS_BUDGET:
            with pytest.raises(PairSpaceError):
                cross_product_pairs(spec.n_records_a, spec.n_records_b)

    # Independent of which rungs ran: the large rung's eager pair
    # space (3.6e9 pairs, ~58 GB) always trips the guard.
    large = DATASET_SPECS["large"]
    assert large.exact_pair_space * 2 * 8 > RSS_BUDGET
    with pytest.raises(PairSpaceError):
        cross_product_pairs(large.n_records_a, large.n_records_b)

    _record("ladder", _merge_ladder(rungs))
