"""Table-3-style pipeline scoring benchmark: vectorised vs reference.

The paper's Table 3 reports per-stage CPU cost on the cora pool and its
background section singles out full-pool pair scoring as the most
expensive pipeline stage.  This benchmark regenerates that datapoint
for the scoring pass itself: the vectorised
``PairFeatureExtractor.transform`` must beat the per-pair
``transform_reference`` by at least ``PIPELINE_BENCH_MIN_SPEEDUP``
(default 10x) on a ~50k-pair cora-style pool, and the join-based
blocking must agree with the set-based reference.  Results are written
to ``BENCH_pipeline.json`` so the repository's perf trajectory has a
pipeline datapoint next to the sampler benchmarks.

Environment knobs (used by the CI smoke job):

* ``PIPELINE_BENCH_PAIRS`` — pool size (default 50000).
* ``PIPELINE_BENCH_MIN_SPEEDUP`` — assertion floor (default 10.0).
* ``PIPELINE_BENCH_OUT`` — output path (default repo-root
  ``BENCH_pipeline.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.citations import generate_citation_dedup
from repro.datasets.products import generate_product_pair
from repro.pipeline import (
    FieldSpec,
    PairFeatureExtractor,
    sorted_neighbourhood_pairs,
    sorted_neighbourhood_pairs_reference,
    token_blocking_pairs,
    token_blocking_pairs_reference,
)

N_PAIRS = int(os.environ.get("PIPELINE_BENCH_PAIRS", "50000"))
MIN_SPEEDUP = float(os.environ.get("PIPELINE_BENCH_MIN_SPEEDUP", "10"))
OUT_PATH = Path(
    os.environ.get(
        "PIPELINE_BENCH_OUT",
        Path(__file__).resolve().parent.parent / "BENCH_pipeline.json",
    )
)

RNG_SEED = 42


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _record(section: str, payload: dict) -> None:
    """Merge one section into the benchmark JSON."""
    report = {}
    if OUT_PATH.exists():
        report = json.loads(OUT_PATH.read_text())
    report[section] = payload
    report["n_pairs"] = N_PAIRS
    OUT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def cora_pool():
    """Cora-style dedup: one citation store scored against itself."""
    rng = np.random.default_rng(RNG_SEED)
    store = generate_citation_dedup(400, noise_level=1.5, random_state=rng)
    extractor = PairFeatureExtractor(
        [
            FieldSpec("title", "short_text"),
            FieldSpec("authors", "short_text"),
            FieldSpec("venue", "short_text"),
            FieldSpec("year", "numeric"),
        ]
    ).fit(store, store)
    pairs = np.column_stack(
        [
            rng.integers(0, len(store), N_PAIRS),
            rng.integers(0, len(store), N_PAIRS),
        ]
    )
    return store, extractor, pairs


@pytest.fixture(scope="module")
def product_stores():
    """Two product catalogues: the long-text (tf-idf cosine) workload."""
    rng = np.random.default_rng(RNG_SEED)
    store_a, store_b = generate_product_pair(
        800, 0.5, noise_level=2.0, variant_prob=0.2, random_state=rng
    )
    return store_a, store_b


def test_table3_transform_speedup(cora_pool):
    """Vectorised scoring is >= MIN_SPEEDUP x the per-pair reference."""
    store, extractor, pairs = cora_pool
    extractor.transform(pairs)  # warm caches (bitmaps, buffers)
    vectorised_s, features = _best_of(lambda: extractor.transform(pairs), 5)
    reference_s, reference = _best_of(
        lambda: extractor.transform_reference(pairs), 2
    )
    np.testing.assert_allclose(features, reference, rtol=0.0, atol=1e-12)
    speedup = reference_s / vectorised_s
    _record(
        "transform_cora",
        {
            "dataset": "cora-style citation dedup",
            "n_records": len(store),
            "fields": extractor.feature_names,
            "chunk_size": extractor.chunk_size,
            "reference_seconds": round(reference_s, 4),
            "vectorised_seconds": round(vectorised_s, 4),
            "speedup": round(speedup, 1),
            "min_speedup_required": MIN_SPEEDUP,
            "pairs_per_second_vectorised": int(N_PAIRS / vectorised_s),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorised transform only {speedup:.1f}x faster than reference "
        f"({vectorised_s * 1e3:.1f}ms vs {reference_s * 1e3:.1f}ms) "
        f"on {N_PAIRS} pairs; required {MIN_SPEEDUP}x"
    )


def test_products_transform_speedup(product_stores):
    """Secondary datapoint with a tf-idf cosine field in the mix."""
    store_a, store_b = product_stores
    rng = np.random.default_rng(RNG_SEED)
    extractor = PairFeatureExtractor(
        [
            FieldSpec("name", "short_text"),
            FieldSpec("description", "long_text"),
            FieldSpec("price", "numeric"),
        ]
    ).fit(store_a, store_b)
    pairs = np.column_stack(
        [
            rng.integers(0, len(store_a), N_PAIRS),
            rng.integers(0, len(store_b), N_PAIRS),
        ]
    )
    extractor.transform(pairs)
    vectorised_s, features = _best_of(lambda: extractor.transform(pairs), 5)
    reference_s, reference = _best_of(
        lambda: extractor.transform_reference(pairs), 2
    )
    np.testing.assert_allclose(features, reference, rtol=0.0, atol=1e-12)
    speedup = reference_s / vectorised_s
    _record(
        "transform_products",
        {
            "dataset": "two-source products",
            "n_records": [len(store_a), len(store_b)],
            "fields": extractor.feature_names,
            "reference_seconds": round(reference_s, 4),
            "vectorised_seconds": round(vectorised_s, 4),
            "speedup": round(speedup, 1),
            "pairs_per_second_vectorised": int(N_PAIRS / vectorised_s),
        },
    )
    # The cosine-heavy mix clears a lower floor; the headline >=10x
    # claim is asserted on the cora-style pool above.
    assert speedup >= min(MIN_SPEEDUP, 3.0)


def test_blocking_join_parity_and_timing(product_stores):
    """Join-based blocking: identical pairs, recorded timings."""
    store_a, store_b = product_stores
    results = {}

    token_s, token_pairs = _best_of(
        lambda: token_blocking_pairs(store_a, store_b, "name"), 3
    )
    token_ref_s, token_ref = _best_of(
        lambda: token_blocking_pairs_reference(store_a, store_b, "name"), 2
    )
    np.testing.assert_array_equal(token_pairs, token_ref)
    results["token"] = {
        "join_seconds": round(token_s, 4),
        "reference_seconds": round(token_ref_s, 4),
        "candidate_pairs": len(token_pairs),
    }

    snm_s, snm_pairs = _best_of(
        lambda: sorted_neighbourhood_pairs(store_a, store_b, "name", window=7), 3
    )
    snm_ref_s, snm_ref = _best_of(
        lambda: sorted_neighbourhood_pairs_reference(
            store_a, store_b, "name", window=7
        ),
        2,
    )
    np.testing.assert_array_equal(snm_pairs, snm_ref)
    results["sorted_neighbourhood"] = {
        "join_seconds": round(snm_s, 4),
        "reference_seconds": round(snm_ref_s, 4),
        "candidate_pairs": len(snm_pairs),
    }
    _record("blocking", results)
