"""Shared benchmark fixtures: session-scoped pools and sampler specs.

Every benchmark regenerates one paper table or figure on the scaled
synthetic pools.  Pools are built once per session; repeat counts are
deliberately smaller than the paper's 1000 (Monte-Carlo error scales as
1/sqrt(repeats) and the method ordering resolves at far fewer runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.datasets import load_benchmark
from repro.experiments import SamplerSpec
from repro.samplers import ImportanceSampler, PassiveSampler, StratifiedSampler

# Repeats per sampler configuration in the experiment benchmarks.
N_REPEATS = 10


@pytest.fixture(scope="session")
def pools():
    """Lazily-built cache of the small-scale benchmark pools."""
    cache = {}

    def get(name: str):
        if name not in cache:
            cache[name] = load_benchmark(name, scale="small", random_state=42)
        return cache[name]

    return get


def standard_specs(pool, *, oasis_k=(30, 60, 120), calibrated=False):
    """The paper's Figure 2 line-up: Passive, Stratified, IS, OASIS K."""
    threshold = pool.threshold

    def oasis_factory(k):
        return lambda p, s, o, r: OASISSampler(
            p, s, o, n_strata=k, threshold=threshold, random_state=r
        )

    specs = [
        SamplerSpec(
            "Passive",
            lambda p, s, o, r: PassiveSampler(p, s, o, random_state=r),
            use_calibrated_scores=calibrated,
        ),
        SamplerSpec(
            "Stratified",
            lambda p, s, o, r: StratifiedSampler(
                p, s, o, n_strata=30, random_state=r
            ),
            use_calibrated_scores=calibrated,
        ),
        SamplerSpec(
            "IS",
            lambda p, s, o, r: ImportanceSampler(
                p, s, o, threshold=threshold, random_state=r
            ),
            use_calibrated_scores=calibrated,
        ),
    ]
    for k in oasis_k:
        specs.append(
            SamplerSpec(
                f"OASIS {k}",
                oasis_factory(k),
                use_calibrated_scores=calibrated,
            )
        )
    return specs


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark but execute it only once.

    Experiment regenerators are too heavy for repeated timing rounds;
    a single round still records wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
