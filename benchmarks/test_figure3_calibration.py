"""Figure 3: calibrated vs uncalibrated scores for IS and OASIS.

The paper's finding: calibrated (probabilistic) scores substantially
improve static IS, whose instrumental distribution is built once from
the scores; OASIS degrades far less with uncalibrated scores because it
learns the oracle probabilities from incoming labels.  Reproduced on
the Abt-Buy and DBLP-ACM pools with K = 60 (the paper's setting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.experiments import (
    SamplerSpec,
    aggregate_trajectories,
    format_series,
    run_trials,
)
from repro.samplers import ImportanceSampler

from conftest import N_REPEATS, run_once

BUDGETS = [100, 250, 500, 1000, 2000, 3000]
N_REPEATS_FIG3 = 30


def _specs(pool):
    threshold = pool.threshold
    return [
        SamplerSpec(
            "IS uncal",
            lambda p, s, o, r: ImportanceSampler(
                p, s, o, threshold=threshold, random_state=r
            ),
        ),
        SamplerSpec(
            "IS cal",
            lambda p, s, o, r: ImportanceSampler(p, s, o, random_state=r),
            use_calibrated_scores=True,
        ),
        SamplerSpec(
            "OASIS uncal",
            lambda p, s, o, r: OASISSampler(
                p, s, o, n_strata=60, threshold=threshold, random_state=r
            ),
        ),
        SamplerSpec(
            "OASIS cal",
            lambda p, s, o, r: OASISSampler(p, s, o, n_strata=60, random_state=r),
            use_calibrated_scores=True,
        ),
    ]


def _run(pool):
    results = run_trials(
        pool, _specs(pool), budgets=BUDGETS,
        n_repeats=N_REPEATS_FIG3, random_state=31,
    )
    return {name: aggregate_trajectories(res) for name, res in results.items()}


def _late_error(stats):
    """Mean abs err over the last two budgets (converged regime)."""
    tail = stats.abs_error[-2:]
    tail = tail[~np.isnan(tail)]
    return tail.mean() if len(tail) else np.inf


def test_figure3_abt_buy(benchmark, pools, capsys):
    """Abt-Buy: the paper's full calibration story holds."""
    pool = pools("abt_buy")
    stats = run_once(benchmark, lambda: _run(pool))

    with capsys.disabled():
        print("\nFigure 3 [abt_buy]  (abs err vs budget, K=60)")
        for method, s in stats.items():
            print(format_series(f"  {method}", s.budgets, s.abs_error))

    is_uncal = _late_error(stats["IS uncal"])
    is_cal = _late_error(stats["IS cal"])
    oasis_uncal = _late_error(stats["OASIS uncal"])
    oasis_cal = _late_error(stats["OASIS cal"])

    # Shape 1: calibration helps IS substantially.
    assert is_cal <= is_uncal * 0.7
    # Shape 2: OASIS adapts away the bad scores — in the converged
    # regime uncalibrated OASIS has caught up with uncalibrated IS,
    # whose static distribution never corrects itself.  The two are a
    # statistical near-tie at this scale, so compare the late-budget
    # mean (less Monte-Carlo noise than the single final point) with a
    # modest margin.
    assert oasis_uncal <= is_uncal * 1.3
    # Shape 3: calibrated OASIS is the best configuration in the
    # converged regime.
    assert oasis_cal <= min(is_cal, is_uncal) * 1.2


def test_figure3_dblp_acm(benchmark, pools, capsys):
    """DBLP-ACM: near-perfect classifier regime.

    Our synthetic DBLP-ACM is as clean as the paper's (P = 1, one
    missed match): every method's error floor is set by locating the
    single false negative, so the IS calibration gap sits inside that
    floor.  The robust reproduced shapes are that calibration does not
    hurt OASIS and calibrated OASIS ends at least as accurate as
    static IS.
    """
    pool = pools("dblp_acm")
    stats = run_once(benchmark, lambda: _run(pool))

    with capsys.disabled():
        print("\nFigure 3 [dblp_acm]  (abs err vs budget, K=60)")
        for method, s in stats.items():
            print(format_series(f"  {method}", s.budgets, s.abs_error))

    is_cal = _late_error(stats["IS cal"])
    is_uncal = _late_error(stats["IS uncal"])
    oasis_uncal = _late_error(stats["OASIS uncal"])
    oasis_cal = _late_error(stats["OASIS cal"])

    assert oasis_cal <= oasis_uncal * 1.2
    assert oasis_cal <= min(is_cal, is_uncal) * 1.5
    # All configurations stay accurate in absolute terms on this
    # near-perfect pipeline.
    assert max(is_cal, is_uncal, oasis_cal, oasis_uncal) < 0.15
