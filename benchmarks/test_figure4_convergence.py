"""Figure 4: convergence of the model parameters along one OASIS run.

The paper shows, for a single OASIS run on Abt-Buy with calibrated
scores and K = 30: (a) the F-measure error, (b) the error of the
stratum probability estimates pi-hat, (c) the error of the estimated
optimal instrumental distribution, and (d) the KL divergence from the
true optimum — with pi converging well before the instrumental
distribution does.
"""

from __future__ import annotations

import numpy as np

from repro.core import OASISSampler
from repro.experiments import format_series, run_convergence_experiment
from repro.oracle import DeterministicOracle

from conftest import run_once

N_ITERATIONS = 25_000


def _run(pool):
    sampler = OASISSampler(
        pool.predictions,
        pool.scores_calibrated,
        DeterministicOracle(pool.true_labels),
        n_strata=30,
        record_diagnostics=True,
        random_state=4,
    )
    return run_convergence_experiment(
        sampler,
        pool.true_labels,
        pool.performance["f_measure"],
        n_iterations=N_ITERATIONS,
    )


def test_figure4_model_convergence(benchmark, pools, capsys):
    pool = pools("abt_buy")
    diag = run_once(benchmark, lambda: _run(pool))

    # Subsample the series for printing.
    checkpoints = np.linspace(0, N_ITERATIONS - 1, 12).astype(int)
    with capsys.disabled():
        print("\nFigure 4 [abt_buy, calibrated, K=30] (single run)")
        print(format_series(
            "  (a) |F_hat - F|", diag.budgets[checkpoints],
            diag.f_abs_error[checkpoints],
        ))
        print(format_series(
            "  (b) mean |pi_hat - pi|", diag.budgets[checkpoints],
            diag.pi_abs_error[checkpoints],
        ))
        print(format_series(
            "  (c) mean |v*_hat - v*|", diag.budgets[checkpoints],
            diag.v_abs_error[checkpoints],
        ))
        print(format_series(
            "  (d) KL(v* || v*_hat)", diag.budgets[checkpoints],
            diag.kl_from_optimal[checkpoints],
        ))
        pi_tol, kl_tol = 0.05, 0.5
        print(
            f"  pi reaches {pi_tol} error at budget "
            f"{diag.budget_to_reach_pi(pi_tol):.0f}; KL reaches {kl_tol} at "
            f"budget {diag.budget_to_reach_kl(kl_tol):.0f} "
            "(paper shape: pi converges well before v* — "
            "~4000 vs ~8500 labels on their run)"
        )

    # Shape 1: every diagnostic improves from start to finish.
    assert diag.pi_abs_error[-1] < diag.pi_abs_error[0]
    assert diag.kl_from_optimal[-1] < diag.kl_from_optimal[0]
    assert diag.v_abs_error[-1] < diag.v_abs_error[0]
    # Shape 2: the F estimate ends close to truth.
    assert diag.f_abs_error[-1] < 0.1
    # Shape 3: pi converges before the instrumental distribution (the
    # paper's observation that v* is very sensitive to small pi errors).
    pi_budget = diag.budget_to_reach_pi(0.05)
    kl_budget = diag.budget_to_reach_kl(0.5)
    assert np.isfinite(pi_budget)
    if np.isfinite(kl_budget):
        assert pi_budget <= kl_budget
