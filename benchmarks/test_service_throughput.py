"""Serving-layer benchmark: group-commit overhead and fleet throughput.

Two claims guard the sharded service tier, both measured in-run so the
numbers compare like with like on whatever machine runs the suite:

* **Journalling is nearly free.**  A session journalling through the
  group-commit WAL completes the same label budget within
  ``SERVICE_BENCH_MAX_OVERHEAD`` (default 1.75x) of the identical
  session running memory-only — and stays bit-identical to the raw
  sampler loop.  (The raw loop and the PR-4 per-event fsync journal
  are measured alongside for the report.)  The ceiling leaves room
  for the CRC32C frame on every shard and the journalled idempotency
  keys — measured ~1.35-1.4x on a quiet machine vs ~1.2-1.35x for
  the unchecksummed WAL — while still catching the failure mode it
  exists for: falling back to per-event fsyncs is a 4-5x.
* **The sharded tier is an order of magnitude faster under fleet
  load.**  With ``SERVICE_BENCH_CLIENTS`` (default 16) concurrent
  clients, the sharded multi-process tier (keep-alive + TCP_NODELAY
  transport, consistent-hash routing, group-commit batching) sustains
  at least ``SERVICE_BENCH_MIN_SPEEDUP`` (default 10x) the draws/s of
  the PR-4 baseline *measured the way PR-4 measured it* — its
  benchmark loop reproduced verbatim (4 clients, one urllib connection
  per request, session creation inside the timed window), re-run
  in-run so both numbers come from the same machine.

  Two further single-process numbers are reported (not asserted)
  for honest context: the same tier measured steady-state at the
  fleet client count — where connection churn overflows the listen
  backlog and TCP retransmit stalls dominate — and the resulting
  same-conditions ratio.

Results stream to ``BENCH_service.json``.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.datasets import load_benchmark
from repro.experiments.specs import SAMPLER_KINDS
from repro.oracle import DeterministicOracle
from repro.service import EvaluationSession, SessionManager
from repro.service.http import make_server, make_sharded_backend
from repro.service.wal import GroupCommitWAL

MAX_OVERHEAD = float(os.environ.get("SERVICE_BENCH_MAX_OVERHEAD", "1.75"))
MAX_OBS_OVERHEAD = float(
    os.environ.get("SERVICE_BENCH_MAX_OBS_OVERHEAD", "1.05"))
MIN_SPEEDUP = float(os.environ.get("SERVICE_BENCH_MIN_SPEEDUP", "10"))
N_CLIENTS = int(os.environ.get("SERVICE_BENCH_CLIENTS", "16"))
OUT_PATH = os.environ.get("SERVICE_BENCH_OUT", "BENCH_service.json")

BATCHES = [128] * 96  # 12288 draws per run (overhead test)
REPS = 5  # fresh-session repetitions per variant; min() is the estimator
WAL_WINDOW = 32  # events per group-commit window — the shard default
FLEET_BATCH = 256
FLEET_ROUNDS = 6  # per client, per tier
PR4_CLIENTS = 4
PR4_BATCHES = [64] * 6  # the PR-4 benchmark's exact schedule


def _pool():
    return load_benchmark("abt_buy", scale="small", random_state=42)


def _drive_session(session, labels):
    """Drive the full schedule; the WAL's own policy decides when each
    durability window closes (self-flush at ``max_batch`` events for the
    group-commit journal — a loaded shard's commit window — or per event
    for the PR-4 journal).  A final flush makes the tail durable before
    any comparison."""
    labels = np.asarray(labels)
    for batch in BATCHES:
        proposal = session.propose(batch)
        session.ingest(
            proposal["ticket"],
            labels[proposal["pending"]].tolist())
    if session.wal is not None:
        session.wal.flush()
    return session


def _timed_session(pool, directory, wal_factory=None):
    session = EvaluationSession.create(
        pool.predictions, pool.scores, sampler="oasis",
        sampler_kwargs={"n_strata": 30}, seed=9,
        directory=directory, wal_factory=wal_factory)
    start = time.perf_counter()
    _drive_session(session, pool.true_labels)
    return session, time.perf_counter() - start


def test_group_commit_overhead(tmp_path):
    """Journalling overhead: the same session protocol with the
    group-commit WAL vs memory-only, steady state.  Session creation (a
    one-time manifest write) stays outside every timed region; the raw
    sampler loop is measured too, for the report and the bit-identity
    check.

    Each variant runs ``REPS`` times on a fresh session (the seed makes
    every repetition draw the identical trajectory) and the minimum
    wall time is the estimate — the timed regions are tens of
    milliseconds, where a single stray fsync or scheduler preemption
    otherwise dominates the ratio."""
    pool = _pool()

    sampler = SAMPLER_KINDS["oasis"](
        pool.predictions, pool.scores,
        DeterministicOracle(pool.true_labels),
        n_strata=30, random_state=9)
    start = time.perf_counter()
    for batch in BATCHES:
        sampler.sample_batch(batch)
    direct_seconds = time.perf_counter() - start

    memory_seconds = float("inf")
    for _ in range(REPS):
        memory_session, seconds = _timed_session(pool, None)
        memory_seconds = min(memory_seconds, seconds)
    group_commit_seconds = float("inf")
    for rep in range(REPS):
        session, seconds = _timed_session(
            pool, tmp_path / f"group-commit-{rep}",
            wal_factory=lambda d: GroupCommitWAL(d, max_batch=WAL_WINDOW))
        group_commit_seconds = min(group_commit_seconds, seconds)
    # The PR-4 write path (one fsync per event), for the report.
    per_event_seconds = float("inf")
    for rep in range(REPS):
        __, seconds = _timed_session(pool, tmp_path / f"per-event-{rep}")
        per_event_seconds = min(per_event_seconds, seconds)

    # Exactness first: same draws, same estimate, to the last bit —
    # journalled, memory-only and raw loop all on one trajectory.
    np.testing.assert_array_equal(
        np.asarray(session.sampler.history), np.asarray(sampler.history))
    assert session.sampler.sampled_indices == sampler.sampled_indices
    assert session.estimate == memory_session.estimate

    overhead = group_commit_seconds / memory_seconds
    payload = {
        "draws": int(sum(BATCHES)),
        "raw_sampler_seconds": direct_seconds,
        "memory_session_seconds": memory_seconds,
        "group_commit_session_seconds": group_commit_seconds,
        "per_event_session_seconds": per_event_seconds,
        "journalling_overhead_factor": overhead,
        "per_event_overhead_factor": per_event_seconds / memory_seconds,
    }
    print(f"\njournalling: raw loop {direct_seconds:.3f}s, memory-only "
          f"session {memory_seconds:.3f}s, group-commit "
          f"{group_commit_seconds:.3f}s ({overhead:.2f}x, ceiling "
          f"{MAX_OVERHEAD:g}x), per-event {per_event_seconds:.3f}s "
          f"({per_event_seconds / memory_seconds:.2f}x)")
    _merge_report({"journalling_overhead": payload})
    assert overhead < MAX_OVERHEAD, (
        f"group-commit journalling is {overhead:.2f}x the memory-only "
        f"session (ceiling {MAX_OVERHEAD:g}x)"
    )


def test_observability_overhead(tmp_path):
    """The metrics/logging instrumentation must be nearly free.

    The same memory-only session schedule runs with a disabled
    (``NULL_REGISTRY``-style) registry and with a real one — every
    hot-path counter and histogram live.  Memory-only isolates the
    instrumentation cost from fsync noise; min-of-``REPS`` suppresses
    scheduler outliers.  The ceiling is ``SERVICE_BENCH_MAX_OBS_OVERHEAD``
    (default 1.05x: ≤5% steady-state overhead on the request path).

    Scraping — the per-session telemetry pass (CI widths cost a walk
    over each session's observations) plus the Prometheus rendering —
    is out-of-band work paid per poll, not per request, so it is timed
    separately and reported rather than folded into the hot-path
    ratio: at a realistic cadence (seconds between polls) its
    amortised cost is negligible, while folding twelve scrapes into a
    forty-millisecond drive would measure the scraper, not the tier."""
    from repro.service.manager import SessionManager as _Manager
    from repro.utils.metrics import MetricsRegistry, render_prometheus

    pool = _pool()

    def drive_via_manager(metrics_enabled: bool, rep: int):
        registry = MetricsRegistry(enabled=metrics_enabled)
        manager = _Manager(None, metrics=registry)
        session = manager.create_session(
            pool.predictions, pool.scores, sampler="oasis",
            sampler_kwargs={"n_strata": 30}, seed=9,
            session_id=f"obs-{metrics_enabled}-{rep}")
        labels = np.asarray(pool.true_labels)
        start = time.perf_counter()
        for batch in BATCHES:
            proposal = session.propose(batch)
            session.ingest(proposal["ticket"],
                           labels[proposal["pending"]].tolist())
        return time.perf_counter() - start, manager, registry

    # One untimed warmup of each variant, then interleaved timed reps:
    # back-to-back pairs see the same allocator/cache/scheduler state,
    # so a drift across the run (e.g. right after a heavier benchmark
    # in this file) biases both variants equally instead of whichever
    # happened to be timed first.
    drive_via_manager(False, -1)
    drive_via_manager(True, -1)
    disabled_seconds = enabled_seconds = float("inf")
    for rep in range(REPS):
        disabled_seconds = min(disabled_seconds,
                               drive_via_manager(False, rep)[0])
        seconds, manager, registry = drive_via_manager(True, rep)
        enabled_seconds = min(enabled_seconds, seconds)

    # One full scrape of the loaded manager, timed on its own: the
    # telemetry pass plus snapshot plus text rendering.
    scrape_seconds = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        manager.observe_session_telemetry()
        text = render_prometheus(registry.snapshot())
        scrape_seconds = min(scrape_seconds, time.perf_counter() - start)
    assert "oasis_session_draws_total" in text

    overhead = enabled_seconds / disabled_seconds
    payload = {
        "draws": int(sum(BATCHES)),
        "disabled_registry_seconds": disabled_seconds,
        "enabled_registry_seconds": enabled_seconds,
        "observability_overhead_factor": overhead,
        "scrape_seconds": scrape_seconds,
    }
    print(f"\nobservability: disabled {disabled_seconds:.3f}s, enabled "
          f"{enabled_seconds:.3f}s → {overhead:.3f}x (ceiling "
          f"{MAX_OBS_OVERHEAD:g}x); full scrape {scrape_seconds * 1e3:.2f}ms")
    _merge_report({"observability_overhead": payload})
    assert overhead < MAX_OBS_OVERHEAD, (
        f"metrics+logging cost {overhead:.3f}x the uninstrumented "
        f"session (ceiling {MAX_OBS_OVERHEAD:g}x)"
    )


# -- fleet throughput ------------------------------------------------------

def _create_body(pool, worker: int) -> dict:
    return {
        "predictions": pool.predictions.tolist(),
        "scores": pool.scores.tolist(),
        "sampler": "oasis", "sampler_kwargs": {"n_strata": 30},
        "seed": worker, "session_id": f"bench-{worker}",
    }


def _post_churn(port, path, body, *, retry: bool = False):
    """The PR-4 client idiom: urllib, one fresh connection per request.

    With ``retry``, connection resets are retried after a short pause —
    at fleet client counts the per-request churn overflows the server's
    listen backlog and the kernel resets the excess; a real labelling
    client retries, and the stall it suffers is part of the tier's
    honest cost."""
    data = json.dumps(body).encode()
    attempts = 0
    while True:
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=120) as response:
                return json.loads(response.read())
        except (ConnectionResetError, urllib.error.URLError):
            attempts += 1
            if not retry or attempts > 50:
                raise
            time.sleep(0.02)


def _run_pr4_baseline(port, pool) -> float:
    """PR-4's concurrent-throughput measurement, reproduced verbatim.

    This is the loop that produced the recorded baseline (~2.6-3.7k
    draws/s on this class of machine): ``PR4_CLIENTS`` workers, a fresh
    urllib connection per request, and — deliberately kept — session
    creation *inside* the timed window, because that is the methodology
    behind the number this benchmark claims 10x over.  Reproducing it
    in-run keeps the comparison on one machine instead of against a
    stale JSON artefact."""
    def client(worker: int):
        session_id = f"pr4-{worker}"
        _post_churn(port, "/sessions", {
            "predictions": pool.predictions.tolist(),
            "scores": pool.scores.tolist(),
            "sampler": "oasis", "sampler_kwargs": {"n_strata": 30},
            "seed": 9, "session_id": session_id,
        })
        for batch in PR4_BATCHES:
            proposal = _post_churn(
                port, f"/sessions/{session_id}/propose",
                {"batch_size": batch})
            answers = [int(pool.true_labels[i]) for i in proposal["pending"]]
            _post_churn(port, f"/sessions/{session_id}/ingest",
                        {"ticket": proposal["ticket"], "labels": answers})

    threads = [threading.Thread(target=client, args=(worker,))
               for worker in range(PR4_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start


class _BaselineClient:
    """Steady-state client for the single-process tier: the PR-4
    connection-per-request idiom, plus reset-retry so the measurement
    survives (and honestly pays for) backlog overflow at fleet client
    counts."""

    def __init__(self, port, pool, worker: int):
        self.port = port
        self.pool = pool
        self.session_id = f"bench-{worker}"
        self.post("/sessions", _create_body(pool, worker))

    def post(self, path, body):
        return _post_churn(self.port, path, body, retry=True)

    def run_round(self):
        proposal = self.post(f"/sessions/{self.session_id}/propose",
                             {"batch_size": FLEET_BATCH})
        answers = np.asarray(self.pool.true_labels)[
            proposal["pending"]].tolist()
        self.post(f"/sessions/{self.session_id}/ingest",
                  {"ticket": proposal["ticket"], "labels": answers})

    def close(self):
        pass


class _FleetClient:
    """The sharded-tier client idiom: one keep-alive NODELAY connection."""

    def __init__(self, port, pool, worker: int):
        self.pool = pool
        self.session_id = f"bench-{worker}"
        self.conn = http.client.HTTPConnection("127.0.0.1", port,
                                               timeout=120)
        self.conn.connect()
        self.conn.sock.setsockopt(6, 1, 1)  # TCP_NODELAY
        self.post("/sessions", _create_body(pool, worker))

    def post(self, path, body):
        while True:
            self.conn.request("POST", path, json.dumps(body).encode(),
                              {"Content-Type": "application/json"})
            response = self.conn.getresponse()
            payload = json.loads(response.read())
            if response.status == 503:  # backpressure: back off, resend
                time.sleep(float(
                    response.headers.get("Retry-After", 0.05)))
                continue
            assert response.status == 200, (response.status, payload)
            return payload

    def run_round(self):
        proposal = self.post(f"/sessions/{self.session_id}/propose",
                             {"batch_size": FLEET_BATCH})
        answers = np.asarray(self.pool.true_labels)[
            proposal["pending"]].tolist()
        self.post(f"/sessions/{self.session_id}/ingest",
                  {"ticket": proposal["ticket"], "labels": answers})

    def close(self):
        self.conn.close()


def _run_tier(client_cls, port, pool) -> float:
    """Create N_CLIENTS sessions (untimed setup — the one-time pool
    upload is identical for both tiers), then time the concurrent
    labelling rounds."""
    clients = [client_cls(port, pool, worker)
               for worker in range(N_CLIENTS)]
    errors = []

    def run(client):
        try:
            for _ in range(FLEET_ROUNDS):
                client.run_round()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(client,))
               for client in clients]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    for client in clients:
        client.close()
    assert not errors, errors[:3]
    return elapsed


def test_sharded_tier_speedup_over_single_process(tmp_path):
    """Three measurements, one assertion.

    1. The PR-4 baseline, reproduced with PR-4's own methodology
       (:func:`_run_pr4_baseline`) — the number the 10x claim is
       against, re-measured in-run.
    2. The same single-process tier, steady-state, at the fleet client
       count — reported so the same-conditions ratio is on the record
       (churn clients stall on listen-backlog overflow; expect a low
       multiple of the PR-4 number, not parity with the sharded tier).
    3. The sharded tier at the fleet client count, steady-state.

    The assert is (3)/(1) >= ``MIN_SPEEDUP``; (3)/(2) rides along in
    the report as ``speedup_same_conditions``."""
    pool = _pool()
    fleet_draws = N_CLIENTS * FLEET_ROUNDS * FLEET_BATCH
    pr4_draws = PR4_CLIENTS * sum(PR4_BATCHES)

    # Single-process tier: one manager, per-event fsync journal.  Both
    # baseline measurements run against the same server; session ids
    # ("pr4-*" vs "bench-*") keep them apart.
    manager = SessionManager(tmp_path / "baseline-root")
    baseline_server = make_server(manager, port=0)
    baseline_port = baseline_server.server_address[1]
    threading.Thread(target=baseline_server.serve_forever,
                     daemon=True).start()
    try:
        pr4_seconds = _run_pr4_baseline(baseline_port, pool)
        steady_seconds = _run_tier(_BaselineClient, baseline_port, pool)
    finally:
        baseline_server.shutdown()
        baseline_server.server_close()
    pr4_rate = pr4_draws / pr4_seconds
    steady_rate = fleet_draws / steady_seconds

    # The sharded tier: worker pool with group-commit WALs behind the
    # router, keep-alive NODELAY clients.
    router = make_sharded_backend(
        tmp_path / "sharded-root", shards=2,
        flush_interval=0.0, max_batch=64, max_queue=256)
    sharded_server = make_server(router, port=0)
    sharded_port = sharded_server.server_address[1]
    threading.Thread(target=sharded_server.serve_forever,
                     daemon=True).start()
    try:
        sharded_seconds = _run_tier(_FleetClient, sharded_port, pool)
    finally:
        sharded_server.shutdown()
        router.close(graceful=True)
        sharded_server.server_close()
    sharded_rate = fleet_draws / sharded_seconds

    speedup = sharded_rate / pr4_rate
    same_conditions = sharded_rate / steady_rate
    print(f"\nfleet: PR-4 baseline (its methodology, {PR4_CLIENTS} clients) "
          f"{pr4_seconds:.2f}s = {pr4_rate:.0f} draws/s; single-process "
          f"steady ({N_CLIENTS} clients) {steady_seconds:.2f}s = "
          f"{steady_rate:.0f} draws/s; sharded ({N_CLIENTS} clients) "
          f"{sharded_seconds:.2f}s = {sharded_rate:.0f} draws/s "
          f"→ {speedup:.1f}x vs PR-4 (floor {MIN_SPEEDUP:g}x), "
          f"{same_conditions:.1f}x same-conditions")
    _merge_report({"fleet_throughput": {
        "pr4_baseline": {
            "methodology": ("PR-4 benchmark reproduced in-run: "
                            "connection per request, session creation "
                            "inside the timed window"),
            "clients": PR4_CLIENTS,
            "batch_size": PR4_BATCHES[0],
            "rounds_per_client": len(PR4_BATCHES),
            "total_draws": pr4_draws,
            "seconds": pr4_seconds,
            "draws_per_second": pr4_rate,
        },
        "single_process_steady": {
            "methodology": ("connection per request with reset-retry, "
                            "session creation untimed"),
            "clients": N_CLIENTS,
            "batch_size": FLEET_BATCH,
            "rounds_per_client": FLEET_ROUNDS,
            "total_draws": fleet_draws,
            "seconds": steady_seconds,
            "draws_per_second": steady_rate,
        },
        "sharded_steady": {
            "methodology": ("keep-alive NODELAY connections, session "
                            "creation untimed"),
            "clients": N_CLIENTS,
            "shards": 2,
            "batch_size": FLEET_BATCH,
            "rounds_per_client": FLEET_ROUNDS,
            "total_draws": fleet_draws,
            "seconds": sharded_seconds,
            "draws_per_second": sharded_rate,
        },
        "speedup_vs_pr4_baseline": speedup,
        "speedup_same_conditions": same_conditions,
    }})
    assert speedup >= MIN_SPEEDUP, (
        f"sharded tier is only {speedup:.1f}x the PR-4 baseline "
        f"(floor {MIN_SPEEDUP:g}x)"
    )


def _merge_report(entry: dict) -> None:
    path = Path(OUT_PATH)
    payload = {}
    if path.is_file():
        payload = json.loads(path.read_text())
    payload.update(entry)
    path.write_text(json.dumps(payload, indent=1))
