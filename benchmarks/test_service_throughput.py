"""Serving-layer benchmark: session protocol overhead and concurrency.

The service wraps the samplers' batched engine in journalling, locking
and (over HTTP) JSON transport.  This benchmark quantifies what that
wrapper costs and guards the serving layer's two load-bearing claims:

* the propose/ingest trajectory is *bit-identical* to the oracle-driven
  loop (asserted exactly, not statistically); and
* the protocol overhead is bounded — a journalled session completes the
  same label budget within ``SERVICE_BENCH_MAX_OVERHEAD`` (default 25x)
  of the raw in-process loop, and concurrent HTTP clients sustain a
  modest aggregate floor.  Results stream to ``BENCH_service.json``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.datasets import load_benchmark
from repro.experiments.specs import SAMPLER_KINDS
from repro.oracle import DeterministicOracle
from repro.service import EvaluationSession, SessionManager
from repro.service.http import make_server

MAX_OVERHEAD = float(os.environ.get("SERVICE_BENCH_MAX_OVERHEAD", "25"))
MIN_HTTP_DRAWS_PER_SEC = float(
    os.environ.get("SERVICE_BENCH_MIN_HTTP_RATE", "200"))
OUT_PATH = os.environ.get("SERVICE_BENCH_OUT", "BENCH_service.json")

BATCHES = [64] * 24  # 1536 draws per run


def _pool():
    return load_benchmark("abt_buy", scale="small", random_state=42)


def _drive_session(session, labels):
    for batch in BATCHES:
        proposal = session.propose(batch)
        session.ingest(
            proposal["ticket"],
            [int(labels[i]) for i in proposal["pending"]])
    return session


def test_session_protocol_overhead(tmp_path):
    pool = _pool()

    start = time.perf_counter()
    sampler = SAMPLER_KINDS["oasis"](
        pool.predictions, pool.scores,
        DeterministicOracle(pool.true_labels),
        n_strata=30, random_state=9)
    for batch in BATCHES:
        sampler.sample_batch(batch)
    direct_seconds = time.perf_counter() - start

    start = time.perf_counter()
    session = EvaluationSession.create(
        pool.predictions, pool.scores, sampler="oasis",
        sampler_kwargs={"n_strata": 30}, seed=9,
        directory=tmp_path / "bench-session")
    _drive_session(session, pool.true_labels)
    session_seconds = time.perf_counter() - start

    # Exactness first: same draws, same estimate, to the last bit.
    np.testing.assert_array_equal(
        np.asarray(session.sampler.history), np.asarray(sampler.history))
    assert session.sampler.sampled_indices == sampler.sampled_indices

    overhead = session_seconds / direct_seconds
    payload = {
        "draws": int(sum(BATCHES)),
        "direct_seconds": direct_seconds,
        "journalled_session_seconds": session_seconds,
        "overhead_factor": overhead,
    }
    print(f"\nsession protocol: direct {direct_seconds:.3f}s, "
          f"journalled session {session_seconds:.3f}s "
          f"({overhead:.1f}x, ceiling {MAX_OVERHEAD:g}x)")
    _merge_report({"protocol_overhead": payload})
    assert overhead < MAX_OVERHEAD, (
        f"journalled session is {overhead:.1f}x the direct loop "
        f"(ceiling {MAX_OVERHEAD:g}x)"
    )


def test_concurrent_http_throughput(tmp_path):
    pool = _pool()
    manager = SessionManager(tmp_path / "root")
    server = make_server(manager, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    n_clients = 4
    batches = [64] * 6

    def post(path, body):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(body).encode(), method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read())

    def client(worker: int, results: dict):
        session_id = f"bench-{worker}"
        post("/sessions", {
            "predictions": pool.predictions.tolist(),
            "scores": pool.scores.tolist(),
            "sampler": "oasis", "sampler_kwargs": {"n_strata": 30},
            "seed": 9, "session_id": session_id,
        })
        for batch in batches:
            proposal = post(f"/sessions/{session_id}/propose",
                            {"batch_size": batch})
            answers = [int(pool.true_labels[i]) for i in proposal["pending"]]
            final = post(f"/sessions/{session_id}/ingest",
                         {"ticket": proposal["ticket"], "labels": answers})
        results[worker] = final

    try:
        results: dict = {}
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(worker, results))
            for worker in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    finally:
        server.shutdown()
        server.server_close()

    # Every client ran the same seed: identical estimates across sessions.
    estimates = {results[worker]["estimate"] for worker in results}
    assert len(results) == n_clients and len(estimates) == 1

    total_draws = n_clients * sum(batches)
    rate = total_draws / elapsed
    print(f"\nHTTP: {n_clients} concurrent clients, {total_draws} draws in "
          f"{elapsed:.3f}s = {rate:.0f} draws/s "
          f"(floor {MIN_HTTP_DRAWS_PER_SEC:g})")
    _merge_report({"concurrent_http": {
        "clients": n_clients,
        "total_draws": total_draws,
        "seconds": elapsed,
        "draws_per_second": rate,
    }})
    assert rate > MIN_HTTP_DRAWS_PER_SEC


def _merge_report(entry: dict) -> None:
    path = Path(OUT_PATH)
    payload = {}
    if path.is_file():
        payload = json.loads(path.read_text())
    payload.update(entry)
    path.write_text(json.dumps(payload, indent=1))
