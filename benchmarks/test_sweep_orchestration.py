"""Orchestration benchmark: parallel, resumable sweep end-to-end.

Exercises the experiment-orchestration subsystem at benchmark scale
(small pools, multiple grid cells): a 2-worker sweep streams shards to
disk, an "interruption" deletes part of the run, and the resumed sweep
must reproduce the uninterrupted aggregate bit-for-bit.  This is the
same scenario the CI sweep job runs at tiny scale.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once

from repro.experiments import SweepConfig, aggregate_all, run_sweep


def _sweep_config():
    return SweepConfig(
        datasets=["abt_buy"],
        budgets=[100, 250, 500],
        samplers=[
            {"kind": "oasis", "n_strata": 30},
            {"kind": "importance"},
            {"kind": "passive"},
        ],
        oracles=[{"kind": "deterministic"}],
        batch_sizes=[1, 64],
        n_repeats=4,
        seed=42,
        scale="small",
    )


def test_parallel_resumable_sweep(benchmark, tmp_path):
    config = _sweep_config()
    reference = run_sweep(config, workers=1)

    out = tmp_path / "sweep"

    def parallel_sweep():
        return run_sweep(config, workers=2, out_dir=out)

    parallel = run_once(benchmark, parallel_sweep)

    # Parallel execution is bit-identical to serial.
    for job_id, job_results in reference.items():
        for name, result in job_results.items():
            np.testing.assert_array_equal(
                result.estimates, parallel[job_id][name].estimates
            )

    # Interrupt: delete a slice of completed shards across jobs.
    deleted = 0
    for shard in sorted(out.glob("*/shards/*.json"))[::3]:
        shard.unlink()
        deleted += 1
    assert deleted > 0

    resumed = run_sweep(config, workers=2, out_dir=out)
    for job_id, job_results in reference.items():
        reference_stats = aggregate_all(job_results)
        resumed_stats = aggregate_all(resumed[job_id])
        for name in reference_stats:
            np.testing.assert_array_equal(
                reference_stats[name].abs_error,
                resumed_stats[name].abs_error,
            )
            np.testing.assert_array_equal(
                reference_stats[name].std_dev,
                resumed_stats[name].std_dev,
            )

    print("\nSweep orchestration: parallel == serial, resume == uninterrupted "
          f"({deleted} shards recomputed)")
