"""Tables 1 & 2: dataset inventory and pool performance.

Paper Table 1 lists the six datasets in decreasing class imbalance
(3381, 3328, 2697, 1075, ~48, ~1) with their match counts; Table 2
lists the evaluation pools with the L-SVM's true precision/recall/F.
These benchmarks rebuild our scaled synthetic pools and print the same
rows; the assertions pin the reproduced *shape*: the imbalance ordering
and the classifier-quality spectrum (Amazon-Google poor ... DBLP-ACM
near-perfect).
"""

from __future__ import annotations

import pytest

from repro.datasets import BENCHMARK_NAMES, dataset_summary
from repro.experiments import format_table

# Paper Table 2 reference values (precision, recall, F_1/2) for the
# shape assertions and the printed comparison.
PAPER_TABLE2 = {
    "amazon_google": (0.597, 0.185, 0.282),
    "restaurant": (0.909, 0.888, 0.899),
    "dblp_acm": (1.0, 0.9, 0.947),
    "abt_buy": (0.916, 0.44, 0.595),
    "cora": (0.841, 0.837, 0.839),
    "tweets100k": (0.762, 0.778, 0.770),
}


def build_all(pools):
    return {name: pools(name) for name in BENCHMARK_NAMES}


def test_table1_dataset_inventory(benchmark, pools, capsys):
    """Table 1: sizes, imbalance ratios, match counts."""
    from conftest import run_once

    all_pools = run_once(benchmark, lambda: build_all(pools))

    rows = []
    for name in BENCHMARK_NAMES:
        row = dataset_summary(all_pools[name])
        rows.append([row["dataset"], row["size"], row["imbalance_ratio"], row["n_matches"]])
    with capsys.disabled():
        print()
        print(format_table(
            ["dataset", "size", "imb_ratio", "n_matches"],
            rows,
            title="Table 1 (scaled synthetic counterparts)",
        ))

    # Shape: decreasing imbalance order matches the paper's Table 1.
    ratios = [r[2] for r in rows]
    assert ratios == sorted(ratios, reverse=True)
    # The ER datasets are extremely imbalanced; tweets is balanced.
    assert ratios[0] > 1000
    assert ratios[-1] == pytest.approx(1.0, abs=0.2)


def test_table2_pool_performance(benchmark, pools, capsys):
    """Table 2: true precision/recall/F of the pipeline on each pool."""
    from conftest import run_once

    all_pools = run_once(benchmark, lambda: build_all(pools))

    rows = []
    for name in BENCHMARK_NAMES:
        pool = all_pools[name]
        perf = pool.performance
        ref = PAPER_TABLE2[name]
        rows.append(
            [
                name,
                len(pool),
                round(pool.imbalance_ratio, 2),
                pool.n_matches,
                round(perf["precision"], 3),
                round(perf["recall"], 3),
                round(perf["f_measure"], 3),
                ref[0],
                ref[1],
                ref[2],
            ]
        )
    with capsys.disabled():
        print()
        print(format_table(
            [
                "pool", "size", "imb", "matches",
                "P", "R", "F",
                "paper_P", "paper_R", "paper_F",
            ],
            rows,
            title="Table 2 (measured vs paper)",
        ))

    measured_f = {row[0]: row[6] for row in rows}
    # Shape assertions: the quality spectrum of the paper's pools.
    assert measured_f["amazon_google"] < 0.5          # poor classifier
    assert measured_f["dblp_acm"] > 0.85              # near-perfect
    assert measured_f["restaurant"] > 0.85
    assert 0.3 < measured_f["abt_buy"] < 0.8          # middling
    assert 0.6 < measured_f["cora"] < 1.0
    assert 0.6 < measured_f["tweets100k"] < 0.9
