"""Figure 5: estimation error across classifier types on Abt-Buy.

The paper re-runs the comparison with five classifiers (L-SVM, NN,
AdaBoost, LR, RBF-SVM) and measures each method's expected absolute
error after 5000 labels: OASIS generally wins regardless of the
classifier producing the scores.  We rebuild the Abt-Buy pool once per
classifier and evaluate all four sampling methods at a fixed budget.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers import (
    AdaBoostClassifier,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    RbfSVM,
)
from repro.datasets import load_benchmark
from repro.experiments import aggregate_trajectories, format_table, run_trials

from conftest import run_once, standard_specs

BUDGET = 1500
N_REPEATS = 8

CLASSIFIERS = {
    "L-SVM": lambda: LinearSVM(random_state=0),
    "NN": lambda: MLPClassifier(random_state=0, n_epochs=80),
    "AB": lambda: AdaBoostClassifier(n_estimators=40),
    "LR": lambda: LogisticRegression(),
    "R-SVM": lambda: RbfSVM(random_state=0, n_components=100),
}


def _evaluate_classifier(name, factory):
    pool = load_benchmark(
        "abt_buy", scale="small", classifier=factory(), random_state=42
    )
    specs = standard_specs(pool, oasis_k=(30,))
    results = run_trials(
        pool, specs, budgets=[BUDGET], n_repeats=N_REPEATS, random_state=5
    )
    row = {"classifier": name, "true_f": pool.performance["f_measure"]}
    for method, result in results.items():
        stats = aggregate_trajectories(result)
        row[method] = stats.abs_error[-1]
    return row


def test_figure5_classifier_sweep(benchmark, capsys):
    rows = run_once(
        benchmark,
        lambda: [
            _evaluate_classifier(name, factory)
            for name, factory in CLASSIFIERS.items()
        ],
    )

    header = ["classifier", "true_F", "Passive", "Stratified", "IS", "OASIS 30"]
    table_rows = [
        [
            r["classifier"],
            round(r["true_f"], 3),
            r["Passive"],
            r["Stratified"],
            r["IS"],
            r["OASIS 30"],
        ]
        for r in rows
    ]
    with capsys.disabled():
        print()
        print(format_table(
            header,
            table_rows,
            title=f"Figure 5: abs err after {BUDGET} labels (Abt-Buy)",
        ))

    wins = 0
    for r in rows:
        oasis = r["OASIS 30"]
        others = [r["Passive"], r["Stratified"], r["IS"]]
        finite_others = [e for e in others if np.isfinite(e)]
        assert np.isfinite(oasis), f"OASIS undefined for {r['classifier']}"
        # OASIS must always beat the unbiased baselines (or they are
        # undefined, which counts as a win).
        for baseline in (r["Passive"], r["Stratified"]):
            assert not np.isfinite(baseline) or oasis < baseline * 1.1, (
                f"OASIS lost to a passive baseline on {r['classifier']}"
            )
        if not finite_others or oasis <= min(finite_others):
            wins += 1
    # OASIS is the best method for the majority of classifiers.
    assert wins >= 3
