"""Extension benchmark: OSS (adaptive Neyman allocation) vs the field.

Bennett & Carvalho's online stratified sampling [3] is discussed in the
paper's related work as adaptive-but-stratified.  This benchmark slots
it into the Figure 2 line-up on the Abt-Buy pool: the expected ordering
is Passive/Stratified < OSS < IS/OASIS — adaptivity helps, biased
sampling helps more.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    SamplerSpec,
    aggregate_trajectories,
    format_series,
    run_trials,
)
from repro.samplers import OSSSampler

from conftest import N_REPEATS, run_once, standard_specs

BUDGETS = [100, 250, 500, 1000, 2000, 4000]


def _run(pool):
    specs = standard_specs(pool, oasis_k=(30,))
    specs.append(
        SamplerSpec(
            "OSS",
            lambda p, s, o, r: OSSSampler(p, s, o, n_strata=30, random_state=r),
        )
    )
    results = run_trials(
        pool, specs, budgets=BUDGETS, n_repeats=N_REPEATS, random_state=77
    )
    return {name: aggregate_trajectories(res) for name, res in results.items()}


def _final(stats):
    value = stats.final_abs_error()
    return np.inf if np.isnan(value) else value


def test_extension_oss_ordering(benchmark, pools, capsys):
    pool = pools("abt_buy")
    stats = run_once(benchmark, lambda: _run(pool))

    with capsys.disabled():
        print("\nExtension: OSS vs the Figure 2 line-up (abt_buy)")
        for method, s in stats.items():
            print(format_series(f"  {method} abs_err", s.budgets, s.abs_error))

    oss = _final(stats["OSS"])
    stratified = _final(stats["Stratified"])
    oasis = _final(stats["OASIS 30"])

    # Adaptive allocation should not lose to proportional allocation.
    assert oss <= stratified * 1.1 or not np.isfinite(stratified)
    # But stratified adaptivity alone does not reach importance
    # sampling: OASIS stays ahead.
    assert oasis <= oss * 1.1
