"""Table 3: CPU time per run and per iteration on the cora pool.

The paper's timings (HP EliteBook, N ~ 3.3x10^5): Passive is by far
the cheapest per iteration, Stratified and OASIS are within an order
of magnitude of each other, and IS is ~30x slower than OASIS because
its per-iteration categorical draw is linear in the pool size N while
OASIS draws over K strata.  These are genuine pytest-benchmark timings
(not single-shot experiment regenerators); the absolute numbers are
machine-specific, the ordering and the IS linear-in-N scaling are the
reproduced claims.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.oracle import DeterministicOracle
from repro.samplers import ImportanceSampler, PassiveSampler, StratifiedSampler

N_ITERATIONS = 300


def _make(pool, method, k=30):
    oracle = DeterministicOracle(pool.true_labels)
    if method == "passive":
        return PassiveSampler(
            pool.predictions, pool.scores, oracle, random_state=0
        )
    if method == "stratified":
        return StratifiedSampler(
            pool.predictions, pool.scores, oracle, n_strata=30, random_state=0
        )
    if method == "is":
        return ImportanceSampler(
            pool.predictions, pool.scores, oracle,
            threshold=pool.threshold, random_state=0,
        )
    return OASISSampler(
        pool.predictions, pool.scores, oracle,
        n_strata=k, threshold=pool.threshold, random_state=0,
    )


@pytest.mark.parametrize(
    "method",
    ["passive", "stratified", "is", "oasis30", "oasis60", "oasis120"],
)
def test_table3_iteration_time(benchmark, pools, method):
    """Per-method sampling cost on cora, construction excluded.

    A fresh sampler is built in the (untimed) per-round setup so label
    caching cannot leak speed-ups between rounds; only the sampling
    loop itself is timed — the Table 3 "CPU time per iteration" column.
    """
    pool = pools("cora")
    k = int(method[5:]) if method.startswith("oasis") else 30
    kind = "oasis" if method.startswith("oasis") else method

    def setup():
        return (_make(pool, kind, k),), {}

    def run(sampler):
        sampler.sample(N_ITERATIONS)
        return sampler

    sampler = benchmark.pedantic(run, setup=setup, rounds=8)
    assert len(sampler.history) == N_ITERATIONS


def test_table3_ordering_and_is_scaling(benchmark, pools, capsys):
    """The reproduced shape: passive < stratified ~ oasis << IS, and
    IS per-iteration cost grows linearly with pool size N.

    Measured on the largest pool (amazon_google, N ~ 10^5 — the same
    order as the paper's cora pool); the IS overhead vanishes at small
    N where Python per-step overhead dominates, so pool size matters.
    """
    from conftest import run_once

    pool = pools("amazon_google")

    def time_method(kind, n_iter=N_ITERATIONS):
        sampler = _make(pool, kind)
        start = time.perf_counter()
        sampler.sample(n_iter)
        return (time.perf_counter() - start) / n_iter

    per_iter = run_once(benchmark, lambda: {
        kind: time_method(kind)
        for kind in ["passive", "stratified", "is", "oasis"]
    })
    with capsys.disabled():
        print("\nTable 3: per-iteration CPU time on amazon_google "
              f"(N={len(pool)}, {N_ITERATIONS} iterations)")
        for kind, seconds in per_iter.items():
            print(f"  {kind:11s} {seconds * 1e6:10.1f} us/iteration")

    # Ordering: IS is the clear outlier; passive the cheapest.
    assert per_iter["is"] > 5 * per_iter["oasis"]
    assert per_iter["passive"] <= per_iter["oasis"]

    # IS linear-in-N scaling: compare against the smaller cora pool.
    big = pool
    pool = pools("cora")
    small_n, big_n = len(pool), len(big)
    assert big_n > 2 * small_n

    def time_is(p, n_iter=150):
        sampler = ImportanceSampler(
            p.predictions, p.scores,
            DeterministicOracle(p.true_labels),
            threshold=p.threshold, random_state=0,
        )
        start = time.perf_counter()
        sampler.sample(n_iter)
        return (time.perf_counter() - start) / n_iter

    t_small = time_is(pool)
    t_big = time_is(big)
    ratio = t_big / t_small
    expected = big_n / small_n
    with capsys.disabled():
        print(
            f"  IS per-iteration scaling: N {small_n} -> {big_n} "
            f"({expected:.1f}x) gives time ratio {ratio:.1f}x"
        )
    # Linear within generous tolerance (allocator noise, cache effects).
    assert ratio > expected / 3


@pytest.mark.parametrize("batch_size", [64, 256])
def test_table3_batched_vs_sequential(benchmark, pools, capsys, batch_size):
    """Batched engine speedup on the Table 3 workload.

    The batched path amortises one proposal computation, one RNG call
    per draw family and one bulk oracle round-trip over each block of
    ``batch_size`` draws.  The reproduced claim is a measured speedup,
    not an asserted one: OASIS must run at least 3x faster than its
    sequential path for B >= 64 (it measures >10x here), and IS —
    whose per-draw O(N) categorical draw is the Table 3 bottleneck —
    benefits even more.
    """
    from conftest import run_once

    pool = pools("amazon_google")
    n_iterations = 2048

    def time_method(kind, batch):
        sampler = _make(pool, kind)
        start = time.perf_counter()
        sampler.sample(n_iterations, batch_size=batch)
        return time.perf_counter() - start

    def measure():
        out = {}
        for kind in ["passive", "stratified", "is", "oasis"]:
            sequential = time_method(kind, 1)
            batched = time_method(kind, batch_size)
            out[kind] = (sequential, batched)
        return out

    timings = run_once(benchmark, measure)
    with capsys.disabled():
        print(f"\nTable 3 (batched): {n_iterations} draws on amazon_google "
              f"(N={len(pool)}, B={batch_size})")
        for kind, (sequential, batched) in timings.items():
            print(f"  {kind:11s} sequential {sequential * 1e3:8.1f} ms   "
                  f"batched {batched * 1e3:8.1f} ms   "
                  f"speedup {sequential / batched:5.1f}x")

    oasis_seq, oasis_batch = timings["oasis"]
    assert oasis_seq / oasis_batch >= 3.0
    is_seq, is_batch = timings["is"]
    assert is_seq / is_batch >= 3.0
    # Every sampler must at least not regress when batched.
    for kind, (sequential, batched) in timings.items():
        assert batched < sequential * 1.5
