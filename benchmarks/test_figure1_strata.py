"""Figure 1: CSF strata sizes and mean scores on Abt-Buy.

The paper's Figure 1 shows the characteristic heavy-tailed stratum
structure on the Abt-Buy pool with calibrated scores: huge strata at
low similarity scores, tiny strata at high scores.  This benchmark
rebuilds the stratification and prints the (size, mean score) series;
the assertions pin the shape.
"""

from __future__ import annotations

import numpy as np

from repro.core import csf_stratify
from repro.experiments import format_table


def test_figure1_csf_strata_shape(benchmark, pools, capsys):
    from conftest import run_once

    pool = pools("abt_buy")

    strata = run_once(
        benchmark, lambda: csf_stratify(pool.scores_calibrated, 30)
    )

    mean_scores = strata.mean_scores()
    rows = [
        [k, int(strata.sizes[k]), round(float(mean_scores[k]), 4)]
        for k in range(strata.n_strata)
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["stratum", "size", "mean_score"],
            rows,
            title="Figure 1: CSF strata on Abt-Buy (calibrated scores, K=30)",
        ))

    # Shape 1: mean scores increase across strata.
    assert np.all(np.diff(mean_scores) > 0)
    # Shape 2: heavy tail — low-score strata orders of magnitude larger
    # than high-score strata.
    low_size = strata.sizes[:3].mean()
    high_size = strata.sizes[-3:].mean()
    assert low_size > 50 * high_size
    # Shape 3: the top stratum is tiny (the paper's "only 1 or 2 pairs"
    # regime appears when K grows; at K=30 it is merely small).
    assert strata.sizes[-1] < 0.01 * strata.n_items
