"""Ablation benchmarks for OASIS's design choices.

These go beyond the paper's figures: each ablation isolates one design
decision DESIGN.md calls out and measures its effect on estimation
error at a fixed label budget on the Abt-Buy pool.

* epsilon (exploration)      — paper section 4.1.3 / Remark 5
* prior strength eta         — paper section 4.3
* decaying prior             — paper Remark 4
* stratification method      — paper section 4.2.1 (CSF vs equal-size)
* score scale (extension)    — our scale-aware initialisation knob
"""

from __future__ import annotations

import numpy as np

from repro.core import OASISSampler
from repro.experiments import format_table
from repro.oracle import DeterministicOracle
from repro.utils import spawn_rngs

from conftest import run_once

BUDGET = 1500
N_REPEATS = 8


def _mean_error(pool, *, use_calibrated=False, n_repeats=N_REPEATS, **kwargs):
    """Mean |F_hat - F| over repeats; undefined estimates count as 1.0.

    Charging the maximum possible error for an undefined estimate keeps
    configurations that fail to produce estimates (e.g. epsilon = 1,
    passive-like sampling on an extreme-imbalance pool) comparable
    instead of contaminating the mean with NaN.
    """
    scores = pool.scores_calibrated if use_calibrated else pool.scores
    true_f = pool.performance["f_measure"]
    errors = []
    for rng in spawn_rngs(99, n_repeats):
        sampler = OASISSampler(
            pool.predictions,
            scores,
            DeterministicOracle(pool.true_labels),
            threshold=0.0 if use_calibrated else pool.threshold,
            random_state=rng,
            **kwargs,
        )
        sampler.sample_until_budget(BUDGET)
        error = abs(sampler.estimate - true_f)
        errors.append(1.0 if np.isnan(error) else error)
    return float(np.mean(errors))


def test_ablation_epsilon(benchmark, pools, capsys):
    """Exploration rate: tiny epsilon exploits; epsilon=1 is passive."""
    pool = pools("abt_buy")
    grid = [1e-3, 1e-2, 1e-1, 0.5, 1.0]
    errors = run_once(
        benchmark,
        lambda: {eps: _mean_error(pool, use_calibrated=True, epsilon=eps)
                 for eps in grid},
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["epsilon", "abs_err"],
            [[eps, err] for eps, err in errors.items()],
            title=f"Ablation: epsilon at budget {BUDGET} (abt_buy, calibrated)",
        ))
    # Exploiting beats passive-like sampling decisively.
    assert errors[1e-3] < errors[1.0]
    assert errors[1e-2] < errors[1.0]


def test_ablation_prior_strength(benchmark, pools, capsys):
    """Prior strength eta around the paper's default 2K."""
    pool = pools("abt_buy")
    k = 30
    grid = [1.0, float(k), 2.0 * k, 10.0 * k]
    errors = run_once(
        benchmark,
        lambda: {eta: _mean_error(
            pool, use_calibrated=True, n_strata=k, prior_strength=eta)
            for eta in grid},
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["eta", "abs_err"],
            [[eta, err] for eta, err in errors.items()],
            title=f"Ablation: prior strength (K={k}, default 2K={2 * k})",
        ))
    # All sane strengths work; an overwhelming prior (10K) should not
    # be better than the paper's default.
    assert errors[2.0 * k] <= errors[10.0 * k] * 1.5


def test_ablation_decaying_prior(benchmark, pools, capsys):
    """Remark 4: prior decay speeds convergence on uncalibrated scores."""
    pool = pools("abt_buy")
    errors = run_once(
        benchmark,
        lambda: {
            "decay on (uncal)": _mean_error(pool, decaying_prior=True),
            "decay off (uncal)": _mean_error(pool, decaying_prior=False),
            "decay on (cal)": _mean_error(
                pool, use_calibrated=True, decaying_prior=True),
            "decay off (cal)": _mean_error(
                pool, use_calibrated=True, decaying_prior=False),
        },
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["configuration", "abs_err"],
            [[name, err] for name, err in errors.items()],
            title=f"Ablation: Remark-4 prior decay at budget {BUDGET}",
        ))
    # The decay speeds convergence once informative labels arrive: a
    # clear win on calibrated scores, and never materially worse.
    assert errors["decay on (cal)"] <= errors["decay off (cal)"]
    assert errors["decay on (uncal)"] <= errors["decay off (uncal)"] * 1.1


def test_ablation_stratification_method(benchmark, pools, capsys):
    """CSF vs equal-size stratification (section 4.2.1)."""
    pool = pools("abt_buy")
    errors = run_once(
        benchmark,
        lambda: {
            method: _mean_error(
                pool, use_calibrated=True, stratification_method=method)
            for method in ["csf", "equal_size"]
        },
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["method", "abs_err"],
            [[m, e] for m, e in errors.items()],
            title="Ablation: stratification method (K=30)",
        ))
    # Both must work; CSF should be at least competitive.
    assert errors["csf"] <= errors["equal_size"] * 1.5


def test_ablation_score_scale(benchmark, pools, capsys):
    """Extension: scale-aware sigmoid in the margin initialisation.

    The paper squashes raw shifted margins; margin scale is an artifact
    of the classifier, and standardising before the squash sharpens
    badly-scaled priors.  This ablation quantifies the effect.
    """
    pool = pools("abt_buy")
    errors = run_once(
        benchmark,
        lambda: {
            "raw (paper)": _mean_error(pool, score_scale=None),
            "auto (0.5 std)": _mean_error(pool, score_scale="auto"),
            "sharp (0.1)": _mean_error(pool, score_scale=0.1),
        },
    )
    with capsys.disabled():
        print()
        print(format_table(
            ["score_scale", "abs_err"],
            [[name, err] for name, err in errors.items()],
            title="Ablation: margin-to-probability scale "
                  f"(uncalibrated scores, budget {BUDGET})",
        ))
    # Scale-aware priors should not hurt, and typically help a lot on
    # small-scale margins.
    assert errors["auto (0.5 std)"] <= errors["raw (paper)"] * 1.1
