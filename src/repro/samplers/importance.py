"""Static importance sampling baseline (Sawade et al. [24]).

Approximates the asymptotically optimal instrumental distribution
(Eqn 5) *once* using the similarity scores as stand-ins for the oracle
probabilities — scores mapped to [0, 1] play p(1|z), and a plug-in
F-measure guess replaces the true F.  Sampling then proceeds i.i.d.
from this fixed per-item distribution.

Two properties of this baseline matter in the paper's experiments:

* when the scores are uncalibrated the distribution is far from
  optimal and never corrects itself (Figure 3); and
* the per-item categorical draw costs O(N) per iteration, which is why
  IS scales poorly to large pools (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BaseEvaluationSampler
from repro.core.estimators import AISEstimator
from repro.core.instrumental import epsilon_greedy, optimal_instrumental_pointwise
from repro.utils import check_in_range, expit

__all__ = ["ImportanceSampler"]


class ImportanceSampler(BaseEvaluationSampler):
    """Non-adaptive importance sampler over individual pool items.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item; mapped to pseudo-probabilities
        that instantiate the optimal distribution of Eqn (5).
    oracle:
        Labelling oracle queried for ground truth.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        Target :class:`~repro.measures.ratio.RatioMeasure`; defaults to
        ``FMeasure(0.5)``.  The static optimal-distribution
        approximation of Eqn (5) is instantiated for this measure.
    random_state:
        Seed or generator for the sampling randomness.
    epsilon:
        Mixing weight with the uniform distribution.  The paper's IS
        baseline follows [24], which does not mix (epsilon = 0 keeps
        the raw approximation); a small epsilon guards against zero
        mass on items with nonzero contribution.
    scores_are_probabilities:
        None auto-detects from the score range; raw margins are passed
        through the logistic function, shifted by ``threshold``.
    threshold:
        Decision threshold tau for the logit mapping.
    score_scale:
        Optional divisor for the margin squash (None = raw scores as
        in [24]; "auto" = half the margin standard deviation; or any
        positive number).  See the score-scale ablation benchmark.
    """

    def __init__(
        self,
        predictions,
        scores,
        oracle,
        *,
        alpha=None,
        measure=None,
        epsilon: float = 1e-3,
        scores_are_probabilities: bool | None = None,
        threshold: float = 0.0,
        score_scale: float | str | None = None,
        random_state=None,
    ):
        super().__init__(predictions, scores, oracle, alpha=alpha,
                         measure=measure, random_state=random_state)
        check_in_range(epsilon, 0.0, 1.0, "epsilon")
        self.epsilon = epsilon

        if scores_are_probabilities is None:
            scores_are_probabilities = bool(
                self.scores.min() >= 0.0 and self.scores.max() <= 1.0
            )
        if scores_are_probabilities:
            pseudo_probabilities = np.clip(self.scores, 0.0, 1.0)
        else:
            if score_scale is None:
                scale = 1.0
            elif score_scale == "auto":
                spread = float(np.std(self.scores))
                scale = 0.5 * spread if spread > 0 else 1.0
            else:
                scale = float(score_scale)
                if scale <= 0:
                    raise ValueError(f"score_scale must be positive; got {scale}")
            pseudo_probabilities = np.asarray(
                expit((self.scores - threshold) / scale), dtype=float
            )

        uniform = np.full(self.n_items, 1.0 / self.n_items)
        plug_in = self._plug_in_estimate(pseudo_probabilities)
        optimal = optimal_instrumental_pointwise(
            uniform,
            self.predictions,
            pseudo_probabilities,
            plug_in,
            measure=self.measure,
        )
        if epsilon > 0:
            self._instrumental = epsilon_greedy(optimal, uniform, epsilon)
        else:
            self._instrumental = optimal
        self._uniform = uniform
        self._estimator = AISEstimator(measure=self.measure)

    def _plug_in_estimate(self, pseudo_probabilities: np.ndarray) -> float:
        """Score-based guess of the target measure for Eqn (5)."""
        tp = float(np.sum(pseudo_probabilities * self.predictions))
        predicted = float(np.sum(self.predictions))
        actual = float(np.sum(pseudo_probabilities))
        return self.measure.value_from_sums(
            tp, predicted, actual, float(self.n_items), clamp=False
        )

    @property
    def instrumental(self) -> np.ndarray:
        """The fixed per-item instrumental distribution."""
        view = self._instrumental.view()
        view.flags.writeable = False
        return view

    def _step(self) -> None:
        # Categorical draw over the whole pool: deliberately O(N) per
        # iteration, the cost profile Table 3 reports for IS.
        index = int(self.rng.choice(self.n_items, p=self._instrumental))
        label = self._query_label(index)
        prediction = int(self.predictions[index])
        weight = self._uniform[index] / self._instrumental[index]
        self._estimator.update(label, prediction, weight)

        self.sampled_indices.append(index)
        self.history.append(self._estimator.estimate)
        self.budget_history.append(self.labels_consumed)

    def _propose_batch(self, batch_size: int) -> dict:
        """Batched categorical draws over the pool.

        The O(N) cost of the full-pool categorical draw — Table 3's
        reason IS scales poorly — is paid once per block instead of
        once per draw, which is exactly the amortisation the batched
        engine targets.
        """
        return {
            "indices": self.rng.choice(
                self.n_items, p=self._instrumental, size=batch_size
            )
        }

    def _commit_batch(self, context, labels, new_mask) -> None:
        indices = context["indices"]
        predictions = self.predictions[indices]
        weights = self._uniform[indices] / self._instrumental[indices]
        trajectory = self._estimator.update_batch(labels, predictions, weights)

        self.sampled_indices.extend(int(i) for i in indices)
        self.history.extend(trajectory.tolist())
        consumed = self.labels_consumed
        budgets = consumed - int(new_mask.sum()) + np.cumsum(new_mask)
        self.budget_history.extend(int(b) for b in budgets)

    def _extra_state(self) -> dict:
        return {"estimator": self._estimator.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._estimator.load_state_dict(state["estimator"])

    @property
    def precision_estimate(self) -> float:
        return self._estimator.precision

    @property
    def recall_estimate(self) -> float:
        return self._estimator.recall
