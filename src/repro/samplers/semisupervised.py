"""Semi-supervised mixture-model estimator (Welinder et al. [26]).

The paper's related work discusses a third evaluation strategy beyond
sampling: fit a generative model of the (score, label) joint
distribution from all scores plus a few labels, then read performance
estimates off the fitted model.  The approach is "semi-supervised and
makes use of the classifier scores, but it doesn't incorporate biased
sampling or adaptivity, making it unsuited to problems with class
imbalance.  It also imposes a restrictive assumption on the joint
distribution of scores and labels" (paper section 7).

This module implements that strategy as a two-component Beta mixture:

    s | l=1 ~ Beta(a1, b1),   s | l=0 ~ Beta(a0, b0),   P(l=1) = pi

fitted by EM over *all* pool scores, with the labelled subset's
responsibilities clamped to their observed labels.  F-measure estimates
follow from the fitted mixture: the model supplies P(l=1 | predicted
positive) analytically, so TP/FP/FN come from mixture tail masses.

The benchmark `benchmarks/test_extension_semisupervised.py` reproduces
the paper's criticism: when the parametric assumption is good the
estimator is extremely label-efficient; under class imbalance and
model misfit it is *biased* — more labels do not fix it.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.measures.ratio import resolve_measure
from repro.utils import check_in_range, check_positive, ensure_rng

__all__ = ["BetaMixtureModel", "SemiSupervisedEstimator"]

# Scores are clipped into the open unit interval before fitting: Beta
# densities are unbounded or zero at {0, 1}.
_EDGE = 1e-4


def _fit_beta_moments(values: np.ndarray, weights: np.ndarray) -> tuple:
    """Weighted method-of-moments Beta fit (robust, no iteration).

    Matches the weighted mean and variance:  with m in (0,1) and
    v < m(1-m),  a = m * k,  b = (1-m) * k,  k = m(1-m)/v - 1.
    """
    total = weights.sum()
    if total <= 0:
        return 1.0, 1.0
    mean = float(np.sum(weights * values) / total)
    var = float(np.sum(weights * (values - mean) ** 2) / total)
    mean = min(max(mean, _EDGE), 1.0 - _EDGE)
    # Variance floor keeps k finite; cap below the Bernoulli bound.
    var = min(max(var, 1e-8), mean * (1.0 - mean) * 0.999)
    k = mean * (1.0 - mean) / var - 1.0
    return max(mean * k, 1e-3), max((1.0 - mean) * k, 1e-3)


class BetaMixtureModel:
    """Two-component Beta mixture over unit-interval scores.

    Parameters
    ----------
    max_iter:
        EM iterations.
    tol:
        Convergence threshold on the change in mixing weight.
    """

    def __init__(self, max_iter: int = 200, tol: float = 1e-8):
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, scores, labelled_index=None, labels=None) -> "BetaMixtureModel":
        """EM fit; labelled items have their responsibilities clamped.

        Parameters
        ----------
        scores:
            All pool scores in [0, 1].
        labelled_index:
            Indices of items with known labels (optional).
        labels:
            The corresponding binary labels.
        """
        scores = np.clip(np.asarray(scores, dtype=float), _EDGE, 1.0 - _EDGE)
        n = len(scores)
        if n == 0:
            raise ValueError("scores must be non-empty")
        clamped = np.full(n, np.nan)
        if labelled_index is not None:
            labelled_index = np.asarray(labelled_index, dtype=int)
            labels = np.asarray(labels, dtype=float)
            if len(labelled_index) != len(labels):
                raise ValueError("labelled_index and labels must align")
            clamped[labelled_index] = labels

        known = ~np.isnan(clamped)
        # Initialise responsibilities from the labels where known and
        # from the score rank elsewhere.
        resp = np.where(known, clamped, scores)
        pi = float(resp.mean())

        for __ in range(self.max_iter):
            # M step: moment-matched Betas per component.
            a1, b1 = _fit_beta_moments(scores, resp)
            a0, b0 = _fit_beta_moments(scores, 1.0 - resp)
            # E step on the unlabelled items.
            log_pos = stats.beta.logpdf(scores, a1, b1) + np.log(max(pi, 1e-12))
            log_neg = stats.beta.logpdf(scores, a0, b0) + np.log(
                max(1.0 - pi, 1e-12)
            )
            shift = np.maximum(log_pos, log_neg)
            pos = np.exp(log_pos - shift)
            neg = np.exp(log_neg - shift)
            new_resp = pos / (pos + neg)
            new_resp[known] = clamped[known]
            new_pi = float(new_resp.mean())
            converged = abs(new_pi - pi) < self.tol
            resp, pi = new_resp, new_pi
            if converged:
                break

        self.pi_ = pi
        self.pos_params_ = (a1, b1)
        self.neg_params_ = (a0, b0)
        self.responsibilities_ = resp
        return self

    def positive_tail(self, threshold: float) -> float:
        """P(s >= threshold | l = 1) under the fitted model."""
        a, b = self.pos_params_
        return float(stats.beta.sf(np.clip(threshold, _EDGE, 1 - _EDGE), a, b))

    def negative_tail(self, threshold: float) -> float:
        """P(s >= threshold | l = 0) under the fitted model."""
        a, b = self.neg_params_
        return float(stats.beta.sf(np.clip(threshold, _EDGE, 1 - _EDGE), a, b))


class SemiSupervisedEstimator:
    """F-measure estimation from the fitted score mixture.

    Mirrors the evaluation interface of the samplers loosely: call
    :meth:`fit` with the pool scores, a label budget and an oracle;
    labels are spent on a *uniform* random subset (the method has no
    biased-sampling mechanism — that is the point of the comparison).

    Parameters
    ----------
    threshold:
        The matcher's decision threshold on the (unit-interval) scores.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        Target :class:`~repro.measures.ratio.RatioMeasure`; defaults to
        ``FMeasure(0.5)``.
    random_state:
        Seed for the uniform label subset.
    """

    def __init__(self, threshold: float = 0.5, *, alpha=None, measure=None,
                 random_state=None):
        check_in_range(threshold, 0.0, 1.0, "threshold")
        self.threshold = threshold
        self.measure = resolve_measure(measure, alpha)
        self.rng = ensure_rng(random_state)
        self.model = BetaMixtureModel()

    @property
    def alpha(self):
        """The F-family weight, or None for non-F measures (deprecated)."""
        return getattr(self.measure, "alpha", None)

    def fit(self, scores, oracle, n_labels: int) -> "SemiSupervisedEstimator":
        """Spend ``n_labels`` uniform labels and fit the mixture.

        Parameters
        ----------
        scores:
            All pool scores in [0, 1].
        oracle:
            Labelling oracle; consulted once via its bulk
            :meth:`~repro.oracle.base.BaseOracle.query_many` API.
        n_labels:
            Number of uniform-random labels to spend (capped at the
            pool size).
        """
        check_positive(n_labels, "n_labels")
        scores = np.asarray(scores, dtype=float)
        n = len(scores)
        n_labels = min(int(n_labels), n)
        chosen = self.rng.choice(n, size=n_labels, replace=False)
        labels = oracle.query_many(chosen)
        self.model.fit(scores, chosen, labels)
        self.labels_consumed = n_labels
        return self

    @property
    def estimate(self) -> float:
        """Model-based value of the target measure at the threshold.

        TP rate = pi * P(s >= tau | l=1); predicted-positive rate =
        TP rate + (1-pi) * P(s >= tau | l=0); actual-positive rate =
        pi; all rates normalise to a total mass of one, so any ratio
        measure evaluates from the fitted mixture.
        """
        pi = self.model.pi_
        tp = pi * self.model.positive_tail(self.threshold)
        fp = (1.0 - pi) * self.model.negative_tail(self.threshold)
        predicted = tp + fp
        return self.measure.value_from_sums(tp, predicted, pi, 1.0,
                                            clamp=False)

    @property
    def precision_estimate(self) -> float:
        pi = self.model.pi_
        tp = pi * self.model.positive_tail(self.threshold)
        fp = (1.0 - pi) * self.model.negative_tail(self.threshold)
        if tp + fp <= 0:
            return float("nan")
        return tp / (tp + fp)

    @property
    def recall_estimate(self) -> float:
        return self.model.positive_tail(self.threshold)
