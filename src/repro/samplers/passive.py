"""Passive (uniform) sampling baseline (paper section 6.2).

Samples pool items uniformly at random with replacement and estimates
the F-measure with the unweighted Eqn (1) on the labels gathered so
far.  Under ER's extreme class imbalance the estimate stays undefined
until the first (predicted or true) positive appears — the cold-start
failure mode section 6.3.1 highlights.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BaseEvaluationSampler
from repro.core.estimators import AISEstimator

__all__ = ["PassiveSampler"]


class PassiveSampler(BaseEvaluationSampler):
    """Uniform-with-replacement sampler with the plain F estimator.

    Accepts the same (predictions, scores, oracle) triple as the other
    samplers; the scores are unused but kept for interface parity.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item; unused by this baseline but
        accepted so sampler factories stay interchangeable.
    oracle:
        Labelling oracle queried for ground truth.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        Target :class:`~repro.measures.ratio.RatioMeasure`; defaults to
        ``FMeasure(0.5)``.
    random_state:
        Seed or generator for the sampling randomness.
    """

    def __init__(self, predictions, scores, oracle, *, alpha=None,
                 measure=None, random_state=None):
        super().__init__(predictions, scores, oracle, alpha=alpha,
                         measure=measure, random_state=random_state)
        self._estimator = AISEstimator(measure=self.measure,
                                       track_observations=True)

    def _step(self) -> None:
        index = int(self.rng.integers(self.n_items))
        label = self._query_label(index)
        prediction = int(self.predictions[index])
        # Uniform sampling from the uniform target: unit weights.
        self._estimator.update(label, prediction, 1.0)

        self.sampled_indices.append(index)
        self.history.append(self._estimator.estimate)
        self.budget_history.append(self.labels_consumed)

    def _propose_batch(self, batch_size: int) -> dict:
        """Batched uniform draws: one RNG call proposes the whole block."""
        return {"indices": self.rng.integers(self.n_items, size=batch_size)}

    def _commit_batch(self, context, labels, new_mask) -> None:
        indices = context["indices"]
        predictions = self.predictions[indices]
        trajectory = self._estimator.update_batch(
            labels, predictions, np.ones(len(indices))
        )

        self.sampled_indices.extend(int(i) for i in indices)
        self.history.extend(trajectory.tolist())
        consumed = self.labels_consumed
        budgets = consumed - int(new_mask.sum()) + np.cumsum(new_mask)
        self.budget_history.extend(int(b) for b in budgets)

    def _extra_state(self) -> dict:
        return {"estimator": self._estimator.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._estimator.load_state_dict(state["estimator"])

    @property
    def precision_estimate(self) -> float:
        return self._estimator.precision

    @property
    def recall_estimate(self) -> float:
        return self._estimator.recall

    def confidence_interval(self, level: float = 0.95) -> tuple:
        """Normal-approximation confidence interval for the estimate."""
        return self._estimator.confidence_interval(level)
