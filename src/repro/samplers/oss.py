"""Online stratified sampling with adaptive Neyman allocation.

An implementation of the adaptive stratified method of Bennett &
Carvalho (paper reference [3]): strata are sampled with probability
proportional to their population weight times a running estimate of
the within-stratum label standard deviation (Neyman allocation), so
labelling effort concentrates where labels are uncertain.  The paper
discusses this approach in related work as adaptive-but-stratified —
stronger than proportional allocation, weaker than importance
sampling.  Included as an extension baseline beyond the paper's three.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BaseEvaluationSampler
from repro.core.stratification import Strata, stratify
from repro.utils import check_in_range, check_positive, normalise

__all__ = ["OSSSampler"]


class OSSSampler(BaseEvaluationSampler):
    """Adaptive stratified sampler (Neyman allocation on label variance).

    Allocation at iteration t: stratum k is drawn with probability
    proportional to  omega_k * sigma_hat_k + floor, where sigma_hat_k
    is the posterior standard deviation of a Bernoulli with an add-one
    smoothed match-rate estimate, and the epsilon floor keeps every
    stratum reachable.  The F-measure uses the stratified plug-in of
    :class:`~repro.samplers.stratified.StratifiedSampler`.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item; drive the stratification.
    oracle:
        Labelling oracle queried for ground truth.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        Target :class:`~repro.measures.ratio.RatioMeasure`; defaults to
        ``FMeasure(0.5)``.  The stratified plug-in estimate evaluates
        this measure from the per-stratum moments.
    n_strata:
        Requested CSF strata.
    epsilon:
        Mixing weight with proportional allocation (coverage floor).
    stratification_method:
        ``"csf"`` (Algorithm 1) or ``"equal_size"``.
    strata:
        Pre-built :class:`~repro.core.stratification.Strata` to reuse
        (skips stratification).
    random_state:
        Seed or generator for the sampling randomness.
    """

    def __init__(
        self,
        predictions,
        scores,
        oracle,
        *,
        alpha=None,
        measure=None,
        n_strata: int = 30,
        epsilon: float = 0.1,
        stratification_method: str = "csf",
        strata: Strata | None = None,
        random_state=None,
    ):
        super().__init__(predictions, scores, oracle, alpha=alpha,
                         measure=measure, random_state=random_state)
        check_in_range(epsilon, 0.0, 1.0, "epsilon", low_open=True)
        self.epsilon = epsilon
        if strata is not None:
            if strata.n_items != self.n_items:
                raise ValueError(
                    f"strata cover {strata.n_items} items but the pool has "
                    f"{self.n_items}"
                )
            self.strata = strata
        else:
            check_positive(n_strata, "n_strata")
            self.strata = stratify(self.scores, n_strata, stratification_method)

        k = self.strata.n_strata
        self._weights = self.strata.weights
        self._total_weight = float(np.sum(self.strata.weights))
        self._mean_predictions = self.strata.stratum_means(self.predictions)
        self._n_sampled = np.zeros(k)
        self._sum_true = np.zeros(k)
        self._sum_tp = np.zeros(k)

    @property
    def n_strata(self) -> int:
        return self.strata.n_strata

    def allocation(self) -> np.ndarray:
        """Current Neyman-style stratum allocation probabilities."""
        # Add-one smoothed match-rate estimate per stratum.
        p_hat = (self._sum_true + 1.0) / (self._n_sampled + 2.0)
        sigma = np.sqrt(p_hat * (1.0 - p_hat))
        neyman = normalise(self._weights * sigma)
        return self.epsilon * self._weights + (1.0 - self.epsilon) * neyman

    def _stratified_estimate(self) -> float:
        sampled = self._n_sampled > 0
        if not np.any(sampled):
            return float("nan")
        tp_rate = np.zeros(self.n_strata)
        true_rate = np.zeros(self.n_strata)
        tp_rate[sampled] = self._sum_tp[sampled] / self._n_sampled[sampled]
        true_rate[sampled] = self._sum_true[sampled] / self._n_sampled[sampled]

        tp = float(np.sum(self._weights * tp_rate))
        predicted = float(np.sum(self._weights * self._mean_predictions))
        actual = float(np.sum(self._weights * true_rate))
        if tp == 0 and actual == 0 and not self.measure.uses_true_negatives:
            # No positive has been seen at all: for positive-class-only
            # measures (the F family) the sample carries no information
            # yet.  TN-weighted measures (accuracy, specificity, ...)
            # are estimable from all-negative samples, so they proceed.
            return float("nan")
        return self.measure.value_from_sums(
            tp, predicted, actual, self._total_weight, clamp=False
        )

    def _step(self) -> None:
        allocation = self.allocation()
        stratum = int(self.rng.choice(self.n_strata, p=allocation))
        index = self.strata.sample_in_stratum(stratum, self.rng)
        label = self._query_label(index)
        prediction = int(self.predictions[index])

        self._n_sampled[stratum] += 1
        self._sum_true[stratum] += label
        self._sum_tp[stratum] += label * prediction

        self.sampled_indices.append(index)
        self.history.append(self._stratified_estimate())
        self.budget_history.append(self.labels_consumed)

    def _propose_batch(self, batch_size: int) -> dict:
        """Batched draws under a Neyman allocation frozen for the block.

        The allocation — the adaptive part of this sampler — is
        recomputed once per batch rather than once per draw, the same
        block-adaptive relaxation OASIS uses for its instrumental
        distribution; draws are vectorised.
        """
        allocation = self.allocation()
        strata_drawn = self.rng.choice(
            self.n_strata, p=allocation, size=batch_size
        )
        indices = self.strata.sample_in_strata(strata_drawn, self.rng)
        return {"indices": indices, "strata": strata_drawn}

    def _commit_batch(self, context, labels, new_mask) -> None:
        """Fold the labels in; the plug-in estimate is replayed per draw."""
        indices = context["indices"]
        strata_drawn = context["strata"]
        predictions = self.predictions[indices]

        self.sampled_indices.extend(int(i) for i in indices)
        consumed = self.labels_consumed
        budgets = consumed - int(new_mask.sum()) + np.cumsum(new_mask)
        self.budget_history.extend(int(b) for b in budgets)
        for t in range(len(indices)):
            stratum = strata_drawn[t]
            self._n_sampled[stratum] += 1
            self._sum_true[stratum] += labels[t]
            self._sum_tp[stratum] += labels[t] * predictions[t]
            self.history.append(self._stratified_estimate())

    def _extra_state(self) -> dict:
        return {
            "strata_checksum": self.strata.checksum(),
            "epsilon": self.epsilon,
            "n_sampled": np.array(self._n_sampled, copy=True),
            "sum_tp": np.array(self._sum_tp, copy=True),
            "sum_true": np.array(self._sum_true, copy=True),
        }

    def _load_extra_state(self, state: dict) -> None:
        if state["strata_checksum"] != self.strata.checksum():
            raise ValueError(
                "state was captured over a different stratification; "
                "rebuild the sampler with the same scores and strata "
                "configuration before restoring"
            )
        if float(state["epsilon"]) != self.epsilon:
            raise ValueError(
                f"state was captured with epsilon={state['epsilon']}, but "
                f"this sampler has epsilon={self.epsilon}"
            )
        self._n_sampled = np.asarray(state["n_sampled"], dtype=float)
        self._sum_tp = np.asarray(state["sum_tp"], dtype=float)
        self._sum_true = np.asarray(state["sum_true"], dtype=float)
