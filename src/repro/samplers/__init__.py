"""Baseline evaluation samplers (paper section 6.2).

Three baselines the paper compares against:

* :class:`PassiveSampler` — uniform i.i.d. sampling with replacement.
* :class:`StratifiedSampler` — proportional stratified sampling with a
  stratified plug-in estimator (Druck & McCallum [14]).
* :class:`ImportanceSampler` — static importance sampling from an
  approximation of the optimal distribution built from scores
  (Sawade et al. [24]).
"""

from repro.samplers.importance import ImportanceSampler
from repro.samplers.oss import OSSSampler
from repro.samplers.passive import PassiveSampler
from repro.samplers.semisupervised import (
    BetaMixtureModel,
    SemiSupervisedEstimator,
)
from repro.samplers.stratified import StratifiedSampler

__all__ = [
    "ImportanceSampler",
    "OSSSampler",
    "PassiveSampler",
    "BetaMixtureModel",
    "SemiSupervisedEstimator",
    "StratifiedSampler",
]
