"""The propose-pairs → ingest-labels session protocol.

An :class:`EvaluationSession` inverts the sampler's control flow.  The
in-process loop is *pull*: the sampler draws a batch and synchronously
queries the oracle.  A session is *push*: a client asks the session to
**propose** a batch (the sampler's propose phase runs, consuming
randomness and freezing the proposal), ships the returned pairs to its
labellers — crowd workers, an annotation UI, another system — and
**ingests** the labels whenever they arrive (the commit phase runs).

Because propose and commit are exactly the two halves of the samplers'
batched step (:meth:`~repro.core.base.BaseEvaluationSampler._propose_batch`
/ :meth:`~repro.core.base.BaseEvaluationSampler._commit_batch`), a
session driven with the oracle's answers is **bit-identical** to the
oracle-driven ``sample()`` / ``sample_batch()`` loop at the same seed —
the asynchronous protocol is a pure re-plumbing of the label transport,
not a different algorithm.  Freezing the proposal while labels are in
flight is the Delyon & Portier block-adaptive relaxation the batched
engine already relies on.

Durability: every protocol event is journalled to a
:class:`~repro.service.wal.SessionWAL` *before* it mutates in-memory
state, so a process killed at any instant restores to a consistent
point — mid-batch included — and replaying the journal reproduces the
uninterrupted trajectory exactly (the RNG is deterministic, so
re-running a logged propose re-draws the same pairs).
"""

from __future__ import annotations

import errno
import threading
import uuid
from collections import OrderedDict

import numpy as np

from repro.oracle.base import BaseOracle
from repro.service.codec import decode_state, encode_state
from repro.service.errors import (
    SessionConflictError,
    SessionNotFoundError,
    StorageFullError,
)
from repro.service.wal import SessionWAL
from repro.measures.ratio import measure_from_spec
from repro.utils import NULL_REGISTRY, check_count

__all__ = ["EvaluationSession", "session_sampler_kinds", "DEDUP_WINDOW"]

MANIFEST_FORMAT_VERSION = 1

#: How many idempotency-keyed responses a session remembers.  The window
#: bounds memory and checkpoint size; a client retrying within it gets
#: the original response replayed, which is what makes a lost ack safe
#: to retry.  256 comfortably covers any realistic in-flight retry set —
#: a client retries its *latest* request, not one from hundreds ago.
DEDUP_WINDOW = 256

_ENOSPC_ERRNOS = (errno.ENOSPC, errno.EDQUOT)


def _sampler_kinds() -> dict:
    # Deferred: repro.experiments pulls in the dataset/benchmark stack,
    # which session construction does not otherwise need.
    from repro.experiments.specs import SAMPLER_KINDS

    return SAMPLER_KINDS


def session_sampler_kinds() -> tuple[str, ...]:
    """Sampler kinds a session can host — the live experiment registry."""
    return tuple(sorted(_sampler_kinds()))


class _IngestOnlyOracle(BaseOracle):
    """Placeholder oracle for session-hosted samplers.

    Sessions receive labels through :meth:`EvaluationSession.ingest`,
    never through oracle queries — any query reaching this object means
    the sampler was driven down the synchronous path by mistake.
    """

    def label(self, index: int) -> int:
        raise RuntimeError(
            "session-hosted samplers receive labels via ingest(), not "
            "oracle queries; drive the session through propose()/ingest()"
        )

    def probability(self, index: int) -> float:
        raise RuntimeError("session-hosted samplers have no oracle probabilities")


class EvaluationSession:
    """One resumable, journalled evaluation over a fixed pool.

    Build sessions with :meth:`create` (fresh) or :meth:`restore` (from
    a journal directory); the constructor wires pre-built parts
    together and is mostly internal.

    Parameters
    ----------
    session_id:
        Identity of the session (also its directory name under a
        service root).
    sampler:
        A sampler supporting the propose/ingest split, hosted by this
        session and never driven synchronously.
    config:
        The manifest payload describing how ``sampler`` was built.
    wal:
        Optional journal; ``None`` keeps the session memory-only
        (no durability, no eviction to disk).
    metrics:
        A :class:`~repro.utils.metrics.MetricsRegistry` to count draws,
        ingested labels and dedup-window hits into; defaults to the
        no-op registry.
    """

    def __init__(self, session_id: str, sampler, config: dict,
                 wal: SessionWAL | None = None, *, metrics=None):
        if not sampler.supports_propose_ingest:
            raise ValueError(
                f"{type(sampler).__name__} does not implement the "
                "propose/ingest split and cannot be served"
            )
        self.session_id = session_id
        self.sampler = sampler
        self.config = config
        self.wal = wal
        self.closed = False
        # Set by the manager when this instance is checkpointed to disk
        # and dropped; a stale handle must never write to a journal
        # another live instance now owns.
        self.evicted = False
        self._lock = threading.RLock()
        self._ticket = 0
        self._pending: dict | None = None  # outstanding proposal context
        # Idempotency key → the response originally returned for it.
        # Bounded FIFO (DEDUP_WINDOW); journalled keys rebuild it on
        # replay and checkpoints capture it, so the exactly-once
        # guarantee survives crashes and eviction.
        self._dedup: OrderedDict[str, dict] = OrderedDict()
        registry = NULL_REGISTRY if metrics is None else metrics
        self._draws_total = registry.counter(
            "oasis_session_draws_total",
            "Sampler draws consumed, per session.", ("session",))
        self._labels_total = registry.counter(
            "oasis_session_labels_total",
            "Fresh labels ingested, per session.", ("session",))
        self._dedup_hits = registry.counter(
            "oasis_dedup_hits_total",
            "Requests answered from the idempotency dedup window.",
            ("op",))

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        predictions,
        scores,
        *,
        sampler: str = "oasis",
        sampler_kwargs: dict | None = None,
        alpha: float | None = None,
        measure=None,
        seed: int = 0,
        directory=None,
        session_id: str | None = None,
        wal_factory=None,
        metrics=None,
    ) -> "EvaluationSession":
        """Create a fresh session over a pool.

        Parameters
        ----------
        predictions:
            Predicted labels (R-hat membership) per pool item.
        scores:
            Similarity scores per pool item.
        sampler:
            Sampler kind, one of :func:`session_sampler_kinds`.
        sampler_kwargs:
            Extra keyword arguments for the sampler constructor
            (``n_strata``, ``epsilon``, ``threshold``, ...); must be
            JSON-representable, as they live in the manifest.
        alpha:
            Deprecated F-measure shim (the historical target
            parametrisation); mutually exclusive with ``measure``,
            exactly as on the samplers themselves.
        measure:
            Target :class:`~repro.measures.ratio.RatioMeasure` as a
            kind name, spec dict or instance; ``None`` keeps the
            alpha-parametrised F-measure target.  The canonical spec
            lives in the manifest, so restores rebuild the same target.
        seed:
            Integer seed for the sampler's random stream; part of the
            session identity, so a restore rebuilds the same stream.
        directory:
            Journal directory; ``None`` keeps the session memory-only.
        session_id:
            Explicit id; defaults to a random 12-hex-digit token.
        wal_factory:
            Journal constructor, ``callable(directory) -> SessionWAL``;
            defaults to the synchronous per-event :class:`SessionWAL`.
            The shard workers pass a :class:`~repro.service.wal.GroupCommitWAL`
            builder here (and the fault harness its instrumented
            wrappers).
        """
        kinds = _sampler_kinds()
        if sampler not in kinds:
            raise ValueError(
                f"unknown sampler kind {sampler!r}; choose from "
                f"{sorted(kinds)}"
            )
        if session_id is None:
            session_id = uuid.uuid4().hex[:12]
        if measure is not None and alpha is not None:
            raise ValueError(
                "pass either measure= or the deprecated alpha=, not both"
            )
        seed = check_count(seed, "seed", minimum=0)
        sampler_kwargs = dict(sampler_kwargs or {})
        predictions = np.asarray(predictions)
        scores = np.asarray(scores, dtype=float)
        config = {
            "format_version": MANIFEST_FORMAT_VERSION,
            "session_id": session_id,
            "sampler": sampler,
            "sampler_kwargs": sampler_kwargs,
            "seed": seed,
            "predictions": encode_state(predictions),
            "scores": encode_state(scores),
        }
        if measure is not None:
            # Canonicalised spec; absent for alpha-parametrised
            # sessions, so pre-measure manifests keep restoring and a
            # fresh manifest stays byte-stable for the idempotent
            # re-create check.
            config["measure"] = measure_from_spec(measure).spec()
        else:
            # The historical manifest shape: alpha only, no measure
            # key, so the target recorded is never contradictory.
            config["alpha"] = float(0.5 if alpha is None else alpha)
        instance = cls._build_sampler(config)
        wal = None
        if directory is not None:
            wal = (wal_factory or SessionWAL)(directory)
            wal.write_manifest(config)
        return cls(session_id, instance, config, wal, metrics=metrics)

    @staticmethod
    def _build_sampler(config: dict):
        """Deterministically rebuild the hosted sampler from a manifest."""
        kinds = _sampler_kinds()
        cls = kinds[config["sampler"]]
        measure = config.get("measure")
        target = (
            {"alpha": config["alpha"]} if measure is None
            else {"measure": measure}
        )
        return cls(
            decode_state(config["predictions"]),
            decode_state(config["scores"]),
            _IngestOnlyOracle(),
            random_state=int(config["seed"]),
            **target,
            **config["sampler_kwargs"],
        )

    @classmethod
    def restore(cls, directory, *, wal_factory=None,
                metrics=None) -> "EvaluationSession":
        """Rebuild a session from its journal directory.

        The sampler is reconstructed from the manifest, fast-forwarded
        to the latest checkpoint (if any), and the events after it are
        replayed — re-running each logged propose (the deterministic
        RNG re-draws the same pairs) and re-applying each logged
        ingest.  A session killed between propose and ingest comes back
        with the same outstanding proposal, ready for the labels.
        """
        wal = (wal_factory or SessionWAL)(directory)
        manifest = wal.read_manifest()
        if manifest is None:
            raise SessionNotFoundError(
                f"no session manifest under {wal.directory}"
            )
        if manifest.get("format_version") != MANIFEST_FORMAT_VERSION:
            raise ValueError(
                f"unsupported session manifest version "
                f"{manifest.get('format_version')!r}"
            )
        sampler = cls._build_sampler(manifest)
        session = cls(manifest["session_id"], sampler, manifest, wal,
                      metrics=metrics)

        events = wal.events()
        start = 0
        for position, event in enumerate(events):
            if event["kind"] == "checkpoint":
                start = position
        if events and events[start]["kind"] == "checkpoint":
            session._load_checkpoint_event(events[start])
            replay = events[start + 1:]
        else:
            replay = events
        for event in replay:
            if event["kind"] == "propose":
                response = session._do_propose(
                    int(event["batch_size"]),
                    expected_ticket=int(event["ticket"]))
            elif event["kind"] == "ingest":
                response = session._do_ingest(int(event["ticket"]),
                                              decode_state(event["labels"]))
            else:
                continue
            # Journalled idempotency keys re-arm the dedup window, so a
            # retry that arrives after a crash+restore still replays the
            # original response instead of double-applying.
            if event.get("key") is not None:
                session._record_dedup(str(event["key"]), response)
        return session

    # -- the protocol ------------------------------------------------------

    def _require_open(self) -> None:
        if self.evicted:
            raise SessionConflictError(
                f"this handle to session {self.session_id} was evicted to "
                "disk; re-fetch the session from the manager"
            )
        if self.closed:
            raise SessionConflictError(
                f"session {self.session_id} is closed"
            )

    def _record_dedup(self, key: str, response: dict) -> None:
        self._dedup[key] = response
        while len(self._dedup) > DEDUP_WINDOW:
            self._dedup.popitem(last=False)

    def _replay_dedup(self, key) -> dict | None:
        """The cached response for ``key``, or None if never seen."""
        if key is None:
            return None
        response = self._dedup.get(str(key))
        if response is None:
            return None
        return dict(response)

    def _journal(self, kind: str, payload: dict,
                 idempotency_key=None) -> None:
        """Append one event, mapping a full disk to backpressure.

        The event is journalled *before* the in-memory mutation, so an
        ``ENOSPC``/``EDQUOT`` here means the request simply did not
        happen — rendered as the retryable 503
        :class:`~repro.service.errors.StorageFullError`, never as
        corrupted state.
        """
        if idempotency_key is not None:
            payload = {**payload, "key": str(idempotency_key)}
        try:
            self.wal.append(kind, payload)
        except OSError as exc:
            if exc.errno in _ENOSPC_ERRNOS:
                raise StorageFullError(
                    f"journal volume full; session {self.session_id} "
                    f"could not log its {kind} event ({exc})"
                ) from exc
            raise

    def propose(self, batch_size: int, *, idempotency_key=None) -> dict:
        """Propose the next batch of draws; returns the pairs to label.

        Consumes the sampler's randomness for ``batch_size`` draws
        under one frozen proposal and returns the **distinct,
        not-yet-labelled** pool indices among them, in the order the
        labels must be ingested.  Re-draws of already-labelled pairs
        are resolved from the cache (paper footnote 5) and need no
        client work — ``pending`` may well be empty, in which case
        ``ingest(ticket, [])`` completes the batch for free.

        Exactly one proposal may be outstanding; proposing again before
        ingesting raises :class:`SessionConflictError` (the outstanding
        pairs are recoverable via :meth:`status`).

        With ``idempotency_key`` (any string a client will not reuse
        across distinct requests), a retry of a request that already
        executed replays the original response instead of raising a
        conflict — the exactly-once contract for clients whose ack was
        lost to a crash or dropped connection.
        """
        with self._lock:
            self._require_open()
            replayed = self._replay_dedup(idempotency_key)
            if replayed is not None:
                self._dedup_hits.inc(op="propose")
                return replayed
            batch_size = check_count(batch_size, "batch_size")
            if self._pending is not None:
                raise SessionConflictError(
                    f"session {self.session_id} already has proposal "
                    f"ticket {self._pending['ticket']} outstanding; ingest "
                    "its labels (see status()) before proposing again"
                )
            ticket = self._ticket + 1
            if self.wal is not None:
                self._journal(
                    "propose", {"ticket": ticket, "batch_size": batch_size},
                    idempotency_key,
                )
            response = self._do_propose(batch_size, expected_ticket=ticket)
            self._draws_total.inc(batch_size, session=self.session_id)
            if idempotency_key is not None:
                self._record_dedup(str(idempotency_key), response)
            return response

    def _do_propose(self, batch_size: int, *, expected_ticket: int) -> dict:
        """The in-memory half of propose (shared with WAL replay)."""
        self._ticket += 1
        if self._ticket != expected_ticket:
            raise ValueError(
                f"journal replay out of order: expected ticket "
                f"{expected_ticket}, session is at {self._ticket}"
            )
        context = self.sampler._propose_batch(batch_size)
        fresh = self.sampler._pending_fresh(context["indices"])
        self._pending = {
            "ticket": self._ticket,
            "batch_size": batch_size,
            "context": context,
            "fresh": fresh,
        }
        return {
            "session_id": self.session_id,
            "ticket": self._ticket,
            "batch_size": batch_size,
            "pending": np.asarray(fresh).tolist(),
        }

    def ingest(self, ticket: int, labels, *, idempotency_key=None) -> dict:
        """Ingest labels for an outstanding proposal; commits the batch.

        Parameters
        ----------
        ticket:
            The ticket returned by the matching :meth:`propose`.
        labels:
            Binary labels aligned with the proposal's ``pending`` list,
            or a mapping ``{pool index: label}`` covering exactly those
            indices.
        idempotency_key:
            Optional client-supplied retry token (see :meth:`propose`).
            A keyed retry of an ingest that already committed replays
            the original response — labels are never double-counted,
            even if the ack for the first attempt was lost.

        Returns the post-commit status (estimate, labels consumed).
        """
        with self._lock:
            self._require_open()
            replayed = self._replay_dedup(idempotency_key)
            if replayed is not None:
                self._dedup_hits.inc(op="ingest")
                return replayed
            if self._pending is None:
                raise SessionConflictError(
                    f"session {self.session_id} has no outstanding "
                    "proposal; call propose() first"
                )
            if int(ticket) != self._pending["ticket"]:
                raise SessionConflictError(
                    f"ticket {ticket} does not match outstanding proposal "
                    f"ticket {self._pending['ticket']}"
                )
            labels = self._align_labels(labels)
            if self.wal is not None:
                self._journal(
                    "ingest",
                    {"ticket": int(ticket), "labels": encode_state(labels)},
                    idempotency_key,
                )
            response = self._do_ingest(int(ticket), labels)
            self._labels_total.inc(len(labels), session=self.session_id)
            if idempotency_key is not None:
                self._record_dedup(str(idempotency_key), response)
            return response

    def _align_labels(self, labels) -> np.ndarray:
        """Validate client labels against the outstanding proposal."""
        fresh = self._pending["fresh"]
        if isinstance(labels, dict):
            by_index = {int(k): v for k, v in labels.items()}
            missing = [int(i) for i in fresh if int(i) not in by_index]
            if missing:
                raise ValueError(
                    f"labels missing for proposed pairs {missing[:10]}"
                )
            extra = set(by_index) - {int(i) for i in fresh}
            if extra:
                raise ValueError(
                    f"labels supplied for pairs that were not proposed: "
                    f"{sorted(extra)[:10]}"
                )
            labels = [by_index[int(i)] for i in fresh]
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != fresh.shape:
            raise ValueError(
                f"expected {len(fresh)} labels for ticket "
                f"{self._pending['ticket']}; got {len(labels)}"
            )
        if labels.size and np.any((labels != 0) & (labels != 1)):
            bad = labels[(labels != 0) & (labels != 1)][0]
            raise ValueError(f"labels must be 0 or 1; got {bad}")
        return labels

    def _do_ingest(self, ticket: int, labels) -> dict:
        """The in-memory half of ingest (shared with WAL replay)."""
        if self._pending is None or ticket != self._pending["ticket"]:
            raise ValueError(
                f"journal replay out of order: ingest ticket {ticket} has "
                "no matching proposal"
            )
        labels = np.asarray(labels, dtype=np.int64)
        context = self._pending["context"]
        full_labels, new_mask = self.sampler._apply_labels(
            context["indices"], labels
        )
        self.sampler._commit_batch(context, full_labels, new_mask)
        self._pending = None
        return self.status()

    def checkpoint(self) -> int:
        """Journal a full snapshot; returns its event sequence number.

        Restores fast-forward to the latest checkpoint instead of
        replaying the whole journal, so long-lived sessions should
        checkpoint periodically.  An outstanding proposal is captured
        too — a checkpoint taken mid-batch restores mid-batch.

        The journal is flushed before returning: a checkpoint is a
        durability point even under a group-commit WAL (the buffered
        events preceding it ride the same flush, in order).
        """
        with self._lock:
            self._require_open()
            if self.wal is None:
                raise ValueError(
                    f"session {self.session_id} is memory-only (no journal "
                    "directory); cannot checkpoint"
                )
            payload = {
                "ticket": self._ticket,
                "state": encode_state(self.sampler.state_dict()),
                "pending": self._encode_pending(),
            }
            if self._dedup:
                # Replay starts after the latest checkpoint, so the
                # dedup window must ride inside it or keyed retries
                # would double-apply after a restore-from-checkpoint.
                payload["dedup"] = [
                    [key, response] for key, response in self._dedup.items()
                ]
            try:
                seq = self.wal.append("checkpoint", payload)
                self.wal.flush()
            except OSError as exc:
                if exc.errno in _ENOSPC_ERRNOS:
                    raise StorageFullError(
                        f"journal volume full; session {self.session_id} "
                        f"could not checkpoint ({exc})"
                    ) from exc
                raise
            return seq

    def _encode_pending(self) -> dict | None:
        if self._pending is None:
            return None
        return {
            "ticket": self._pending["ticket"],
            "batch_size": self._pending["batch_size"],
            "context": encode_state(self._pending["context"]),
        }

    def _load_checkpoint_event(self, event: dict) -> None:
        self.sampler.load_state_dict(decode_state(event["state"]))
        self._ticket = int(event["ticket"])
        self._dedup = OrderedDict(
            (str(key), dict(response))
            for key, response in event.get("dedup", [])
        )
        pending = event.get("pending")
        if pending is None:
            self._pending = None
        else:
            context = decode_state(pending["context"])
            self._pending = {
                "ticket": int(pending["ticket"]),
                "batch_size": int(pending["batch_size"]),
                "context": context,
                # The label cache at checkpoint time equals the cache
                # now (commit had not run), so the fresh set recomputes
                # identically.
                "fresh": self.sampler._pending_fresh(context["indices"]),
            }

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        """Current session status as a JSON-ready dict."""
        with self._lock:
            sampler = self.sampler
            outstanding = None
            if self._pending is not None:
                outstanding = {
                    "ticket": self._pending["ticket"],
                    "batch_size": self._pending["batch_size"],
                    "pending": np.asarray(self._pending["fresh"]).tolist(),
                }
            estimate = sampler.estimate
            return {
                "session_id": self.session_id,
                "sampler": self.config["sampler"],
                "measure": sampler.measure.name,
                "n_items": sampler.n_items,
                "estimate": None if np.isnan(estimate) else float(estimate),
                "labels_consumed": sampler.labels_consumed,
                "draws": len(sampler.history),
                "outstanding": outstanding,
                "closed": self.closed,
            }

    def estimate_payload(self) -> dict:
        """Status plus every auxiliary estimate the sampler exposes.

        The ``GET /sessions/{id}/estimate`` rendering, shared by the
        in-process HTTP front-end and the shard RPC so the two tiers
        cannot drift.
        """
        with self._lock:
            out = self.status()
            for name, attribute in (
                ("precision", "precision_estimate"),
                ("recall", "recall_estimate"),
            ):
                value = getattr(self.sampler, attribute, None)
                if value is not None:
                    out[name] = None if np.isnan(value) else float(value)
            return out

    def telemetry(self) -> dict:
        """Convergence telemetry for the observability layer.

        Everything here degrades gracefully: samplers without a
        confidence interval or without observation tracking (the plain
        importance sampler) report ``None`` for the signals they cannot
        produce, so the metrics endpoint never 500s over a sampler
        choice.
        """
        with self._lock:
            sampler = self.sampler
            estimate = sampler.estimate
            out = {
                "session_id": self.session_id,
                "estimate": None if np.isnan(estimate) else float(estimate),
                "labels_consumed": int(sampler.labels_consumed),
                "draws": len(sampler.history),
                "ci_width": None,
                "weight_ess": None,
            }
            interval = getattr(sampler, "confidence_interval", None)
            if callable(interval):
                low, high = interval(0.95)
                if not (np.isnan(low) or np.isnan(high)):
                    out["ci"] = [float(low), float(high)]
                    out["ci_width"] = float(high - low)
            ess = getattr(getattr(sampler, "_estimator", None),
                          "weight_ess", None)
            if callable(ess):
                try:
                    out["weight_ess"] = float(ess())
                except RuntimeError:
                    pass  # estimator not tracking observations
            return out

    def history_payload(self) -> dict:
        """The estimate trajectory, for live convergence reports.

        ``history[i]`` is the estimate after draw ``i+1`` and
        ``budget_history[i]`` the distinct labels consumed at that
        point — plotting one against the other is the paper's
        convergence curve.  NaN estimates (undefined early ratios)
        serialise as ``None``.
        """
        with self._lock:
            sampler = self.sampler
            history = [
                None if np.isnan(value) else float(value)
                for value in sampler.history
            ]
            payload = {
                "session_id": self.session_id,
                "sampler": self.config["sampler"],
                "measure": sampler.measure.name,
                "history": history,
                "budget_history": [int(v) for v in sampler.budget_history],
                "labels_consumed": int(sampler.labels_consumed),
            }
            telemetry = self.telemetry()
            for key in ("estimate", "ci", "ci_width", "weight_ess"):
                if key in telemetry:
                    payload[key] = telemetry[key]
            return payload

    @property
    def estimate(self) -> float:
        return self.sampler.estimate

    @property
    def labels_consumed(self) -> int:
        return self.sampler.labels_consumed

    def close(self) -> None:
        """Mark the session closed; a journalled session stays on disk."""
        with self._lock:
            if not self.closed and self.wal is not None:
                self.checkpoint()
            self.closed = True
