"""One shard worker: a session-owning process with a group-commit loop.

A shard is the unit of both parallelism and durability in the sharded
service tier.  Each worker process owns one
:class:`~repro.service.manager.SessionManager` rooted at its own shard
directory (``<root>/shard-<k>/``) — no session is ever visible to two
workers, so there is no cross-process locking anywhere — and serves a
length-prefixed RPC (:mod:`repro.service.rpc`) over a loopback TCP
socket whose port it reports through a bootstrap pipe at startup.

The worker is organised around a single **commit loop** (the main
thread):

1. Reader threads (one per router connection) decode frames into a
   *bounded* inbox.  A full inbox is answered immediately with a
   backpressure reply (HTTP 503 + ``Retry-After`` once the router
   renders it) — the request is never half-taken; ``stats`` / ``ping``
   are answered out-of-band so health stays observable under overload.
2. The commit loop drains up to ``max_batch`` queued requests (waiting
   up to ``flush_interval`` after the first to let a group form),
   executes them against the manager — journal events land in each
   session's :class:`~repro.service.wal.GroupCommitWAL` buffer —
3. then **flushes every dirty journal once** (one data fsync + one
   directory fsync per dirty session per window, not per event),
4. and only then sends the replies.

Step 3 before step 4 is the whole durability contract: an
acknowledgement is sent only after the events it covers are on disk, so
a ``kill -9`` at *any* instant loses at most events that were never
acknowledged.  Replaying the journal after a crash restores each
session to the exact acknowledged trajectory (see
``tests/test_service_faults.py``, which kills workers at every
durability stage in between).

``SIGTERM`` is graceful drain: stop admitting work, finish the queue,
flush, checkpoint every resident session to disk, exit 0.  ``SIGKILL``
is the crash path the journal exists for.
"""

from __future__ import annotations

import errno
import json
import os
import queue
import signal
import socket
import sys
import threading
import time

from repro.service.errors import (
    CorruptStateError,
    ServiceError,
    StorageFullError,
)
from repro.service.manager import SessionManager
from repro.service.rpc import recv_frame, send_frame
from repro.service.wal import GroupCommitWAL, WAL_CODECS
from repro.utils import (
    MetricsRegistry,
    bind_request_id,
    configure_logging,
    get_logger,
)
from repro.utils.metrics import SIZE_BUCKETS

__all__ = ["shard_worker_main", "shard_dir_name", "SHARD_DEFAULTS"]

#: Ops refused while the shard is read-only (journal volume full).
_MUTATING_OPS = frozenset({"create", "propose", "ingest", "checkpoint",
                           "close"})

SHARD_DEFAULTS = {
    "codec": "json",          # WAL shard serialisation: "json" | "binary"
    "flush_interval": 0.0,    # seconds to wait for a group after the first
    "max_batch": 32,          # max requests executed per commit window
    "max_queue": 128,         # inbox bound; beyond it -> backpressure
    "capacity": None,         # resident-session cap per shard
    "fault": None,            # crash-point spec (tests only)
    "log_format": None,       # structured-log format: "json" | "text"
    "log_level": None,        # structured-log level
}


def shard_dir_name(index: int) -> str:
    """The on-disk directory name of shard ``index`` under the root."""
    return f"shard-{index:03d}"


class _Conn:
    """A router connection: socket, buffered reader, reply lock."""

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.sock = sock
        self.rfile = sock.makefile("rb")
        self.lock = threading.Lock()

    def reply(self, request_id, status: int, payload: dict,
              retry_after: float | None = None) -> None:
        header = {"id": request_id, "status": int(status)}
        if retry_after is not None:
            header["retry_after"] = retry_after
        body = json.dumps(payload).encode("utf-8")
        try:
            with self.lock:
                send_frame(self.sock, header, body)
        except OSError:
            # The router vanished mid-reply.  The events behind this
            # response are already durable; the client recovers through
            # status() on its retry, so a lost ack is safe to drop.
            pass


class _ShardState:
    """Everything the threads share, plus plain-int telemetry counters."""

    def __init__(self, manager: SessionManager, options: dict, plan):
        self.manager = manager
        self.options = options
        self.plan = plan
        self.inbox: queue.Queue = queue.Queue(maxsize=options["max_queue"])
        self.draining = threading.Event()
        self.batches = 0
        self.requests = 0
        self.flushes = 0
        self.events_flushed = 0
        self.overloads = 0
        self.log = get_logger("shard")
        metrics = manager.metrics
        self._request_seconds = metrics.histogram(
            "oasis_request_seconds",
            "Shard request execution latency, by op.", ("op",))
        self._batch_sizes = metrics.histogram(
            "oasis_commit_batch_size",
            "Requests executed per group-commit window.",
            buckets=SIZE_BUCKETS)
        self._overloads_total = metrics.counter(
            "oasis_overloads_total",
            "Requests refused with backpressure (503).")
        self._queue_gauge = metrics.gauge(
            "oasis_queue_depth", "Requests waiting in the shard inbox.")
        # Sticky degraded mode: once a journal write hits ENOSPC (or a
        # flush fails outright), mutations are refused with 503 until
        # the worker restarts.  Reads keep serving — degradation over
        # damage.
        self.read_only = False
        self.read_only_reason: str | None = None

    def enter_read_only(self, reason) -> None:
        if not self.read_only:
            self.read_only = True
            self.read_only_reason = str(reason)
            self.log.error("shard_read_only", reason=str(reason))

    def note_overload(self) -> None:
        self.overloads += 1
        self._overloads_total.inc()

    def metrics_snapshot(self) -> dict:
        """The registry snapshot shipped to the router on a scrape."""
        self._queue_gauge.set(self.inbox.qsize())
        self.manager.observe_session_telemetry()
        return self.manager.metrics.snapshot()

    def stats(self) -> dict:
        return {
            "pid": os.getpid(),
            "queue_depth": self.inbox.qsize(),
            "max_queue": self.options["max_queue"],
            "resident_sessions": self.manager.resident_count,
            "draining": self.draining.is_set(),
            "batches": self.batches,
            "requests": self.requests,
            "flushes": self.flushes,
            "events_flushed": self.events_flushed,
            "overloads": self.overloads,
            "read_only": self.read_only,
            "read_only_reason": self.read_only_reason,
            "wal_recovered": list(self.manager.wal_recoveries),
        }


def _execute(state: _ShardState, header: dict, body: bytes):
    """Run one request.

    Returns ``(status, payload, dirty_session_or_None, retry_after)``;
    ``retry_after`` is non-None only for backpressure replies the
    router should render with a ``Retry-After`` header.
    """
    manager = state.manager
    op = header.get("op")
    sid = header.get("sid")
    if state.read_only and op in _MUTATING_OPS:
        state.note_overload()
        return 503, {
            "error": f"shard is read-only ({state.read_only_reason}); "
                     "mutating requests are refused until it restarts"
        }, None, 5.0
    try:
        payload = json.loads(body) if body else {}
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        if op == "create":
            for field in ("predictions", "scores"):
                if field not in payload:
                    raise ValueError(f"create body needs {field!r}")
            session = manager.create_session(
                payload["predictions"],
                payload["scores"],
                sampler=payload.get("sampler", "oasis"),
                sampler_kwargs=payload.get("sampler_kwargs") or {},
                alpha=payload.get("alpha"),
                measure=payload.get("measure"),
                seed=payload.get("seed", 0),
                session_id=payload.get("session_id") or sid,
            )
            return 200, session.status(), None, None
        if op == "status":
            return 200, manager.get(sid).status(), None, None
        if op == "estimate":
            return 200, manager.get(sid).estimate_payload(), None, None
        if op == "history":
            return 200, manager.get(sid).history_payload(), None, None
        if op == "propose":
            session = manager.get(sid)
            result = session.propose(
                payload.get("batch_size", 1),
                idempotency_key=payload.get("key"),
            )
            return 200, result, session, None
        if op == "ingest":
            if "ticket" not in payload or "labels" not in payload:
                raise ValueError("ingest body needs 'ticket' and 'labels'")
            session = manager.get(sid)
            result = session.ingest(
                payload["ticket"], payload["labels"],
                idempotency_key=payload.get("key"),
            )
            return 200, result, session, None
        if op == "checkpoint":
            seq = manager.get(sid).checkpoint()
            return 200, {"session_id": sid, "seq": seq}, None, None
        if op == "close":
            manager.close_session(sid)
            return 200, {"session_id": sid, "closed": True}, None, None
        if op == "list":
            return 200, {"sessions": manager.list_sessions()}, None, None
        raise ValueError(f"unknown shard op {op!r}")
    except StorageFullError as exc:
        state.enter_read_only(exc)
        state.note_overload()
        return exc.status, {"error": str(exc)}, None, exc.retry_after
    except CorruptStateError as exc:
        return exc.status, {
            "error": str(exc), "path": exc.path, "offset": exc.offset,
        }, None, None
    except ServiceError as exc:
        return exc.status, {"error": str(exc)}, None, getattr(
            exc, "retry_after", None)
    except (ValueError, TypeError) as exc:
        return 400, {"error": str(exc)}, None, None
    except KeyError as exc:
        return 404, {"error": f"not found: {exc}"}, None, None
    except OSError as exc:
        if exc.errno in (errno.ENOSPC, errno.EDQUOT):
            # A synchronous write (manifest, per-event shard) hit a
            # full volume.  Journal-before-mutate means the request
            # simply did not happen; degrade to read-only.
            state.enter_read_only(exc)
            state.note_overload()
            return 503, {"error": f"journal volume full: {exc}"}, None, 5.0
        return 500, {"error": f"{type(exc).__name__}: {exc}"}, None, None
    except Exception as exc:  # pragma: no cover - last-resort guard
        return 500, {"error": f"{type(exc).__name__}: {exc}"}, None, None


def _conn_loop(state: _ShardState, conn: _Conn) -> None:
    """Per-connection reader: frames in, backpressure out."""
    retry_after = max(state.options["flush_interval"], 0.05)
    while True:
        try:
            header, body = recv_frame(conn.rfile)
        except (ConnectionError, ValueError, OSError):
            return
        op = header.get("op")
        if op == "ping":
            conn.reply(header.get("id"), 200, {"ok": True})
            continue
        if op == "stats":
            # Out-of-band so health reporting cannot be starved by a
            # jammed inbox — observability under overload is the point.
            conn.reply(header.get("id"), 200, state.stats())
            continue
        if op == "metrics":
            # Scrapes are read-only and must work while the inbox is
            # jammed, for the same reason as stats.
            conn.reply(header.get("id"), 200, state.metrics_snapshot())
            continue
        if op == "drain":
            state.draining.set()
            conn.reply(header.get("id"), 200, {"draining": True})
            continue
        if state.draining.is_set():
            state.note_overload()
            conn.reply(header.get("id"), 503,
                       {"error": "shard is draining for shutdown"},
                       retry_after=1.0)
            continue
        try:
            state.inbox.put_nowait((conn, header, body))
        except queue.Full:
            state.note_overload()
            conn.reply(header.get("id"), 503,
                       {"error": "shard queue is full; retry"},
                       retry_after=retry_after)


def _collect_batch(state: _ShardState) -> list | None:
    """Take the next commit window off the inbox (None on drain+empty)."""
    options = state.options
    try:
        first = state.inbox.get(timeout=0.05)
    except queue.Empty:
        return None if state.draining.is_set() else []
    batch = [first]
    flush_interval = options["flush_interval"]
    deadline = time.monotonic() + flush_interval
    while len(batch) < options["max_batch"]:
        if flush_interval > 0:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(state.inbox.get(timeout=remaining))
            except queue.Empty:
                break
        else:
            try:
                batch.append(state.inbox.get_nowait())
            except queue.Empty:
                break
    return batch


def _commit_loop(state: _ShardState) -> None:
    """Execute → flush once → acknowledge, forever (the main thread).

    A single serial loop, on purpose.  A two-stage pipeline (executor
    thread + flusher thread) was tried and measured slower under fleet
    load on a single core: the executor outruns the flusher, windows
    fragment to ~1 request each, and the per-window hand-off and
    thread wake-ups cost more than the fsync overlap buys.  The serial
    loop naturally accumulates the inbox into wide windows while it
    flushes, which is where group commit's amortisation comes from.
    """
    plan = state.plan
    while True:
        batch = _collect_batch(state)
        if batch is None:
            return  # draining and the queue is empty
        if not batch:
            continue
        replies = []
        dirty: dict[str, object] = {}
        for position, (conn, header, body) in enumerate(batch):
            if position and plan is not None:
                plan.trip("batch:mid")
            # The router forwards the front door's request id in the
            # frame header; binding it here means every log event the
            # request triggers (eviction, restore, read-only flip)
            # carries the same trace id the client saw.
            token = bind_request_id(header.get("rid"))
            started = time.perf_counter()
            try:
                status, payload, session, retry_after = _execute(
                    state, header, body)
            finally:
                state._request_seconds.observe(
                    time.perf_counter() - started,
                    op=str(header.get("op")))
                token.var.reset(token)
            sid = None
            if session is not None and session.wal is not None:
                sid = session.session_id
                dirty[sid] = session
            replies.append((conn, header, status, payload, retry_after, sid))
        failed: set[str] = set()
        for session in dirty.values():
            with session._lock:
                events = session.wal.pending_events
                try:
                    session.wal.flush()
                except OSError as exc:
                    # The in-memory session has applied events the
                    # journal could not record — its state has diverged
                    # from disk.  Discard it (the next access restores
                    # from the durable prefix) and fail its replies:
                    # nothing un-durable may be acknowledged.
                    failed.add(session.session_id)
                    state.enter_read_only(exc)
                    continue
            state.flushes += 1
            state.events_flushed += events
        for session_id in failed:
            state.manager.discard(session_id)
        if plan is not None:
            plan.trip("batch:pre_ack")
        for conn, header, status, payload, retry_after, sid in replies:
            if sid in failed and 200 <= status < 300:
                status = 503
                payload = {
                    "error": "journal flush failed "
                             f"({state.read_only_reason}); the request was "
                             "rolled back and the shard is read-only"
                }
                retry_after = 5.0
                state.note_overload()
            conn.reply(header.get("id"), status, payload,
                       retry_after=retry_after)
        state.batches += 1
        state.requests += len(batch)
        state._batch_sizes.observe(len(batch))


def shard_worker_main(bootstrap, shard_dir, options: dict | None = None):
    """Process entry point for one shard worker.

    Parameters
    ----------
    bootstrap:
        A ``multiprocessing`` pipe connection; the worker sends
        ``{"port": ..., "pid": ...}`` once its listener is bound, then
        closes it.
    shard_dir:
        This shard's root directory (sessions journal beneath it).
    options:
        Overrides over :data:`SHARD_DEFAULTS`; unknown keys rejected.
    """
    options = dict(SHARD_DEFAULTS, **(options or {}))
    unknown = set(options) - set(SHARD_DEFAULTS)
    if unknown:
        raise ValueError(f"unknown shard options {sorted(unknown)}")
    if options["codec"] not in WAL_CODECS:
        raise ValueError(f"unknown WAL codec {options['codec']!r}")

    configure_logging(options["log_format"], options["log_level"])
    registry = MetricsRegistry()

    plan = None
    wrap_socket = None
    if options["fault"]:
        from repro.service.faults import (
            FaultingSocket, FaultPlan, faulting_wal_factory,
        )

        plan = FaultPlan.from_spec(options["fault"])
        wal_factory = faulting_wal_factory(
            plan, codec=options["codec"],
            max_batch=max(64, 2 * options["max_batch"]))
        if str(options["fault"].get("stage", "")).startswith("sock:"):
            def wrap_socket(sock):  # noqa: E731 - tiny closure
                return FaultingSocket(sock, plan)
    else:
        def wal_factory(directory):
            return GroupCommitWAL(
                directory, codec=options["codec"],
                max_batch=max(64, 2 * options["max_batch"]),
                metrics=registry)

    manager = SessionManager(
        shard_dir, capacity=options["capacity"], wal_factory=wal_factory,
        metrics=registry)
    state = _ShardState(manager, options, plan)

    signal.signal(signal.SIGTERM, lambda *_: state.draining.set())

    listener = socket.create_server(("127.0.0.1", 0), backlog=16)
    port = listener.getsockname()[1]

    def accept_loop():
        while True:
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed during drain
            conn = _Conn(sock)
            if wrap_socket is not None:
                conn.sock = wrap_socket(conn.sock)
            threading.Thread(
                target=_conn_loop, args=(state, conn), daemon=True,
            ).start()

    threading.Thread(target=accept_loop, daemon=True).start()
    bootstrap.send({"port": port, "pid": os.getpid()})
    bootstrap.close()
    state.log.info("shard_started", shard=os.path.basename(str(shard_dir)),
                   pid=os.getpid(), port=port)

    _commit_loop(state)

    # Graceful drain: everything queued has been executed, flushed and
    # acknowledged; now park every resident session durably on disk.
    # A read-only shard skips the checkpoint pass — its journal volume
    # cannot take writes, and the durable prefix on disk is already the
    # authoritative state.
    if not state.read_only:
        manager.drain_to_disk()
    listener.close()
    state.log.info("shard_drained", shard=os.path.basename(str(shard_dir)),
                   requests=state.requests, batches=state.batches)
    sys.exit(0)
