"""Append-only write-ahead log for evaluation sessions.

The journal reuses the shard/manifest idiom of
:class:`~repro.experiments.persistence.TrialStore`: one directory per
session holding a ``manifest.json`` (the session's immutable identity —
pool arrays, sampler configuration, seed) and an ``events/`` directory
of atomically-written shards.  The set of shard files on disk *is* the
log: every write goes tmp-file → fsync → rename → **directory fsync**,
so a kill at any instant leaves either the complete shard durably named
or nothing — never a torn file, and never a rename that a crash can
roll back (the directory fsync after the rename is load-bearing: on
filesystems that journal metadata lazily, a crash between rename and
directory sync could otherwise drop the newest shard).

Two shard shapes coexist in one journal:

``e<seq>-<kind>.<ext>``
    One event per file — the synchronous write path
    (:meth:`SessionWAL.append`): durable before the call returns.
``b<first>-<last>.<ext>``
    A **group-commit batch**: a contiguous run of events flushed with a
    single data fsync + a single directory fsync
    (:class:`GroupCommitWAL`).  Batching is what takes the journalling
    cost from one fsync per event to one per flush window; the price is
    the group-commit contract — an event is durable only once its batch
    has flushed, so callers must not acknowledge it to a client before
    :meth:`GroupCommitWAL.flush` returns.

``<ext>`` is ``json`` (human-readable, the default) or ``bin`` (the
compact binary codec in :mod:`repro.service.codec`); a journal may mix
both and replays them identically.

Event kinds (see :class:`repro.service.session.EvaluationSession`):

``propose``
    ``{ticket, batch_size}`` — logged *before* the in-memory draw, so
    a crash between the two replays the draw deterministically.
``ingest``
    ``{ticket, labels}`` — logged before the commit, same reasoning.
``checkpoint``
    A full sampler snapshot plus any outstanding proposal context.
    Restore starts from the latest checkpoint and replays only the
    events after it, keeping recovery O(events since checkpoint).
"""

from __future__ import annotations

import json
import os
import re
import struct
import time
import uuid
from pathlib import Path

from repro.service.codec import dump_state_binary, load_state_binary
from repro.utils import (
    NULL_REGISTRY,
    CorruptStateError,
    atomic_write_text,
    crc32c,
    fsync_directory,
)
from repro.utils.metrics import SIZE_BUCKETS

__all__ = ["SessionWAL", "GroupCommitWAL", "WAL_CODECS"]

_EVENT_RE = re.compile(
    r"^e(?P<seq>\d{8})-(?P<kind>[a-z]+)\.(?P<ext>json|bin)$"
)
_BATCH_RE = re.compile(
    r"^b(?P<first>\d{8})-(?P<last>\d{8})\.(?P<ext>json|bin)$"
)
_EVENT_KINDS = ("propose", "ingest", "checkpoint")

WAL_CODECS = ("json", "binary")
_EXTENSIONS = {"json": "json", "binary": "bin"}

# Every shard written since the integrity layer landed is a checksummed
# frame: magic, payload length, CRC32C of the payload, payload.  The
# frame is what turns "a file exists with this name" into "this file
# holds exactly the bytes the writer fsynced": restore can distinguish
# a truncated tail (recoverable — the write never completed, so its
# events were never acknowledged) from mid-log damage (not recoverable
# without losing acknowledged events — a hard CorruptStateError).
# Shards without the magic are pre-frame journals (committed fixtures,
# live deployments from before the format change) and load unchecked.
_FRAME_MAGIC = b"WFC1"
_FRAME_HEADER = struct.Struct(">II")  # payload length, CRC32C(payload)
_FRAME_PREFIX = len(_FRAME_MAGIC) + _FRAME_HEADER.size


class _TornShard(Exception):
    """A shard file ends before its frame does (internal to the WAL)."""

    def __init__(self, message: str, offset: int):
        super().__init__(message)
        self.offset = offset


def frame_payload(payload: bytes) -> bytes:
    """Wrap serialised shard bytes in a checksummed frame."""
    return (_FRAME_MAGIC
            + _FRAME_HEADER.pack(len(payload), crc32c(payload))
            + payload)


def unframe_payload(data: bytes, path) -> bytes:
    """Verify and strip a shard frame; pass pre-frame shards through.

    Raises :class:`_TornShard` when the file stops before the frame
    does (a torn write — only ever legitimate at the log's tail) and
    :class:`~repro.utils.CorruptStateError` when the bytes are all
    there but wrong (bit rot, trailing garbage).
    """
    if data[:4] != _FRAME_MAGIC:
        if len(data) < 4 and _FRAME_MAGIC[:len(data)] == data:
            raise _TornShard(
                f"shard {path} holds only {len(data)} bytes of frame "
                "magic", offset=len(data))
        return data  # pre-frame shard: no checksum recorded
    if len(data) < _FRAME_PREFIX:
        raise _TornShard(
            f"shard {path} is truncated inside its frame header "
            f"({len(data)}/{_FRAME_PREFIX} bytes)", offset=len(data))
    length, checksum = _FRAME_HEADER.unpack_from(data, 4)
    expected = _FRAME_PREFIX + length
    if len(data) < expected:
        raise _TornShard(
            f"shard {path} is truncated at byte {len(data)} "
            f"(frame declares {expected})", offset=len(data))
    if len(data) > expected:
        raise CorruptStateError(
            f"WAL shard {path} carries {len(data) - expected} bytes of "
            f"trailing garbage after its frame (offset {expected})",
            path=path, offset=expected)
    payload = data[_FRAME_PREFIX:]
    actual = crc32c(payload)
    if actual != checksum:
        raise CorruptStateError(
            f"WAL shard {path} failed its CRC32C check at offset "
            f"{_FRAME_PREFIX} (recorded {checksum:#010x}, computed "
            f"{actual:#010x})", path=path, offset=_FRAME_PREFIX)
    return payload


class SessionWAL:
    """The on-disk journal of one evaluation session.

    Parameters
    ----------
    directory:
        The session directory; created (with its ``events/`` child) if
        absent.
    codec:
        Serialisation for *new* shards: ``"json"`` or ``"binary"``.
        Reading auto-detects per file, so a journal written under one
        codec restores under any.
    metrics:
        A :class:`~repro.utils.metrics.MetricsRegistry` to record
        append/fsync latency, flush batch sizes and torn-tail
        recoveries into; defaults to the no-op registry.
    """

    MANIFEST = "manifest.json"
    MANIFEST_DIGEST = "manifest.crc32c"

    def __init__(self, directory, *, codec: str = "json", metrics=None):
        if codec not in WAL_CODECS:
            raise ValueError(
                f"unknown WAL codec {codec!r}; choose from {WAL_CODECS}"
            )
        self.directory = Path(directory)
        self.codec = codec
        registry = NULL_REGISTRY if metrics is None else metrics
        self._append_seconds = registry.histogram(
            "oasis_wal_append_seconds",
            "Latency of durable WAL append/flush calls.")
        self._fsync_seconds = registry.histogram(
            "oasis_wal_fsync_seconds",
            "Latency of individual fsync calls issued by the WAL.")
        self._flush_events = registry.histogram(
            "oasis_wal_flush_events",
            "Events made durable per WAL flush.", buckets=SIZE_BUCKETS)
        self._recovered_total = registry.counter(
            "oasis_wal_recovered_total",
            "Torn-tail WAL shards dropped during recovery scans.")
        self.event_dir = self.directory / "events"
        self.event_dir.mkdir(parents=True, exist_ok=True)
        #: Torn-tail shards dropped during :meth:`events` scans, each a
        #: ``{"file", "offset", "reason"}`` dict.  Only ever unacked
        #: writes — surfaced so operators can see recovery happened.
        self.recovered: list[dict] = []
        self._next_seq = self._scan_next_seq()

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    @property
    def manifest_digest_path(self) -> Path:
        return self.directory / self.MANIFEST_DIGEST

    def read_manifest(self) -> dict | None:
        """The session's identity payload, or None before creation.

        When a ``manifest.crc32c`` sidecar exists (every session created
        since the integrity layer), the manifest bytes are verified
        against it; a mismatch or unparsable manifest raises
        :class:`~repro.utils.CorruptStateError`.  Sessions without the
        sidecar (pre-frame journals) load unchecked.
        """
        if not self.manifest_path.is_file():
            return None
        raw = self.manifest_path.read_bytes()
        if self.manifest_digest_path.is_file():
            recorded = self.manifest_digest_path.read_text().strip()
            actual = f"{crc32c(raw):08x}"
            if recorded != actual:
                raise CorruptStateError(
                    f"session manifest {self.manifest_path} failed its "
                    f"CRC32C check (recorded {recorded}, computed "
                    f"{actual})", path=self.manifest_path, offset=0)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptStateError(
                f"session manifest {self.manifest_path} is not valid "
                f"JSON: {exc}", path=self.manifest_path) from exc

    def write_manifest(self, payload: dict) -> None:
        """Record the session identity; refuses to overwrite a different one.

        The manifest is immutable for the lifetime of the session — a
        second write must carry the identical payload (idempotent
        re-create), anything else raises.  The write is made durable
        name-and-all: the session directory is fsynced after the
        rename, and the *parent* (service root) after that, so an
        acknowledged create survives a crash on any filesystem.  A
        ``manifest.crc32c`` sidecar records the manifest's checksum;
        it is written *after* the manifest, so a crash between the two
        leaves a valid (merely unverifiable) session behind.
        """
        existing = self.read_manifest()
        if existing is not None:
            if existing != payload:
                raise ValueError(
                    f"session directory {self.directory} already holds a "
                    "different session; choose a fresh directory"
                )
            if not self.manifest_digest_path.is_file():
                self._write_manifest_digest()
            return
        atomic_write_text(
            self.manifest_path, json.dumps(payload, sort_keys=True),
            fsync_dir=True,
        )
        self._write_manifest_digest()
        fsync_directory(self.directory.parent)

    def _write_manifest_digest(self) -> None:
        atomic_write_text(
            self.manifest_digest_path,
            f"{crc32c(self.manifest_path.read_bytes()):08x}\n",
            fsync_dir=True,
        )

    # -- write path --------------------------------------------------------

    def append(self, kind: str, payload: dict) -> int:
        """Durably append one event; returns its sequence number.

        Synchronous: one data fsync and one directory fsync per call.
        The event is durable when this returns.  A failed write (disk
        full, I/O error) rolls the sequence counter back so the journal
        never develops a gap — a gap would silently truncate every
        later event at replay.
        """
        record = self._make_record(kind, payload)
        started = time.perf_counter()
        try:
            self._write_records([record])
        except BaseException:
            self._next_seq = record["seq"]
            raise
        self._append_seconds.observe(time.perf_counter() - started)
        self._flush_events.observe(1)
        return record["seq"]

    def flush(self) -> int:
        """Make every appended event durable; returns the last sequence.

        A no-op here — :meth:`append` is synchronous — but part of the
        WAL interface so callers can treat a :class:`GroupCommitWAL`
        and a plain journal uniformly.
        """
        return self._next_seq - 1

    @property
    def pending_events(self) -> int:
        """Appended-but-not-yet-durable events (always 0 here)."""
        return 0

    def _make_record(self, kind: str, payload: dict) -> dict:
        if kind not in _EVENT_KINDS:
            raise ValueError(f"unknown WAL event kind {kind!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        return {"seq": seq, "kind": kind, **payload}

    def _write_records(self, records: list[dict]) -> None:
        """Write a contiguous run of records as one durable shard."""
        if not records:
            return
        ext = _EXTENSIONS[self.codec]
        if len(records) == 1:
            record = records[0]
            name = f"e{record['seq']:08d}-{record['kind']}.{ext}"
            content: dict = record
        else:
            first, last = records[0]["seq"], records[-1]["seq"]
            name = f"b{first:08d}-{last:08d}.{ext}"
            content = {"records": records}
        if self.codec == "binary":
            data = dump_state_binary(content)
        else:
            data = json.dumps(content).encode("utf-8")
        self._write_durable(self.event_dir / name, frame_payload(data))

    def _write_durable(self, path: Path, data: bytes) -> None:
        """tmp-write → fsync → rename → directory fsync, with stage hooks.

        The inline spelling (rather than
        :func:`repro.utils.atomic_write_bytes`) exists so subclasses —
        the fault-injection wrappers in :mod:`repro.service.faults` —
        can interpose at every durability stage and kill the process
        there.
        """
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        try:
            self._stage("pre_write", path=path)
            with open(tmp, "wb") as handle:
                handle.write(data)
                handle.flush()
                self._stage("pre_fsync", path=path)
                started = time.perf_counter()
                os.fsync(handle.fileno())
                self._fsync_seconds.observe(time.perf_counter() - started)
            self._stage("pre_rename", path=path)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self._stage("post_rename", path=path)
        started = time.perf_counter()
        fsync_directory(path.parent)
        self._fsync_seconds.observe(time.perf_counter() - started)
        self._stage("post_durable", path=path)

    def _stage(self, stage: str, **context) -> None:
        """Durability-stage hook; no-op outside fault injection."""

    # -- read path ---------------------------------------------------------

    def _scan_next_seq(self) -> int:
        last = 0
        for path in self.event_dir.iterdir():
            match = _EVENT_RE.match(path.name)
            if match:
                last = max(last, int(match.group("seq")))
                continue
            match = _BATCH_RE.match(path.name)
            if match:
                last = max(last, int(match.group("last")))
        return last + 1

    def _load_shard(self, path: Path) -> dict:
        """Read, verify and decode one shard.

        Raises :class:`_TornShard` for an incomplete tail write and
        :class:`~repro.utils.CorruptStateError` for checksum failures
        or shards whose (verified or legacy) payload will not decode.
        """
        payload = unframe_payload(path.read_bytes(), path)
        try:
            if path.suffix == ".bin":
                return load_state_binary(payload)
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptStateError(
                f"WAL shard {path} does not decode as its "
                f"{path.suffix!r} codec: {exc}", path=path) from exc

    def events(self) -> list[dict]:
        """All durable events on disk, in sequence order.

        Shard frames are verified as they load.  A torn write (the file
        ends before its frame does) is legitimate only for the shard at
        the very tail of the log — the crash interrupted a write whose
        events were therefore never acknowledged — and recovery drops
        it: the file is unlinked, the drop is recorded in
        :attr:`recovered`, and the log continues from the last valid
        prefix.  A torn or checksum-failed shard anywhere *before* the
        tail means acknowledged events are damaged, which raises
        :class:`~repro.utils.CorruptStateError` naming the file and
        offset rather than silently serving a shortened history.

        A gap in the sequence (possible only through manual deletion)
        truncates the log at the gap, because events after it no longer
        have a consistent prefix to replay onto.
        Buffered-but-unflushed events of a :class:`GroupCommitWAL` are
        by definition absent.
        """
        shards = []
        for path in sorted(self.event_dir.iterdir()):
            match = _EVENT_RE.match(path.name)
            if match:
                shards.append((int(match.group("seq")), path, match, False))
                continue
            match = _BATCH_RE.match(path.name)
            if match:
                shards.append((int(match.group("first")), path, match, True))
        shards.sort(key=lambda item: item[0])
        found = {}
        for position, (_, path, match, is_batch) in enumerate(shards):
            try:
                content = self._load_shard(path)
            except _TornShard as torn:
                if position != len(shards) - 1:
                    raise CorruptStateError(
                        f"WAL shard {path} is torn mid-log: {torn} "
                        "(later shards exist, so acknowledged events "
                        "would be lost)", path=path, offset=torn.offset
                    ) from torn
                # Torn tail: the interrupted write was never
                # acknowledged, so dropping it loses nothing a client
                # was promised.  Unlink it so the sequence scan cannot
                # skip numbers over a ghost file.
                path.unlink()
                fsync_directory(self.event_dir)
                self.recovered.append({
                    "file": path.name,
                    "offset": torn.offset,
                    "reason": str(torn),
                })
                self._recovered_total.inc()
                self._next_seq = self._scan_next_seq()
                continue
            if not is_batch:
                if content.get("kind") != match.group("kind") or int(
                    content.get("seq", -1)
                ) != int(match.group("seq")):
                    raise CorruptStateError(
                        f"WAL event {path.name} disagrees with its name",
                        path=path,
                    )
                found[int(match.group("seq"))] = content
                continue
            records = content.get("records", [])
            first, last = int(match.group("first")), int(match.group("last"))
            seqs = [int(record.get("seq", -1)) for record in records]
            if seqs != list(range(first, last + 1)):
                raise CorruptStateError(
                    f"WAL batch {path.name} disagrees with its name",
                    path=path,
                )
            for record in records:
                if record.get("kind") not in _EVENT_KINDS:
                    raise CorruptStateError(
                        f"WAL batch {path.name} holds unknown event kind "
                        f"{record.get('kind')!r}", path=path,
                    )
                found[int(record["seq"])] = record
        out = []
        seq = 1
        while seq in found:
            out.append(found[seq])
            seq += 1
        return out


class GroupCommitWAL(SessionWAL):
    """A journal that batches events and fsyncs once per flush.

    :meth:`append` only buffers (and assigns the sequence number);
    :meth:`flush` writes the whole buffer as one batch shard with a
    single data fsync and a single directory fsync.  The buffer also
    self-flushes when it reaches ``max_batch`` events, bounding both
    memory and the amount of work a flush can owe.

    The durability contract shifts accordingly: an event is durable
    only once the flush covering it has returned.  Callers that
    acknowledge events to clients — the shard worker — must flush
    first and acknowledge after; events buffered at a crash are lost,
    which is exactly the "may lose only un-acked events" group-commit
    guarantee.

    Parameters
    ----------
    directory, codec:
        As for :class:`SessionWAL`.
    max_batch:
        Self-flush threshold in events (≥ 1).
    """

    def __init__(self, directory, *, codec: str = "json",
                 max_batch: int = 32, metrics=None):
        if int(max_batch) < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        super().__init__(directory, codec=codec, metrics=metrics)
        self.max_batch = int(max_batch)
        self._buffer: list[dict] = []

    def append(self, kind: str, payload: dict) -> int:
        """Buffer one event; durable only after the next :meth:`flush`.

        If the append triggers a self-flush and that flush fails, the
        event is un-buffered and the sequence counter rolled back: the
        caller's request did not happen, and the journal must not later
        flush an event whose in-memory half never ran.
        """
        record = self._make_record(kind, payload)
        self._buffer.append(record)
        if len(self._buffer) >= self.max_batch:
            try:
                self.flush()
            except BaseException:
                self._buffer.pop()
                self._next_seq = record["seq"]
                raise
        return record["seq"]

    def flush(self) -> int:
        """Write all buffered events as one batch shard; returns last seq."""
        if self._buffer:
            started = time.perf_counter()
            self._write_records(self._buffer)
            self._append_seconds.observe(time.perf_counter() - started)
            self._flush_events.observe(len(self._buffer))
            self._buffer = []
        return self._next_seq - 1

    @property
    def pending_events(self) -> int:
        """Events appended but not yet durable."""
        return len(self._buffer)
