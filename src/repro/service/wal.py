"""Append-only write-ahead log for evaluation sessions.

The journal reuses the shard/manifest idiom of
:class:`~repro.experiments.persistence.TrialStore`: one directory per
session holding a ``manifest.json`` (the session's immutable identity —
pool arrays, sampler configuration, seed) and an ``events/`` directory
with one atomically-written JSON shard per protocol event.  The set of
event files on disk *is* the log: writes go through
:func:`repro.utils.atomic_write_text`, so a kill at any instant leaves
either the complete event or nothing — never a torn file — and restore
is a pure function of the directory contents.

Event kinds (see :class:`repro.service.session.EvaluationSession`):

``propose``
    ``{ticket, batch_size}`` — logged *before* the in-memory draw, so
    a crash between the two replays the draw deterministically.
``ingest``
    ``{ticket, labels}`` — logged before the commit, same reasoning.
``checkpoint``
    A full sampler snapshot plus any outstanding proposal context.
    Restore starts from the latest checkpoint and replays only the
    events after it, keeping recovery O(events since checkpoint).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.utils import atomic_write_text

__all__ = ["SessionWAL"]

_EVENT_RE = re.compile(r"^e(?P<seq>\d{8})-(?P<kind>[a-z]+)\.json$")
_EVENT_KINDS = ("propose", "ingest", "checkpoint")


class SessionWAL:
    """The on-disk journal of one evaluation session.

    Parameters
    ----------
    directory:
        The session directory; created (with its ``events/`` child) if
        absent.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory):
        self.directory = Path(directory)
        self.event_dir = self.directory / "events"
        self.event_dir.mkdir(parents=True, exist_ok=True)
        self._next_seq = self._scan_next_seq()

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def read_manifest(self) -> dict | None:
        """The session's identity payload, or None before creation."""
        if not self.manifest_path.is_file():
            return None
        return json.loads(self.manifest_path.read_text())

    def write_manifest(self, payload: dict) -> None:
        """Record the session identity; refuses to overwrite a different one.

        The manifest is immutable for the lifetime of the session — a
        second write must carry the identical payload (idempotent
        re-create), anything else raises.
        """
        existing = self.read_manifest()
        if existing is not None:
            if existing != payload:
                raise ValueError(
                    f"session directory {self.directory} already holds a "
                    "different session; choose a fresh directory"
                )
            return
        atomic_write_text(self.manifest_path, json.dumps(payload, sort_keys=True))

    def _scan_next_seq(self) -> int:
        last = 0
        for path in self.event_dir.iterdir():
            match = _EVENT_RE.match(path.name)
            if match:
                last = max(last, int(match.group("seq")))
        return last + 1

    def append(self, kind: str, payload: dict) -> int:
        """Durably append one event; returns its sequence number."""
        if kind not in _EVENT_KINDS:
            raise ValueError(f"unknown WAL event kind {kind!r}")
        seq = self._next_seq
        record = {"seq": seq, "kind": kind, **payload}
        path = self.event_dir / f"e{seq:08d}-{kind}.json"
        atomic_write_text(path, json.dumps(record))
        self._next_seq = seq + 1
        return seq

    def events(self) -> list[dict]:
        """All events on disk, in sequence order.

        Atomic writes guarantee no torn files; a gap in the sequence
        (possible only through manual deletion) truncates the log at
        the gap, because events after it no longer have a consistent
        prefix to replay onto.
        """
        found = {}
        for path in sorted(self.event_dir.iterdir()):
            match = _EVENT_RE.match(path.name)
            if not match:
                continue
            record = json.loads(path.read_text())
            if record.get("kind") != match.group("kind") or int(
                record.get("seq", -1)
            ) != int(match.group("seq")):
                raise ValueError(f"WAL event {path.name} disagrees with its name")
            found[int(match.group("seq"))] = record
        out = []
        seq = 1
        while seq in found:
            out.append(found[seq])
            seq += 1
        return out
