"""Service-layer exceptions with HTTP status mappings.

The session, manager and HTTP layers share one exception vocabulary so
the front-end can translate failures mechanically: every
:class:`ServiceError` carries the status code its HTTP rendering should
use, and plain ``ValueError`` / ``KeyError`` from the layers below map
to 400 / 404 at the handler.
"""

from __future__ import annotations

from repro.utils.io import CorruptStateError

__all__ = [
    "ServiceError",
    "SessionNotFoundError",
    "SessionConflictError",
    "CapacityError",
    "OverloadError",
    "StorageFullError",
    "DeadlineExceededError",
    "CorruptStateError",
]


class ServiceError(Exception):
    """Base class for service failures; ``status`` is the HTTP code."""

    status = 500


class SessionNotFoundError(ServiceError, KeyError):
    """No live or on-disk session under the requested id."""

    status = 404

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else "session not found"


class SessionConflictError(ServiceError):
    """The request is valid but not in this session state.

    Raised for protocol violations: proposing while a batch is already
    outstanding, ingesting with a stale or unknown ticket, or ingesting
    when nothing was proposed.
    """

    status = 409


class CapacityError(ServiceError):
    """The manager is full and nothing can be evicted."""

    status = 503


class OverloadError(ServiceError):
    """The service is temporarily unable to take the request.

    Backpressure, not failure: a shard's bounded queue is full, a shard
    worker is restarting after a crash, or the server is draining for
    shutdown.  The HTTP rendering is 503 with a ``Retry-After`` header
    carrying :attr:`retry_after` (seconds) — clients should back off
    and retry; the request was **not** executed and no event was
    journalled.
    """

    status = 503

    def __init__(self, message: str, *, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = float(retry_after)


class StorageFullError(OverloadError):
    """The journal volume is out of space; the service is read-only.

    Raised when a WAL write fails with ``ENOSPC``/``EDQUOT``.  Because
    events are journalled *before* they mutate in-memory state (and a
    shard worker that cannot flush discards the affected sessions and
    reloads them from their journals), no state is corrupted: the
    mutation simply did not happen.  Reads keep working; mutations are
    refused with 503 until space returns — degradation, not damage.
    """

    def __init__(self, message: str, *, retry_after: float = 5.0):
        super().__init__(message, retry_after=retry_after)


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before the backend answered.

    The HTTP rendering is **504**: the request may or may not have
    executed (the answer is simply late), which is exactly what
    distinguishes it from the not-executed 503 backpressure family.
    Clients recover the truth through the idempotency key or ticket on
    retry — a keyed retry of a request that did land replays the
    original response instead of double-applying.
    """

    status = 504
