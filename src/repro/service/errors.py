"""Service-layer exceptions with HTTP status mappings.

The session, manager and HTTP layers share one exception vocabulary so
the front-end can translate failures mechanically: every
:class:`ServiceError` carries the status code its HTTP rendering should
use, and plain ``ValueError`` / ``KeyError`` from the layers below map
to 400 / 404 at the handler.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "SessionNotFoundError",
    "SessionConflictError",
    "CapacityError",
    "OverloadError",
]


class ServiceError(Exception):
    """Base class for service failures; ``status`` is the HTTP code."""

    status = 500


class SessionNotFoundError(ServiceError, KeyError):
    """No live or on-disk session under the requested id."""

    status = 404

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else "session not found"


class SessionConflictError(ServiceError):
    """The request is valid but not in this session state.

    Raised for protocol violations: proposing while a batch is already
    outstanding, ingesting with a stale or unknown ticket, or ingesting
    when nothing was proposed.
    """

    status = 409


class CapacityError(ServiceError):
    """The manager is full and nothing can be evicted."""

    status = 503


class OverloadError(ServiceError):
    """The service is temporarily unable to take the request.

    Backpressure, not failure: a shard's bounded queue is full, a shard
    worker is restarting after a crash, or the server is draining for
    shutdown.  The HTTP rendering is 503 with a ``Retry-After`` header
    carrying :attr:`retry_after` (seconds) — clients should back off
    and retry; the request was **not** executed and no event was
    journalled.
    """

    status = 503

    def __init__(self, message: str, *, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = float(retry_after)
