"""Evaluation-as-a-service: sessions, checkpoints and an HTTP front-end.

The library's samplers were written for a synchronous loop — the
sampler calls the oracle and blocks until the label returns.  Real
evaluations (the paper's motivating setting) are driven by *human*
labellers answering asynchronously, so this package inverts the control
flow: a client **proposes** a batch of pairs to label, ships them to
whatever labelling workforce it has, and **ingests** the answers
whenever they arrive.  Adaptive importance sampling keeps its
asymptotic guarantees when the proposal is updated from accumulated
past samples (Delyon & Portier), so freezing, snapshotting and resuming
the sampler between label arrivals changes nothing about the estimator
— the propose/ingest trajectory is bit-identical to the oracle-driven
``sample()`` loop at the same seed.

Layers, bottom up:

* :mod:`repro.service.codec` — JSON-safe *and* compact binary encoding
  of sampler state (arrays, RNG bit-generator state, non-finite
  floats); the two are interchangeable on the wire and on disk.
* :mod:`repro.service.wal` — append-only write-ahead log.
  :class:`SessionWAL` journals one atomically-written shard per event;
  :class:`GroupCommitWAL` buffers events and commits a whole batch
  with a single fsync (plus a directory fsync), amortising durability
  across concurrent clients.
* :mod:`repro.service.session` — :class:`EvaluationSession`, the
  batched propose → ingest protocol with journalling and
  kill-anywhere restore.
* :mod:`repro.service.manager` — :class:`SessionManager`, thread-safe
  session registry with per-session locks, capacity limits and
  idle-session eviction to disk.
* :mod:`repro.service.rpc` / :mod:`repro.service.shard` /
  :mod:`repro.service.router` — the sharded multi-process tier:
  session-owning worker processes with group-commit loops and bounded
  queues, consistent-hash routing, supervised restarts and
  backpressure (503 + ``Retry-After``).
* :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` JSON
  front-end (``python -m repro.experiments serve``) over either an
  in-process manager or the shard router.
* :mod:`repro.service.client` — :class:`EvaluationClient`, the
  retrying, idempotency-keyed client library matching that failure
  envelope.
* :mod:`repro.service.faults` — fault instrumentation (SIGKILL at
  named durability stages, injected ENOSPC, dropped acks, corruption
  injectors) backing the fault and chaos tests.

Integrity: every WAL shard is a CRC32C-checksummed frame and every
manifest carries a digest sidecar, so restore distinguishes a torn
tail (recoverable — only unacknowledged events drop) from real
corruption (:class:`~repro.utils.CorruptStateError`, naming file and
offset).
"""

from repro.service.client import EvaluationClient, ServiceRequestError
from repro.service.codec import (
    decode_state,
    dump_state,
    dump_state_binary,
    encode_state,
    load_state,
    load_state_binary,
)
from repro.service.errors import (
    CapacityError,
    CorruptStateError,
    DeadlineExceededError,
    OverloadError,
    ServiceError,
    SessionConflictError,
    SessionNotFoundError,
    StorageFullError,
)
from repro.service.manager import SessionManager
from repro.service.session import EvaluationSession
from repro.service.wal import GroupCommitWAL, SessionWAL

__all__ = [
    "encode_state",
    "decode_state",
    "dump_state",
    "load_state",
    "dump_state_binary",
    "load_state_binary",
    "ServiceError",
    "SessionConflictError",
    "SessionNotFoundError",
    "CapacityError",
    "OverloadError",
    "StorageFullError",
    "DeadlineExceededError",
    "CorruptStateError",
    "SessionWAL",
    "GroupCommitWAL",
    "EvaluationSession",
    "SessionManager",
    "EvaluationClient",
    "ServiceRequestError",
]
