"""A retrying, deadline-aware client for the evaluation service.

:class:`EvaluationClient` is the supported way for label-collection
code to talk to a served session.  It wraps the JSON-over-HTTP
protocol (:mod:`repro.service.http`) with the retry discipline the
service's failure envelope calls for, so callers see a plain method
call where the wire sees crashes, backpressure and lost packets:

* **Backpressure (503)** — sleep for the server's ``Retry-After``
  suggestion (bounded by the client's own backoff cap) and resend.
  A 503 means the request was *not* executed; resending is always
  safe.
* **Deadline exhaustion (504)** and **dropped connections** — the
  request *may* have executed.  Blind resends would double-apply, so
  every mutating call carries an **idempotency key** (auto-generated
  unless the caller supplies one); the server replays the original
  response for a key it has seen, making the retry exact-once.
* **Worker restarts** — connections re-establish lazily; a refused or
  reset connection is just another retryable event inside the
  deadline.

Retries back off exponentially with decorrelated jitter from a
dedicated ``random.Random`` (seedable for deterministic tests) and are
bounded both by ``max_retries`` and by the per-request ``deadline``
(seconds), which also travels to the server as the
``X-Request-Timeout`` header so the router gives up in step with the
client instead of holding the request for its own configured timeout.

The client is thread-safe: each thread keeps its own HTTP connection
(the protocol is strictly request/response per connection), and the
shared retry RNG is lock-protected.

Quickstart::

    from repro.service.client import EvaluationClient

    with EvaluationClient("http://127.0.0.1:8765") as client:
        session = client.create_session(predictions, scores,
                                        sampler="oasis", seed=42)
        sid = session["session_id"]
        while client.status(sid)["labels_consumed"] < budget:
            proposal = client.propose(sid, batch_size=10)
            labels = label_pairs(proposal["pending"])   # your labeller
            client.ingest(sid, proposal["ticket"], labels)
        print(client.estimate(sid))
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import uuid
from urllib.parse import urlsplit

from repro.service.errors import (
    DeadlineExceededError,
    OverloadError,
    ServiceError,
)

__all__ = ["EvaluationClient", "ServiceRequestError"]

#: Statuses that mean "not executed; resend freely".
_RETRY_STATUSES = frozenset({503})
#: Statuses that mean "may have executed; resend only under a key".
_MAYBE_STATUSES = frozenset({504})


class ServiceRequestError(ServiceError):
    """A non-retryable (or retries-exhausted) service response.

    Carries the HTTP ``status`` and the decoded error ``payload`` so
    callers can branch on 404 vs 409 vs 500 without string matching.
    """

    def __init__(self, status: int, payload: dict,
                 request_id: str | None = None, retries: int = 0):
        message = payload.get("error") if isinstance(payload, dict) else None
        message = message or f"service returned HTTP {status}"
        if request_id is not None:
            message = (f"{message} [request-id {request_id}, "
                       f"{int(retries)} retries]")
        super().__init__(message)
        self.status = int(status)
        self.payload = payload
        self.request_id = request_id
        self.retries = int(retries)


class EvaluationClient:
    """Synchronous, thread-safe client for a served evaluation tier.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the service (path prefixes are not
        supported; the service owns its whole route table).
    timeout:
        Default per-request deadline in seconds: the budget for the
        *whole* call including every retry, also sent to the server as
        ``X-Request-Timeout`` (scaled to the time remaining) so the
        two sides give up together.  Override per call via
        ``deadline=``.
    max_retries:
        Upper bound on resends per call (connection failures and
        retryable statuses combined).
    backoff / backoff_cap:
        Initial and maximum sleep between retries, seconds.  Sleeps
        grow exponentially with decorrelated jitter; a server
        ``Retry-After`` suggestion overrides the schedule (still
        capped).
    seed:
        Seed for the jitter RNG — deterministic retry schedules for
        tests; ``None`` seeds from the system.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 max_retries: int = 8, backoff: float = 0.05,
                 backoff_cap: float = 2.0, seed: int | None = None):
        parts = urlsplit(base_url if "//" in base_url
                         else f"//{base_url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(
                f"only http:// service URLs are supported; got {base_url!r}")
        if parts.path not in ("", "/") or parts.query or parts.fragment:
            raise ValueError(
                f"service URL must be bare http://host:port; got {base_url!r}")
        if parts.hostname is None:
            raise ValueError(f"service URL has no host: {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        if timeout <= 0:
            raise ValueError(f"timeout must be positive; got {timeout}")
        self.timeout = float(timeout)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._local = threading.local()
        self._closed = False

    # -- connection management ---------------------------------------------

    def _connection(self, deadline: float) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            budget = max(deadline - time.monotonic(), 0.001)
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=budget)
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close this thread's connection; others close on GC/exit."""
        self._closed = True
        self._drop_connection()

    def __enter__(self) -> "EvaluationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- retry engine -------------------------------------------------------

    def _sleep_for(self, attempt: int, retry_after: float | None) -> float:
        if retry_after is not None:
            return min(max(retry_after, 0.0), self.backoff_cap)
        ceiling = min(self.backoff * (2 ** attempt), self.backoff_cap)
        with self._rng_lock:
            # Decorrelated jitter: full-range uniform below the
            # exponential ceiling, so a fleet of clients thundering
            # after one crash spreads itself out.
            return self._rng.uniform(self.backoff / 2, ceiling)

    def _request(self, method: str, path: str, body: dict | None = None,
                 *, deadline: float | None = None,
                 idempotent: bool = False) -> dict:
        """One logical call: send, classify, retry, decode.

        ``idempotent`` marks requests safe to resend after a *maybe
        executed* failure (504, connection lost mid-exchange) — either
        naturally read-only or carrying an idempotency key.
        """
        if self._closed:
            raise ValueError("client is closed")
        budget = self.timeout if deadline is None else float(deadline)
        if budget <= 0:
            raise ValueError(f"deadline must be positive; got {deadline}")
        give_up = time.monotonic() + budget
        encoded = b"" if body is None else json.dumps(body).encode("utf-8")
        # One request id per *logical* call: every resend carries the
        # same id, so the server's logs stitch the retries together and
        # every error names the trace to go look for.
        request_id = uuid.uuid4().hex[:16]
        attempt = 0
        last_error: ServiceError | None = None
        while True:
            remaining = give_up - time.monotonic()
            if remaining <= 0 or attempt > self.max_retries:
                if last_error is not None:
                    raise last_error
                error = DeadlineExceededError(
                    f"{method} {path} exhausted its {budget:g}s deadline "
                    f"[request-id {request_id}, {attempt} retries]")
                error.request_id = request_id
                error.retries = attempt
                raise error
            sent = False
            try:
                conn = self._connection(give_up)
                conn.timeout = max(remaining, 0.001)
                if conn.sock is not None:
                    conn.sock.settimeout(conn.timeout)
                headers = {"Content-Type": "application/json",
                           "X-Request-Id": request_id,
                           "X-Request-Timeout": f"{remaining:g}"}
                conn.request(method, path, body=encoded, headers=headers)
                sent = True
                response = conn.getresponse()
                status = response.status
                retry_after = response.getheader("Retry-After")
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                # Refused/reset/torn — the worker or router is coming
                # back.  If nothing was sent the request cannot have
                # executed; if it was, only idempotent calls may retry.
                self._drop_connection()
                if sent and not idempotent:
                    error = DeadlineExceededError(
                        f"{method} {path}: connection lost after send "
                        f"({exc}); outcome unknown and the request "
                        "carries no idempotency key "
                        f"[request-id {request_id}, {attempt} retries]")
                    error.request_id = request_id
                    error.retries = attempt
                    raise error from exc
                last_error = OverloadError(
                    f"{method} {path}: connection failed ({exc}) "
                    f"[request-id {request_id}, {attempt} retries]")
                last_error.request_id = request_id
                last_error.retries = attempt
                attempt += 1
                time.sleep(min(self._sleep_for(attempt, None),
                               max(give_up - time.monotonic(), 0)))
                continue
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                payload = {"error": raw.decode("utf-8", "replace")}
            if 200 <= status < 300:
                return payload
            if status in _RETRY_STATUSES or (
                    status in _MAYBE_STATUSES and idempotent):
                last_error = ServiceRequestError(
                    status, payload, request_id=request_id, retries=attempt)
                attempt += 1
                suggested = None
                if retry_after is not None:
                    try:
                        suggested = float(retry_after)
                    except ValueError:
                        suggested = None
                time.sleep(min(self._sleep_for(attempt, suggested),
                               max(give_up - time.monotonic(), 0)))
                continue
            raise ServiceRequestError(status, payload,
                                      request_id=request_id, retries=attempt)

    # -- the protocol -------------------------------------------------------

    def healthz(self, *, deadline: float | None = None) -> dict:
        return self._request("GET", "/healthz", deadline=deadline,
                             idempotent=True)

    def list_sessions(self, *, deadline: float | None = None) -> list[dict]:
        out = self._request("GET", "/sessions", deadline=deadline,
                            idempotent=True)
        return out.get("sessions", [])

    def create_session(self, predictions, scores, *,
                       session_id: str | None = None,
                       deadline: float | None = None, **kwargs) -> dict:
        """Create a session; returns its status payload.

        ``predictions``/``scores`` are the pool arrays; the remaining
        keyword arguments (``sampler``, ``sampler_kwargs``, ``measure``,
        ``alpha``, ``seed``) pass through to the create body.  The
        session id is assigned *client-side* when absent, so a retried
        create lands on the same id and hits the server's idempotent
        re-create path instead of making a twin.
        """
        if session_id is None:
            session_id = uuid.uuid4().hex[:12]
        body = {
            "predictions": self._listify(predictions),
            "scores": self._listify(scores),
            "session_id": session_id,
            **{key: value for key, value in kwargs.items()
               if value is not None},
        }
        return self._request("POST", "/sessions", body,
                             deadline=deadline, idempotent=True)

    @staticmethod
    def _listify(values):
        tolist = getattr(values, "tolist", None)
        return tolist() if callable(tolist) else list(values)

    def status(self, session_id: str, *,
               deadline: float | None = None) -> dict:
        return self._request("GET", f"/sessions/{session_id}",
                             deadline=deadline, idempotent=True)

    def estimate(self, session_id: str, *,
                 deadline: float | None = None) -> dict:
        return self._request("GET", f"/sessions/{session_id}/estimate",
                             deadline=deadline, idempotent=True)

    def history(self, session_id: str, *,
                deadline: float | None = None) -> dict:
        """Full convergence trajectory: per-update estimates, budgets,
        and current CI/weight-ESS telemetry — the feed the report
        generator consumes in ``--server`` mode."""
        return self._request("GET", f"/sessions/{session_id}/history",
                             deadline=deadline, idempotent=True)

    def propose(self, session_id: str, batch_size: int = 1, *,
                idempotency_key: str | None = None,
                deadline: float | None = None) -> dict:
        """Propose a batch; returns ``{ticket, pending, ...}``.

        An idempotency key is generated when not supplied, so retries
        after lost acks replay the original proposal instead of
        raising a conflict (or burning a second batch of randomness).
        """
        key = idempotency_key or f"propose-{uuid.uuid4().hex}"
        return self._request(
            "POST", f"/sessions/{session_id}/propose",
            {"batch_size": int(batch_size), "key": key},
            deadline=deadline, idempotent=True)

    def ingest(self, session_id: str, ticket: int, labels, *,
               idempotency_key: str | None = None,
               deadline: float | None = None) -> dict:
        """Ingest labels for a ticket; returns the post-commit status.

        Keyed like :meth:`propose`: a retry of an ingest whose ack was
        lost replays the original response — the labels are never
        double-counted.
        """
        key = idempotency_key or f"ingest-{uuid.uuid4().hex}"
        if isinstance(labels, dict):
            labels = {str(index): int(label)
                      for index, label in labels.items()}
        else:
            labels = [int(label) for label in self._listify(labels)]
        return self._request(
            "POST", f"/sessions/{session_id}/ingest",
            {"ticket": int(ticket), "labels": labels, "key": key},
            deadline=deadline, idempotent=True)

    def checkpoint(self, session_id: str, *,
                   deadline: float | None = None) -> dict:
        # Checkpoints are naturally idempotent: a duplicate snapshot is
        # a no-op for correctness (restore picks the latest).
        return self._request("POST", f"/sessions/{session_id}/checkpoint",
                             deadline=deadline, idempotent=True)

    def close_session(self, session_id: str, *,
                      deadline: float | None = None) -> dict:
        return self._request("DELETE", f"/sessions/{session_id}",
                             deadline=deadline, idempotent=True)
