"""JSON-safe encoding of sampler state.

``state_dict()`` snapshots are nested structures of plain Python
scalars, NumPy arrays and RNG bit-generator state.  Standard JSON can
carry none of the awkward parts — arrays, exact dtypes, ``NaN`` /
``inf``, 128-bit PCG64 state integers — so this codec wraps them in
tagged objects:

* ``{"__ndarray__": {"dtype", "shape", "data"}}`` — arrays, with the
  raw little-endian bytes base64-encoded.  Byte-level encoding (rather
  than digit strings) is what makes restore *bit-identical*: every
  float, including negative zero and every NaN payload, round-trips
  exactly.
* ``{"__float__": "nan" | "inf" | "-inf"}`` — non-finite scalars, so
  the emitted JSON stays standards-compliant (``json.dumps`` is run
  with ``allow_nan=False``).
* ``{"__bigint__": "<decimal>"}`` — integers beyond the IEEE-754 safe
  range (RNG state words), protected from readers that would silently
  round them through a double.

Everything else (bool, int, str, None, dict with string keys,
list/tuple) passes through structurally.
"""

from __future__ import annotations

import base64
import json

import numpy as np

__all__ = ["encode_state", "decode_state", "dump_state", "load_state"]

# Integers outside this range are not exactly representable as IEEE-754
# doubles; JSON readers in other languages would corrupt them.
_SAFE_INT = 2**53


def _encode_array(array: np.ndarray) -> dict:
    array = np.ascontiguousarray(array)
    # Normalise to little-endian so snapshots are portable across hosts.
    dtype = array.dtype.newbyteorder("<")
    data = array.astype(dtype, copy=False).tobytes()
    return {
        "__ndarray__": {
            "dtype": dtype.str,
            "shape": list(array.shape),
            "data": base64.b64encode(data).decode("ascii"),
        }
    }


def _decode_array(payload: dict) -> np.ndarray:
    dtype = np.dtype(payload["dtype"])
    data = base64.b64decode(payload["data"])
    array = np.frombuffer(data, dtype=dtype).reshape(payload["shape"])
    # Native byte order, writable copy — indistinguishable from the
    # array that was encoded.
    return np.array(array.astype(dtype.newbyteorder("="), copy=False), copy=True)


def encode_state(obj):
    """Recursively convert ``obj`` into JSON-serialisable structure."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        value = int(obj)
        if -_SAFE_INT < value < _SAFE_INT:
            return value
        return {"__bigint__": str(value)}
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if np.isnan(value):
            return {"__float__": "nan"}
        if np.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(obj, np.ndarray):
        return _encode_array(obj)
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"state dict keys must be strings; got {key!r} "
                    f"({type(key).__name__})"
                )
            if key.startswith("__") and key.endswith("__"):
                raise TypeError(
                    f"state dict key {key!r} collides with codec tags"
                )
            out[key] = encode_state(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [encode_state(item) for item in obj]
    raise TypeError(f"cannot encode {type(obj).__name__} into sampler state")


def decode_state(obj):
    """Inverse of :func:`encode_state` (tuples come back as lists)."""
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return _decode_array(obj["__ndarray__"])
        if "__float__" in obj:
            return float(obj["__float__"])
        if "__bigint__" in obj:
            return int(obj["__bigint__"])
        return {key: decode_state(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_state(item) for item in obj]
    return obj


def dump_state(obj, **json_kwargs) -> str:
    """Encode and serialise to a standards-compliant JSON string."""
    return json.dumps(encode_state(obj), allow_nan=False, **json_kwargs)


def load_state(text: str):
    """Parse a :func:`dump_state` string back into live state."""
    return decode_state(json.loads(text))
