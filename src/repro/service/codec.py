"""JSON-safe and compact binary encodings of sampler state.

``state_dict()`` snapshots are nested structures of plain Python
scalars, NumPy arrays and RNG bit-generator state.  Standard JSON can
carry none of the awkward parts — arrays, exact dtypes, ``NaN`` /
``inf``, 128-bit PCG64 state integers — so this codec wraps them in
tagged objects:

* ``{"__ndarray__": {"dtype", "shape", "data"}}`` — arrays, with the
  raw little-endian bytes base64-encoded.  Byte-level encoding (rather
  than digit strings) is what makes restore *bit-identical*: every
  float, including negative zero and every NaN payload, round-trips
  exactly.
* ``{"__float__": "nan" | "inf" | "-inf"}`` — non-finite scalars, so
  the emitted JSON stays standards-compliant (``json.dumps`` is run
  with ``allow_nan=False``).
* ``{"__bigint__": "<decimal>"}`` — integers beyond the IEEE-754 safe
  range (RNG state words), protected from readers that would silently
  round them through a double.

Everything else (bool, int, str, None, dict with string keys,
list/tuple) passes through structurally.

A second, compact **binary** serialisation of the same JSON-safe trees
(:func:`dump_state_binary` / :func:`load_state_binary`) exists for the
write-ahead log's hot path: length-prefixed type-tagged records, no
textual re-encoding of numbers, and array payloads stored as raw bytes
instead of base64 (the ``__ndarray__`` tag is recognised and unpacked
transparently, then re-wrapped identically on load).  The two
serialisations are interchangeable by construction::

    load_state_binary(dump_state_binary(tree)) == load_state(dump_state(tree))

for every tree the JSON codec accepts — the WAL can mix ``.json`` and
``.bin`` shards in one journal and replay them identically.
"""

from __future__ import annotations

import base64
import json
import struct

import numpy as np

__all__ = [
    "encode_state",
    "decode_state",
    "dump_state",
    "load_state",
    "dump_state_binary",
    "load_state_binary",
]

# Integers outside this range are not exactly representable as IEEE-754
# doubles; JSON readers in other languages would corrupt them.
_SAFE_INT = 2**53


def _encode_array(array: np.ndarray) -> dict:
    array = np.ascontiguousarray(array)
    # Normalise to little-endian so snapshots are portable across hosts.
    dtype = array.dtype.newbyteorder("<")
    data = array.astype(dtype, copy=False).tobytes()
    return {
        "__ndarray__": {
            "dtype": dtype.str,
            "shape": list(array.shape),
            "data": base64.b64encode(data).decode("ascii"),
        }
    }


def _decode_array(payload: dict) -> np.ndarray:
    dtype = np.dtype(payload["dtype"])
    data = base64.b64decode(payload["data"])
    array = np.frombuffer(data, dtype=dtype).reshape(payload["shape"])
    # Native byte order, writable copy — indistinguishable from the
    # array that was encoded.
    return np.array(array.astype(dtype.newbyteorder("="), copy=False), copy=True)


def encode_state(obj):
    """Recursively convert ``obj`` into JSON-serialisable structure."""
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        value = int(obj)
        if -_SAFE_INT < value < _SAFE_INT:
            return value
        return {"__bigint__": str(value)}
    if isinstance(obj, (float, np.floating)):
        value = float(obj)
        if np.isnan(value):
            return {"__float__": "nan"}
        if np.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(obj, np.ndarray):
        return _encode_array(obj)
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"state dict keys must be strings; got {key!r} "
                    f"({type(key).__name__})"
                )
            if key.startswith("__") and key.endswith("__"):
                raise TypeError(
                    f"state dict key {key!r} collides with codec tags"
                )
            out[key] = encode_state(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [encode_state(item) for item in obj]
    raise TypeError(f"cannot encode {type(obj).__name__} into sampler state")


def decode_state(obj):
    """Inverse of :func:`encode_state` (tuples come back as lists)."""
    if isinstance(obj, dict):
        if "__ndarray__" in obj:
            return _decode_array(obj["__ndarray__"])
        if "__float__" in obj:
            return float(obj["__float__"])
        if "__bigint__" in obj:
            return int(obj["__bigint__"])
        return {key: decode_state(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_state(item) for item in obj]
    return obj


def dump_state(obj, **json_kwargs) -> str:
    """Encode and serialise to a standards-compliant JSON string."""
    return json.dumps(encode_state(obj), allow_nan=False, **json_kwargs)


def load_state(text: str):
    """Parse a :func:`dump_state` string back into live state."""
    return decode_state(json.loads(text))


# -- compact binary serialisation -----------------------------------------
#
# Wire format: a 4-byte magic, then one recursively tagged value.  Every
# tag is a single byte; every length is an unsigned big-endian 32-bit
# integer; array shapes use 64-bit dimensions.  Numbers are stored as
# raw IEEE-754 / two's-complement bytes, so every NaN payload, negative
# zero and 128-bit RNG state word round-trips exactly — the same
# bit-identity contract as the JSON codec, at a fraction of the bytes
# (array data is raw, not base64) and none of the text formatting cost.

_BINARY_MAGIC = b"RSB1"
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


def _pack(obj, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif isinstance(obj, bool):
        out += b"T" if obj else b"F"
    elif isinstance(obj, (int, np.integer)):
        value = int(obj)
        if _I64_MIN <= value <= _I64_MAX:
            out += b"i"
            out += struct.pack(">q", value)
        else:
            text = str(value).encode("ascii")
            out += b"I"
            out += struct.pack(">I", len(text))
            out += text
    elif isinstance(obj, (float, np.floating)):
        out += b"d"
        out += struct.pack(">d", float(obj))
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out += b"s"
        out += struct.pack(">I", len(data))
        out += data
    elif isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        dtype = array.dtype.newbyteorder("<")
        data = array.astype(dtype, copy=False).tobytes()
        dtype_str = dtype.str.encode("ascii")
        out += b"a"
        out += struct.pack(">I", len(dtype_str))
        out += dtype_str
        out += struct.pack(">I", array.ndim)
        out += struct.pack(f">{array.ndim}Q", *array.shape)
        out += struct.pack(">Q", len(data))
        out += data
    elif isinstance(obj, dict):
        if "__ndarray__" in obj:
            # A tree that already went through encode_state(): unwrap
            # the tagged array to raw bytes so both entry points emit
            # the identical compact block.  Anything else under the tag
            # key is a user dict colliding with it, same as encode_state.
            payload = obj.get("__ndarray__")
            if len(obj) != 1 or not (
                isinstance(payload, dict)
                and {"dtype", "shape", "data"} <= payload.keys()
            ):
                raise TypeError(
                    "state dict key '__ndarray__' collides with codec tags"
                )
            _pack(_decode_array(payload), out)
            return
        if "__float__" in obj:
            if len(obj) != 1 or obj["__float__"] not in ("nan", "inf", "-inf"):
                raise TypeError(
                    "state dict key '__float__' collides with codec tags"
                )
            _pack(float(obj["__float__"]), out)
            return
        if "__bigint__" in obj:
            if len(obj) != 1 or not isinstance(obj["__bigint__"], str):
                raise TypeError(
                    "state dict key '__bigint__' collides with codec tags"
                )
            _pack(int(obj["__bigint__"]), out)
            return
        out += b"m"
        out += struct.pack(">I", len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"state dict keys must be strings; got {key!r} "
                    f"({type(key).__name__})"
                )
            if key.startswith("__") and key.endswith("__"):
                raise TypeError(
                    f"state dict key {key!r} collides with codec tags"
                )
            data = key.encode("utf-8")
            out += struct.pack(">I", len(data))
            out += data
            _pack(value, out)
    elif isinstance(obj, (list, tuple)):
        out += b"l"
        out += struct.pack(">I", len(obj))
        for item in obj:
            _pack(item, out)
    else:
        raise TypeError(
            f"cannot encode {type(obj).__name__} into sampler state"
        )


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ValueError("truncated binary state record")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]


def _unpack(reader: _Reader):
    tag = reader.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return struct.unpack(">q", reader.take(8))[0]
    if tag == b"I":
        return int(reader.take(reader.u32()).decode("ascii"))
    if tag == b"d":
        return struct.unpack(">d", reader.take(8))[0]
    if tag == b"s":
        return reader.take(reader.u32()).decode("utf-8")
    if tag == b"a":
        dtype = np.dtype(reader.take(reader.u32()).decode("ascii"))
        ndim = reader.u32()
        shape = struct.unpack(f">{ndim}Q", reader.take(8 * ndim))
        data = reader.take(struct.unpack(">Q", reader.take(8))[0])
        array = np.frombuffer(data, dtype=dtype).reshape(shape)
        return np.array(
            array.astype(dtype.newbyteorder("="), copy=False), copy=True
        )
    if tag == b"m":
        out = {}
        for _ in range(reader.u32()):
            key = reader.take(reader.u32()).decode("utf-8")
            out[key] = _unpack(reader)
        return out
    if tag == b"l":
        return [_unpack(reader) for _ in range(reader.u32())]
    raise ValueError(f"unknown binary state tag {tag!r}")


def dump_state_binary(obj) -> bytes:
    """Serialise live state (or an already-encoded tree) to bytes.

    Accepts exactly what :func:`encode_state` accepts, plus trees that
    already carry the codec's tagged objects — both serialise to the
    identical compact form, so WAL writers can hand over either raw
    payloads or pre-encoded events.
    """
    out = bytearray(_BINARY_MAGIC)
    _pack(obj, out)
    return bytes(out)


def load_state_binary(data: bytes):
    """Parse :func:`dump_state_binary` bytes back into live state.

    Returns *decoded* state (arrays as ``ndarray``, big integers as
    ``int``), exactly as :func:`load_state` does for the JSON form:
    ``load_state_binary(dump_state_binary(x)) == load_state(dump_state(x))``
    for every ``x`` either codec accepts.
    """
    if data[:4] != _BINARY_MAGIC:
        raise ValueError(
            "not a binary state record (bad magic; expected RSB1)"
        )
    reader = _Reader(data)
    reader.pos = 4
    value = _unpack(reader)
    if reader.pos != len(data):
        raise ValueError(
            f"trailing garbage after binary state record "
            f"({len(data) - reader.pos} bytes)"
        )
    return value
