"""Length-prefixed frame protocol between the router and shard workers.

One frame carries one request or one response.  The wire layout is
deliberately trivial — two big-endian ``u32`` lengths, a small JSON
header, and an opaque body::

    +----------------+--------------+-------------------+-----------+
    | header_len u32 | body_len u32 | header (JSON)     | body      |
    +----------------+--------------+-------------------+-----------+

Request headers: ``{"id": n, "op": "propose", "sid": "abc"}``.
Response headers: ``{"id": n, "status": 200}`` plus optionally
``"retry_after"`` on backpressure responses.  The body is raw bytes —
in practice the client's JSON payload forwarded verbatim, which is the
point: the router never re-encodes request or response bodies, it only
routes them (the shard worker is the single place bodies are parsed).

Keeping the header JSON (rather than the binary codec) costs a few
bytes and keeps frames greppable in a packet capture; bodies dominate
the traffic either way.

Frames are written with a single ``sendall`` so a writer killed
mid-frame leaves at most one torn frame; readers treat a short read as
a dead peer (:class:`ConnectionError`), which the router maps to
backpressure while the supervisor restarts the worker.
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = ["send_frame", "recv_frame", "MAX_FRAME_BYTES"]

_HEADER = struct.Struct(">II")

# A frame can carry a whole create body (pool arrays) or a checkpoint
# response; cap it at the same bound as the HTTP front-end's bodies.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def send_frame(sock: socket.socket, header: dict, body: bytes = b"") -> None:
    """Serialise and send one frame (caller holds any write lock)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(header_bytes), len(body))
                 + header_bytes + body)


def _read_exact(rfile, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(rfile) -> tuple[dict, bytes]:
    """Read one frame from a buffered binary reader.

    Raises ``ConnectionError`` at any EOF — clean (between frames) or
    torn (mid-frame); the distinction does not matter to either side,
    both mean the peer is gone.
    """
    header_len, body_len = _HEADER.unpack(_read_exact(rfile, _HEADER.size))
    if header_len + body_len > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {header_len + body_len} bytes exceeds "
            f"{MAX_FRAME_BYTES}"
        )
    header = json.loads(_read_exact(rfile, header_len))
    body = _read_exact(rfile, body_len) if body_len else b""
    return header, body
