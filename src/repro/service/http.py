"""JSON-over-HTTP front-end for the session service.

A deliberately dependency-free serving layer: stdlib
``ThreadingHTTPServer`` (one thread per connection) over a
:class:`~repro.service.manager.SessionManager`.  Sessions serialise on
their own locks, so concurrent clients on different sessions run in
parallel while two clients racing one session are safe.

Routes (all bodies and responses are JSON):

========  ==============================  =======================================
Method    Path                            Action
========  ==============================  =======================================
GET       ``/healthz``                    liveness + session counts
GET       ``/sessions``                   list sessions (resident and on-disk)
POST      ``/sessions``                   create a session
GET       ``/sessions/{id}``              session status
POST      ``/sessions/{id}/propose``      propose a batch → pairs to label
POST      ``/sessions/{id}/ingest``       ingest labels for a ticket
GET       ``/sessions/{id}/estimate``     current estimate + intervals
POST      ``/sessions/{id}/checkpoint``   journal a full snapshot
DELETE    ``/sessions/{id}``              close (checkpoint + drop from memory)
========  ==============================  =======================================

The create body::

    {"predictions": [...], "scores": [...], "sampler": "oasis",
     "sampler_kwargs": {"n_strata": 30}, "measure": "recall",
     "seed": 42, "session_id": "optional-name"}

``measure`` (optional) targets any ratio measure — a kind name or a
spec dict such as ``{"kind": "fmeasure", "alpha": 0.25}``.  Omitting it
keeps the historical alpha-parametrised F-measure target (``"alpha"``,
default 0.5); sending both ``measure`` and ``alpha`` is rejected with
400, exactly as the library entry points reject the combination.

Errors map mechanically: ``ValueError`` → 400,
:class:`~repro.service.errors.SessionNotFoundError` → 404,
:class:`~repro.service.errors.SessionConflictError` → 409,
:class:`~repro.service.errors.CapacityError` → 503.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.service.errors import ServiceError
from repro.service.manager import SessionManager

__all__ = ["ServiceServer", "make_server", "serve"]

_SESSION_ROUTE = re.compile(
    r"^/sessions/(?P<sid>[A-Za-z0-9._-]+)"
    r"(?:/(?P<action>propose|ingest|estimate|checkpoint))?$"
)

_MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`SessionManager`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, manager: SessionManager):
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the operator's job, not stderr spam

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        if length > _MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        try:
            payload = self._route(method)
        except ServiceError as exc:
            self._reply(exc.status, {"error": str(exc)})
        except (ValueError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
        except KeyError as exc:
            self._reply(404, {"error": f"not found: {exc}"})
        except Exception as exc:  # pragma: no cover - last-resort guard
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._reply(200, payload)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")

    # -- routing -----------------------------------------------------------

    def _route(self, method: str) -> dict:
        manager = self.server.manager
        if self.path == "/healthz" and method == "GET":
            return {
                "status": "ok",
                "resident_sessions": manager.resident_count,
                "capacity": manager.capacity,
            }
        if self.path == "/sessions":
            if method == "GET":
                return {"sessions": manager.list_sessions()}
            if method == "POST":
                return self._create_session(manager)
            raise ValueError(f"unsupported method {method} for {self.path}")
        match = _SESSION_ROUTE.match(self.path)
        if not match:
            raise KeyError(self.path)
        session_id, action = match.group("sid"), match.group("action")
        if action is None:
            if method == "GET":
                return manager.get(session_id).status()
            if method == "DELETE":
                manager.close_session(session_id)
                return {"session_id": session_id, "closed": True}
            raise ValueError(f"unsupported method {method} for {self.path}")
        if action == "estimate" and method == "GET":
            return self._estimate(manager.get(session_id))
        if method != "POST":
            raise ValueError(f"unsupported method {method} for {self.path}")
        body = self._read_json()
        session = manager.get(session_id)
        if action == "propose":
            return session.propose(body.get("batch_size", 1))
        if action == "ingest":
            if "ticket" not in body or "labels" not in body:
                raise ValueError("ingest body needs 'ticket' and 'labels'")
            return session.ingest(body["ticket"], body["labels"])
        if action == "checkpoint":
            return {"session_id": session_id, "seq": session.checkpoint()}
        raise KeyError(self.path)  # pragma: no cover - regex-unreachable

    def _create_session(self, manager: SessionManager) -> dict:
        body = self._read_json()
        for field in ("predictions", "scores"):
            if field not in body:
                raise ValueError(f"create body needs {field!r}")
        session = manager.create_session(
            body["predictions"],
            body["scores"],
            sampler=body.get("sampler", "oasis"),
            sampler_kwargs=body.get("sampler_kwargs") or {},
            alpha=body.get("alpha"),
            measure=body.get("measure"),
            seed=body.get("seed", 0),
            session_id=body.get("session_id"),
        )
        return session.status()

    @staticmethod
    def _estimate(session) -> dict:
        sampler = session.sampler
        out = session.status()
        for name, attribute in (
            ("precision", "precision_estimate"),
            ("recall", "recall_estimate"),
        ):
            value = getattr(sampler, attribute, None)
            if value is not None:
                out[name] = None if value is None or np.isnan(value) else float(value)
        return out


def make_server(manager: SessionManager, host: str = "127.0.0.1",
                port: int = 0) -> ServiceServer:
    """Bind a :class:`ServiceServer`; ``port=0`` picks a free port."""
    return ServiceServer((host, port), manager)


def serve(manager: SessionManager, host: str = "127.0.0.1",
          port: int = 8765, *, idle_timeout: float | None = None) -> None:
    """Run the service until interrupted (the CLI ``serve`` entry point).

    With ``idle_timeout`` set (seconds) a background sweeper
    periodically evicts journalled sessions idle longer than the
    timeout, bounding resident memory under bursty multi-user traffic.
    """
    import threading
    import time

    server = make_server(manager, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving evaluation sessions on http://{bound_host}:{bound_port} "
          f"(root={manager.root_dir}, capacity={manager.capacity})",
          flush=True)
    stop = threading.Event()
    if idle_timeout is not None and manager.root_dir is not None:
        def sweeper():
            while not stop.wait(min(idle_timeout, 60.0)):
                for session_id in manager.evict_idle(idle_timeout):
                    print(f"evicted idle session {session_id}", flush=True)

        threading.Thread(target=sweeper, daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
