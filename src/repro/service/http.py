"""JSON-over-HTTP front-end for the session service.

A deliberately dependency-free serving layer: stdlib
``ThreadingHTTPServer`` (one thread per connection, keep-alive,
Nagle disabled) in front of a pluggable **dispatcher** — the object
that actually answers requests:

* :class:`LocalDispatcher` drives a
  :class:`~repro.service.manager.SessionManager` in-process: the
  original single-process deployment, still the default and the
  simplest thing that can serve a session.
* :class:`~repro.service.router.ShardRouter` proxies each request to
  the shard worker process owning its session — the fleet-scale
  deployment (``serve --shards N``), with group-commit journalling and
  backpressure.

Both speak the same protocol; clients cannot tell which is behind the
socket except through ``/healthz``.

Routes (all bodies and responses are JSON):

========  ==============================  =======================================
Method    Path                            Action
========  ==============================  =======================================
GET       ``/healthz``                    liveness + session counts
GET       ``/sessions``                   list sessions (resident and on-disk)
POST      ``/sessions``                   create a session
GET       ``/sessions/{id}``              session status
POST      ``/sessions/{id}/propose``      propose a batch → pairs to label
POST      ``/sessions/{id}/ingest``       ingest labels for a ticket
GET       ``/sessions/{id}/estimate``     current estimate + intervals
GET       ``/sessions/{id}/history``      estimate/CI trajectory (for reports)
POST      ``/sessions/{id}/checkpoint``   journal a full snapshot
DELETE    ``/sessions/{id}``              close (checkpoint + drop from memory)
GET       ``/metrics``                    Prometheus text exposition
========  ==============================  =======================================

Every response carries an ``X-Request-Id`` header — the value of the
request's own ``X-Request-Id`` if it sent one (letters, digits,
``._-``, at most 64 chars), otherwise a server-generated id.  The id
rides the router→shard RPC frames and appears in structured log events,
so one client-reported failure is greppable across every tier.

The create body::

    {"predictions": [...], "scores": [...], "sampler": "oasis",
     "sampler_kwargs": {"n_strata": 30}, "measure": "recall",
     "seed": 42, "session_id": "optional-name"}

``measure`` (optional) targets any ratio measure — a kind name or a
spec dict such as ``{"kind": "fmeasure", "alpha": 0.25}``.  Omitting it
keeps the historical alpha-parametrised F-measure target (``"alpha"``,
default 0.5); sending both ``measure`` and ``alpha`` is rejected with
400, exactly as the library entry points reject the combination.

Errors map mechanically: ``ValueError`` → 400,
:class:`~repro.service.errors.SessionNotFoundError` → 404,
:class:`~repro.service.errors.SessionConflictError` → 409,
:class:`~repro.service.errors.CapacityError` → 503.  A 503 from
backpressure (:class:`~repro.service.errors.OverloadError`, sharded
mode) additionally carries ``Retry-After`` with a suggested pause in
seconds; clients should back off that long and resend the identical
request.
"""

from __future__ import annotations

import json
import re
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.errors import CorruptStateError, ServiceError
from repro.service.manager import SessionManager
from repro.utils import (
    bind_request_id,
    configure_logging,
    get_logger,
    render_prometheus,
)
from repro.utils.metrics import PROMETHEUS_CONTENT_TYPE

__all__ = ["ServiceServer", "LocalDispatcher", "make_server", "serve"]

_SESSION_ROUTE = re.compile(
    r"^/sessions/(?P<sid>[A-Za-z0-9._-]+)"
    r"(?:/(?P<action>propose|ingest|estimate|checkpoint|history))?$"
)

_MAX_BODY_BYTES = 64 * 1024 * 1024

_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Content type of the ``/metrics`` exposition (the Prometheus text
#: format version every scraper accepts).
METRICS_CONTENT_TYPE = PROMETHEUS_CONTENT_TYPE


class LocalDispatcher:
    """In-process dispatcher: routes straight into a ``SessionManager``.

    Implements the dispatcher contract the HTTP layer serves —
    ``dispatch(method, path, body) -> (status, body_bytes, headers)``
    — by calling the manager on the request thread.  Sessions
    serialise on their own locks, so concurrent clients on different
    sessions run in parallel while two clients racing one session are
    safe.
    """

    def __init__(self, manager: SessionManager):
        self.manager = manager
        self._http_requests = manager.metrics.counter(
            "oasis_http_requests_total",
            "HTTP requests served, by method and response status.",
            ("method", "status"))

    def dispatch(self, method: str, path: str, body: bytes,
                 timeout: float | None = None, *,
                 request_id: str | None = None):
        # ``timeout`` is accepted for dispatcher-contract parity with
        # the ShardRouter; in-process calls cannot be abandoned
        # mid-execution, so it is advisory here.  ``request_id`` is the
        # trace id the HTTP front door minted (or accepted); it rides
        # the logging context, which the front door already bound.
        status, payload, headers = self._dispatch(method, path, body)
        self._http_requests.inc(method=method, status=str(status))
        return status, payload, headers

    def _dispatch(self, method: str, path: str, body: bytes):
        if method == "GET" and path == "/metrics":
            self.manager.observe_session_telemetry()
            text = render_prometheus(self.manager.metrics.snapshot())
            return (200, text.encode("utf-8"),
                    {"Content-Type": METRICS_CONTENT_TYPE})
        try:
            payload = self._route(method, path, body)
        except ServiceError as exc:
            headers = {}
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                headers["Retry-After"] = f"{float(retry_after):g}"
            return (exc.status, json.dumps({"error": str(exc)})
                    .encode("utf-8"), headers)
        except CorruptStateError as exc:
            return (exc.status, json.dumps({
                "error": str(exc), "path": exc.path, "offset": exc.offset,
            }).encode("utf-8"), {})
        except (ValueError, TypeError) as exc:
            return 400, json.dumps({"error": str(exc)}).encode("utf-8"), {}
        except KeyError as exc:
            return (404, json.dumps({"error": f"not found: {exc}"})
                    .encode("utf-8"), {})
        except Exception as exc:  # pragma: no cover - last-resort guard
            return (500, json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}).encode("utf-8"), {})
        return 200, json.dumps(payload).encode("utf-8"), {}

    def close(self, *, graceful: bool = True) -> None:
        """Park every journalled session durably (server shutdown)."""
        if graceful and self.manager.root_dir is not None:
            self.manager.drain_to_disk()

    # -- routing -----------------------------------------------------------

    @staticmethod
    def _parse_json(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _route(self, method: str, path: str, raw_body: bytes) -> dict:
        manager = self.manager
        if path == "/healthz" and method == "GET":
            return {
                "status": "ok",
                "resident_sessions": manager.resident_count,
                "capacity": manager.capacity,
                "wal": {"recovered": list(manager.wal_recoveries)},
            }
        if path == "/sessions":
            if method == "GET":
                return {"sessions": manager.list_sessions()}
            if method == "POST":
                return self._create_session(manager, raw_body)
            raise ValueError(f"unsupported method {method} for {path}")
        match = _SESSION_ROUTE.match(path)
        if not match:
            raise KeyError(path)
        session_id, action = match.group("sid"), match.group("action")
        if action is None:
            if method == "GET":
                return manager.get(session_id).status()
            if method == "DELETE":
                manager.close_session(session_id)
                return {"session_id": session_id, "closed": True}
            raise ValueError(f"unsupported method {method} for {path}")
        if action == "estimate" and method == "GET":
            return manager.get(session_id).estimate_payload()
        if action == "history" and method == "GET":
            return manager.get(session_id).history_payload()
        if method != "POST":
            raise ValueError(f"unsupported method {method} for {path}")
        body = self._parse_json(raw_body)
        session = manager.get(session_id)
        if action == "propose":
            return session.propose(body.get("batch_size", 1),
                                   idempotency_key=body.get("key"))
        if action == "ingest":
            if "ticket" not in body or "labels" not in body:
                raise ValueError("ingest body needs 'ticket' and 'labels'")
            return session.ingest(body["ticket"], body["labels"],
                                  idempotency_key=body.get("key"))
        if action == "checkpoint":
            return {"session_id": session_id, "seq": session.checkpoint()}
        raise KeyError(path)  # pragma: no cover - regex-unreachable

    def _create_session(self, manager: SessionManager, raw_body: bytes) -> dict:
        body = self._parse_json(raw_body)
        for field in ("predictions", "scores"):
            if field not in body:
                raise ValueError(f"create body needs {field!r}")
        session = manager.create_session(
            body["predictions"],
            body["scores"],
            sampler=body.get("sampler", "oasis"),
            sampler_kwargs=body.get("sampler_kwargs") or {},
            alpha=body.get("alpha"),
            measure=body.get("measure"),
            seed=body.get("seed", 0),
            session_id=body.get("session_id"),
        )
        return session.status()


class ServiceServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one dispatcher.

    Accepts either a :class:`SessionManager` (wrapped in a
    :class:`LocalDispatcher`, the historical constructor contract) or
    any dispatcher object directly.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, backend):
        super().__init__(address, _Handler)
        if isinstance(backend, SessionManager):
            backend = LocalDispatcher(backend)
        self.dispatcher = backend
        # Back-compat: in-process callers reach the manager directly.
        self.manager = getattr(backend, "manager", None)


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"
    # Load-bearing, not a tweak — and it must live on the *handler*:
    # ``StreamRequestHandler.setup()`` reads the flag from the handler
    # instance, so setting it on the server class is silently inert.
    # With Nagle on, a response written as header and body segments
    # stalls against the peer's delayed ACK (tens of ms per request,
    # two orders of magnitude over the actual service time).
    disable_nagle_algorithm = True

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the operator's job, not stderr spam

    def _reply(self, status: int, body: bytes, headers: dict | None = None) -> None:
        headers = dict(headers or {})
        content_type = headers.pop("Content-Type", "application/json")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id is not None and "X-Request-Id" not in headers:
            self.send_header("X-Request-Id", request_id)
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        # The trace id is minted here, at the front door: accepted from
        # the client when well-formed (so a caller can stamp its own id
        # across systems), generated otherwise, echoed on every reply
        # and bound into the logging context for the request's duration.
        client_id = self.headers.get("X-Request-Id")
        if client_id is not None and _REQUEST_ID_RE.match(client_id):
            self._request_id = client_id
        else:
            self._request_id = uuid.uuid4().hex[:16]
        token = bind_request_id(self._request_id)
        try:
            self._dispatch_traced(method)
        finally:
            token.var.reset(token)

    def _dispatch_traced(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            self._reply(400, json.dumps(
                {"error": f"request body exceeds {_MAX_BODY_BYTES} bytes"}
            ).encode("utf-8"))
            return
        body = self.rfile.read(length) if length else b""
        timeout = None
        raw_timeout = self.headers.get("X-Request-Timeout")
        if raw_timeout is not None:
            try:
                timeout = float(raw_timeout)
            except ValueError:
                self._reply(400, json.dumps(
                    {"error": f"X-Request-Timeout is not a number: "
                              f"{raw_timeout!r}"}).encode("utf-8"))
                return
            if timeout <= 0:
                self._reply(400, json.dumps(
                    {"error": "X-Request-Timeout must be positive"}
                ).encode("utf-8"))
                return
        status, payload, headers = self.server.dispatcher.dispatch(
            method, self.path, body, timeout,
            request_id=self._request_id)
        self._reply(status, payload, headers)

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self):  # noqa: N802
        self._dispatch("DELETE")


def make_server(manager, host: str = "127.0.0.1",
                port: int = 0) -> ServiceServer:
    """Bind a :class:`ServiceServer`; ``port=0`` picks a free port.

    ``manager`` may be a :class:`SessionManager` (in-process serving)
    or a dispatcher such as :class:`~repro.service.router.ShardRouter`.
    """
    return ServiceServer((host, port), manager)


def make_sharded_backend(root, shards: int, *, codec: str = "json",
                         flush_interval: float = 0.0, max_batch: int = 32,
                         max_queue: int = 128, capacity: int | None = None,
                         rpc_timeout: float | None = None,
                         log_format: str | None = None,
                         log_level: str | None = None):
    """Start a shard worker pool under ``root`` and return its router.

    Records (or verifies) the root's ``topology.json`` first — a shard
    count disagreement is a hard error, not a silent re-route.
    ``rpc_timeout`` (seconds, ``serve --rpc-timeout``) bounds how long
    the router waits for a shard's answer before returning 504; a
    client's ``X-Request-Timeout`` header overrides it per request.
    The returned :class:`~repro.service.router.ShardRouter` plugs into
    :func:`make_server`; call its ``close()`` to drain and stop the
    pool.
    """
    from repro.service.router import HashRing, ShardRouter, ShardSupervisor
    from repro.service.router import init_topology

    init_topology(root, shards, codec)
    supervisor = ShardSupervisor(root, shards, options={
        "codec": codec,
        "flush_interval": flush_interval,
        "max_batch": max_batch,
        "max_queue": max_queue,
        "capacity": capacity,
        "log_format": log_format,
        "log_level": log_level,
    }, rpc_timeout=rpc_timeout).start()
    return ShardRouter(supervisor, HashRing(shards))


def serve(manager, host: str = "127.0.0.1",
          port: int = 8765, *, idle_timeout: float | None = None,
          log_format: str | None = None,
          log_level: str | None = None) -> None:
    """Run the service until interrupted (the CLI ``serve`` entry point).

    ``manager`` is a :class:`SessionManager` for in-process serving or
    a dispatcher (e.g. from :func:`make_sharded_backend`) for the
    sharded tier.  ``SIGTERM`` and ``Ctrl-C`` both shut down
    gracefully: the dispatcher drains — every journalled session is
    checkpointed durably — before the listener closes.

    With ``idle_timeout`` set (seconds) on an in-process manager, a
    background sweeper periodically evicts journalled sessions idle
    longer than the timeout, bounding resident memory under bursty
    multi-user traffic.

    ``log_format`` (``"json"``/``"text"``) and ``log_level`` configure
    the process-wide structured logger (``serve --log-format json``);
    ``None`` leaves the current configuration untouched.
    """
    import signal
    import threading

    configure_logging(log_format, log_level)
    log = get_logger("http")
    server = make_server(manager, host, port)
    bound_host, bound_port = server.server_address[:2]
    backend = server.manager if server.manager is not None else manager
    root = getattr(backend, "root_dir", None)
    if root is None:
        root = getattr(getattr(manager, "supervisor", None), "root", None)
    # The stdout line is a startup contract — the smoke scripts and
    # benchmark harness parse the bound address out of it — so it stays
    # a plain print regardless of the structured-log settings.
    print(f"serving evaluation sessions on http://{bound_host}:{bound_port} "
          f"(root={root}, capacity={getattr(backend, 'capacity', None)})",
          flush=True)
    log.info("serving", host=str(bound_host), port=int(bound_port),
             root=None if root is None else str(root),
             capacity=getattr(backend, "capacity", None))
    stop = threading.Event()
    if (idle_timeout is not None and server.manager is not None
            and server.manager.root_dir is not None):
        def sweeper():
            while not stop.wait(min(idle_timeout, 60.0)):
                for session_id in server.manager.evict_idle(idle_timeout):
                    log.info("idle_session_evicted", session=session_id)

        threading.Thread(target=sweeper, daemon=True).start()

    def _sigterm(*_):
        # shutdown() must run off the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        stop.set()
        closer = getattr(server.dispatcher, "close", None)
        if closer is not None:
            closer(graceful=True)
        server.server_close()
        print("service drained and stopped", flush=True)
        log.info("stopped")
