"""Thread-safe registry of live evaluation sessions.

The HTTP front-end is served by a thread pool, so everything here is
built for concurrent access: a registry lock guards the session table,
and each session is driven under its own lock — two clients hammering
the same session serialise, two clients on different sessions proceed
in parallel.

Sessions are bounded resources.  ``capacity`` caps how many are
resident in memory at once; when a create or load would exceed it, the
least-recently-used idle session is **evicted to disk** (checkpointed
through its journal and dropped from the table) and transparently
restored on next access.  Memory-only managers (no root directory)
cannot evict and refuse new sessions at capacity instead.
"""

from __future__ import annotations

import re
import threading
import time

from repro.service.errors import CapacityError, SessionNotFoundError
from repro.service.session import EvaluationSession
from repro.service.wal import SessionWAL
from repro.utils import MetricsRegistry, check_count, get_logger

__all__ = ["SessionManager"]

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: How many WAL recovery records a manager retains for ``/healthz``.
#: Recoveries are rare (one per torn-tail crash); the cap only guards
#: against a pathological journal churning forever.
_MAX_RECOVERY_RECORDS = 256


class SessionManager:
    """Registry, lifecycle and capacity control for evaluation sessions.

    Parameters
    ----------
    root_dir:
        Directory under which each session keeps its journal
        (``<root>/<session_id>/``).  ``None`` runs memory-only: no
        durability, no eviction, no restart recovery.
    capacity:
        Maximum resident (in-memory) sessions; ``None`` means
        unbounded.
    wal_factory:
        Journal constructor for created and restored sessions,
        ``callable(directory) -> SessionWAL``; ``None`` uses the
        synchronous per-event :class:`~repro.service.wal.SessionWAL`
        wired into this manager's metrics registry.
        Shard workers install a group-commit builder here.
    metrics:
        The :class:`~repro.utils.metrics.MetricsRegistry` every hosted
        session and (default-factory) WAL records into; ``None``
        creates a fresh registry — pass
        :data:`~repro.utils.metrics.NULL_REGISTRY` to disable
        collection entirely.
    """

    def __init__(self, root_dir=None, *, capacity: int | None = None,
                 wal_factory=None, metrics=None):
        from pathlib import Path

        if capacity is not None:
            capacity = check_count(capacity, "capacity")
        self.root_dir = None if root_dir is None else Path(root_dir)
        if self.root_dir is not None:
            self.root_dir.mkdir(parents=True, exist_ok=True)
        self.capacity = capacity
        self.metrics = MetricsRegistry() if metrics is None else metrics
        if wal_factory is None:
            wal_factory = lambda directory: SessionWAL(  # noqa: E731
                directory, metrics=self.metrics)
        self.wal_factory = wal_factory
        self._log = get_logger("manager")
        #: WAL torn-tail recoveries observed while restoring sessions,
        #: each ``{"session", "file", "offset", "reason"}`` — surfaced
        #: through ``/healthz`` so silent data-loss events are visible.
        self.wal_recoveries: list[dict] = []
        self._sessions_created = self.metrics.counter(
            "oasis_sessions_created_total", "Sessions created.")
        self._sessions_evicted = self.metrics.counter(
            "oasis_sessions_evicted_total",
            "Sessions checkpointed to disk and dropped from memory.")
        self._sessions_restored = self.metrics.counter(
            "oasis_sessions_restored_total",
            "Sessions restored from their journal.")
        self._resident_gauge = self.metrics.gauge(
            "oasis_resident_sessions", "Sessions currently in memory.")
        self._registry_lock = threading.RLock()
        self._sessions: dict[str, EvaluationSession] = {}
        self._last_used: dict[str, float] = {}
        # One lock per session id for the disk-restore path, so slow
        # WAL replays run outside the registry lock (other sessions
        # keep serving) while two clients racing the same evicted
        # session still restore it exactly once.
        self._load_locks: dict[str, threading.Lock] = {}

    # -- lifecycle ---------------------------------------------------------

    def create_session(self, predictions, scores, **kwargs) -> EvaluationSession:
        """Create (and register) a new session; see
        :meth:`EvaluationSession.create` for the keyword arguments.

        With a root directory, the session journals under
        ``<root>/<session_id>/``.  Raises :class:`CapacityError` when
        the manager is full and nothing can be evicted.
        """
        session_id = kwargs.pop("session_id", None)
        if session_id is not None and not _ID_RE.match(session_id):
            raise ValueError(
                f"session_id {session_id!r} must be 1-64 filesystem-safe "
                "characters (letters, digits, '.', '_', '-')"
            )
        with self._registry_lock:
            if session_id is not None and self._exists(session_id):
                raise ValueError(f"session {session_id!r} already exists")
            self._make_room()
            directory = None
            if self.root_dir is not None:
                import uuid

                if session_id is None:
                    session_id = uuid.uuid4().hex[:12]
                directory = self.root_dir / session_id
            session = EvaluationSession.create(
                predictions, scores,
                directory=directory, session_id=session_id,
                wal_factory=self.wal_factory, metrics=self.metrics,
                **kwargs,
            )
            self._sessions[session.session_id] = session
            self._last_used[session.session_id] = time.monotonic()
            self._sessions_created.inc()
            self._log.info("session_created", session=session.session_id)
            return session

    def _exists(self, session_id: str) -> bool:
        if session_id in self._sessions:
            return True
        return (
            self.root_dir is not None
            and (self.root_dir / session_id / SessionManager._manifest()).is_file()
        )

    @staticmethod
    def _manifest() -> str:
        from repro.service.wal import SessionWAL

        return SessionWAL.MANIFEST

    def get(self, session_id: str) -> EvaluationSession:
        """The live session, transparently restoring an evicted one.

        Disk restores (WAL replay, sampler rebuild) run *outside* the
        registry lock so they never stall requests for other sessions;
        a per-id load lock keeps concurrent fetches of the same evicted
        session to a single restore.
        """
        with self._registry_lock:
            session = self._sessions.get(session_id)
            if session is not None:
                self._last_used[session_id] = time.monotonic()
                return session
            if self.root_dir is None or not _ID_RE.match(session_id):
                raise SessionNotFoundError(f"no session {session_id!r}")
            directory = self.root_dir / session_id
            if not (directory / self._manifest()).is_file():
                raise SessionNotFoundError(f"no session {session_id!r}")
            load_lock = self._load_locks.setdefault(session_id,
                                                    threading.Lock())
        with load_lock:
            with self._registry_lock:
                session = self._sessions.get(session_id)
                if session is not None:  # a racing fetch restored it
                    self._last_used[session_id] = time.monotonic()
                    return session
            session = EvaluationSession.restore(
                directory, wal_factory=self.wal_factory,
                metrics=self.metrics)
            self._sessions_restored.inc()
            self._log.info("session_restored", session=session_id)
            if session.wal is not None and session.wal.recovered:
                self._record_recoveries(session_id, session.wal.recovered)
            with self._registry_lock:
                self._make_room()
                self._sessions[session_id] = session
                self._last_used[session_id] = time.monotonic()
                return session

    def _record_recoveries(self, session_id: str, entries: list[dict]) -> None:
        """Note torn-tail WAL drops for the health endpoint."""
        with self._registry_lock:
            for entry in entries:
                self.wal_recoveries.append({"session": session_id, **entry})
                self._log.warning(
                    "wal_recovered", session=session_id,
                    file=entry.get("file"), offset=entry.get("offset"),
                    reason=entry.get("reason"))
            del self.wal_recoveries[:-_MAX_RECOVERY_RECORDS]

    def close_session(self, session_id: str) -> None:
        """Checkpoint (if journalled), mark closed, and drop from memory."""
        with self._registry_lock:
            session = self.get(session_id)
            session.close()
            self._sessions.pop(session_id, None)
            self._last_used.pop(session_id, None)

    # -- capacity ----------------------------------------------------------

    def _make_room(self) -> None:
        """Evict LRU idle sessions until a slot is free (registry lock held)."""
        if self.capacity is None:
            return
        while len(self._sessions) >= self.capacity:
            victim = self._pick_eviction_victim()
            if victim is None:
                raise CapacityError(
                    f"manager is at capacity ({self.capacity} resident "
                    "sessions) and no idle session can be evicted"
                )
            self.evict(victim)

    def _pick_eviction_victim(self) -> str | None:
        if self.root_dir is None:
            return None  # nowhere to evict to
        for session_id in sorted(self._last_used, key=self._last_used.get):
            session = self._sessions.get(session_id)
            # A session mid-operation holds its own lock; skip it rather
            # than block the registry on a long client call.
            if session is not None and session._lock.acquire(blocking=False):
                session._lock.release()
                return session_id
        return None

    def evict(self, session_id: str) -> None:
        """Checkpoint a session to its journal and drop it from memory.

        The session stays addressable: the next :meth:`get` restores it
        from disk at exactly the evicted state (outstanding proposal
        included).
        """
        with self._registry_lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise SessionNotFoundError(f"no resident session {session_id!r}")
            if session.wal is None:
                raise ValueError(
                    f"session {session_id!r} is memory-only and cannot be "
                    "evicted to disk"
                )
            with session._lock:
                session.checkpoint()
                # Poison the handle: a client still holding this
                # instance must re-fetch through the manager instead of
                # writing to a journal the restored instance now owns.
                session.evicted = True
            self._sessions.pop(session_id, None)
            self._last_used.pop(session_id, None)
            self._sessions_evicted.inc()
            self._log.info("session_evicted", session=session_id)

    def discard(self, session_id: str) -> bool:
        """Drop a resident session from memory *without* checkpointing.

        The recovery primitive for write failures: when a group-commit
        flush fails (disk full, I/O error), the in-memory session has
        already applied events the journal never durably recorded — its
        state has diverged from disk, and checkpointing it would
        persist the divergence.  Discarding poisons the stale handle
        and drops it; the next :meth:`get` restores the session from
        its journal, i.e. from the last state that was actually
        durable.  Returns False when the session was not resident.
        """
        with self._registry_lock:
            session = self._sessions.pop(session_id, None)
            self._last_used.pop(session_id, None)
            if session is None:
                return False
            session.evicted = True
            return True

    def drain_to_disk(self) -> list[str]:
        """Checkpoint and drop every resident journalled session.

        The graceful-shutdown path (SIGTERM): after this returns, every
        journalled session is durable on disk — flushed through its
        WAL — and a restarted manager restores each one exactly where
        it stopped.  Memory-only sessions have nowhere to go and are
        left resident.  Returns the ids drained.
        """
        drained = []
        with self._registry_lock:
            for session_id in list(self._sessions):
                session = self._sessions[session_id]
                if session.wal is None or session.closed:
                    continue
                with session._lock:
                    session.checkpoint()
                    session.evicted = True
                self._sessions.pop(session_id, None)
                self._last_used.pop(session_id, None)
                drained.append(session_id)
        return drained

    def evict_idle(self, max_idle_seconds: float) -> list[str]:
        """Evict every journalled session idle longer than the cutoff."""
        now = time.monotonic()
        evicted = []
        with self._registry_lock:
            for session_id in list(self._sessions):
                session = self._sessions[session_id]
                if session.wal is None:
                    continue
                if now - self._last_used.get(session_id, now) >= max_idle_seconds:
                    self.evict(session_id)
                    evicted.append(session_id)
        return evicted

    # -- introspection -----------------------------------------------------

    def list_sessions(self) -> list[dict]:
        """Status of every known session (resident and on disk)."""
        with self._registry_lock:
            out = []
            seen = set()
            for session_id, session in sorted(self._sessions.items()):
                status = session.status()
                status["resident"] = True
                out.append(status)
                seen.add(session_id)
            if self.root_dir is not None:
                for directory in sorted(self.root_dir.iterdir()):
                    if directory.name in seen or not directory.is_dir():
                        continue
                    if (directory / self._manifest()).is_file():
                        out.append({
                            "session_id": directory.name,
                            "resident": False,
                        })
            return out

    @property
    def resident_count(self) -> int:
        with self._registry_lock:
            return len(self._sessions)

    def observe_session_telemetry(self) -> None:
        """Refresh per-session estimator gauges (called at scrape time).

        Estimator telemetry (current estimate, CI width, labels
        consumed, weight-ESS) is pulled when ``/metrics`` is scraped
        rather than pushed on every ingest: confidence intervals cost a
        pass over the observation history, which has no business on the
        hot path.
        """
        estimate_gauge = self.metrics.gauge(
            "oasis_session_estimate",
            "Current point estimate, per resident session.", ("session",))
        ci_gauge = self.metrics.gauge(
            "oasis_session_ci_width",
            "Width of the 95% confidence interval, per resident session.",
            ("session",))
        labels_gauge = self.metrics.gauge(
            "oasis_session_labels_consumed",
            "Distinct labels consumed, per resident session.", ("session",))
        ess_gauge = self.metrics.gauge(
            "oasis_session_weight_ess",
            "Kish effective sample size of the importance weights, per "
            "resident session.", ("session",))
        with self._registry_lock:
            sessions = list(self._sessions.values())
            self._resident_gauge.set(len(sessions))
        for session in sessions:
            try:
                telemetry = session.telemetry()
            except Exception:  # a racing close must not fail a scrape
                continue
            sid = telemetry["session_id"]
            labels_gauge.set(telemetry["labels_consumed"], session=sid)
            if telemetry["estimate"] is not None:
                estimate_gauge.set(telemetry["estimate"], session=sid)
            if telemetry["ci_width"] is not None:
                ci_gauge.set(telemetry["ci_width"], session=sid)
            if telemetry["weight_ess"] is not None:
                ess_gauge.set(telemetry["weight_ess"], session=sid)
