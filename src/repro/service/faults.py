"""Crash-point instrumentation for the service tier's fault tests.

The durability claims of the sharded service are claims about *where*
a kill lands: mid-batch, after the WAL data fsync but before the
rename, after the rename but before the acknowledgements go out.  This
module makes those points addressable so the test harness
(``tests/test_service_faults.py``) can SIGKILL a live shard worker at
an exact durability stage and assert what a restart restores.

It lives in the package (not the test tree) because shard workers run
in child processes: the fault spec travels to the worker as a plain
dict in its options, and the worker imports this module to arm it —
test modules are not importable from a spawned child.

Stages, in the order one flushed batch passes through them:

=====================  =================================================
``batch:mid``          between executing two requests of one commit
                       batch (events buffered, nothing durable)
``wal:pre_fsync``      shard file written, not yet fsynced
``wal:pre_rename``     data fsynced, tmp file not yet renamed
``wal:post_rename``    renamed, containing directory not yet fsynced —
                       the window the directory-fsync fix closes
``wal:post_durable``   shard fully durable (file + directory fsync)
``batch:pre_ack``      every WAL flush done, no reply sent yet — the
                       "durable but unacknowledged" window clients must
                       recover from via ``status()``
``sock:torn_ack``      mid-way through writing a reply frame (the ack
                       itself is torn on the wire)
``sock:drop_ack``      the reply frame vanishes entirely — written by
                       the worker, never delivered (lost-ack network
                       fault; the worker survives)
=====================  =================================================

Beyond kills, a plan can carry ``mode="enospc"``: instead of SIGKILL,
every durability-stage write from the trigger point on raises
``OSError(ENOSPC)`` — the worker must degrade to read-only 503s, not
corrupt state.  :func:`flip_bits` and :func:`truncate_file` are the
offline corruption injectors the integrity tests aim at restore.

Nothing here is imported by the production path unless a fault spec is
present in the worker options.
"""

from __future__ import annotations

import errno
import os
import signal
import socket
from collections import Counter
from pathlib import Path

from repro.service.wal import GroupCommitWAL

__all__ = [
    "FaultPlan",
    "FaultingWAL",
    "FaultingSocket",
    "faulting_wal_factory",
    "flip_bits",
    "truncate_file",
]


class FaultPlan:
    """Deterministic fault scheduler, armed at the Nth hit of a stage.

    Parameters
    ----------
    stage:
        Stage name (see module docstring); ``None`` never fires, which
        turns the instrumentation into pure counters.
    after:
        Fire on the ``after``-th time the stage is reached (1-based).
    mode:
        ``"kill"`` (default) SIGKILLs the process at the trigger —
        nothing runs afterwards, like a power loss.  ``"enospc"``
        instead raises ``OSError(ENOSPC)`` at the trigger *and on
        every later crossing of the stage*: a volume that filled up
        stays full until an operator intervenes, so the fault is
        persistent, not one-shot.
    """

    def __init__(self, stage: str | None, after: int = 1,
                 mode: str = "kill"):
        if after < 1:
            raise ValueError(f"after must be >= 1; got {after}")
        if mode not in ("kill", "enospc"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.stage = stage
        self.after = int(after)
        self.mode = mode
        self.counts: Counter[str] = Counter()

    @classmethod
    def from_spec(cls, spec: dict | None) -> "FaultPlan":
        """Build from the plain-dict form carried in shard options."""
        if not spec:
            return cls(None)
        return cls(spec["stage"], int(spec.get("after", 1)),
                   spec.get("mode", "kill"))

    def trip(self, stage: str) -> None:
        """Count a stage crossing; fire the armed fault if due.

        In ``kill`` mode: SIGKILL, not an exception — the whole point
        is that nothing (no ``finally``, no flush, no farewell frame)
        runs after the crash point, exactly like a machine losing
        power there.  In ``enospc`` mode: raise ``OSError(ENOSPC)``
        here and on every subsequent crossing, simulating a volume
        that filled and stayed full.
        """
        self.counts[stage] += 1
        if stage != self.stage:
            return
        if self.mode == "enospc":
            if self.counts[stage] >= self.after:
                raise OSError(errno.ENOSPC, "no space left on device "
                                            "(injected)")
            return
        if self.counts[stage] == self.after:
            os.kill(os.getpid(), signal.SIGKILL)


class FaultingWAL(GroupCommitWAL):
    """A group-commit journal whose durability stages can kill the process.

    Behaves exactly like :class:`~repro.service.wal.GroupCommitWAL`
    (same shards, same flush policy) but routes every internal
    durability stage through a :class:`FaultPlan` — and keeps the
    per-stage counters visible for assertions such as "the directory
    fsync ran once per flush".
    """

    def __init__(self, directory, *, plan: FaultPlan, codec: str = "json",
                 max_batch: int = 32):
        super().__init__(directory, codec=codec, max_batch=max_batch)
        self.plan = plan

    def _stage(self, stage: str, **context) -> None:
        self.plan.trip(f"wal:{stage}")


def faulting_wal_factory(plan: FaultPlan, *, codec: str = "json",
                         max_batch: int = 32):
    """A ``wal_factory`` for :class:`~repro.service.manager.SessionManager`."""
    def factory(directory):
        return FaultingWAL(directory, plan=plan, codec=codec,
                           max_batch=max_batch)

    return factory


class FaultingSocket:
    """A socket proxy that can die mid-way through a send.

    Wraps the shard worker's per-connection socket so the
    ``sock:torn_ack`` stage can SIGKILL after only *half* of a reply
    frame has reached the wire — the router must treat the resulting
    short read as a dead shard, never as a mangled success.
    """

    def __init__(self, sock, plan: FaultPlan):
        self._sock = sock
        self._plan = plan

    def sendall(self, data: bytes) -> None:
        plan = self._plan
        if plan.stage == "sock:torn_ack":
            plan.counts["sock:torn_ack"] += 1
            if plan.counts["sock:torn_ack"] == plan.after:
                self._sock.sendall(data[: max(1, len(data) // 2)])
                os.kill(os.getpid(), signal.SIGKILL)
        elif plan.stage == "sock:drop_ack":
            plan.counts["sock:drop_ack"] += 1
            if plan.counts["sock:drop_ack"] == plan.after:
                # The ack evaporates: sever the connection without
                # sending a byte of it.  Unlike torn_ack the worker
                # lives on — the events behind the reply are durable,
                # and only a keyed retry can prove to the client what
                # actually happened.  shutdown(), not close(): the
                # worker's own reader holds an io-ref on this socket,
                # so close() would defer the FIN and the router would
                # hang instead of seeing a dead connection.
                try:
                    self._sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                raise OSError(errno.EPIPE, "reply dropped (injected)")
        self._sock.sendall(data)

    def __getattr__(self, name):
        return getattr(self._sock, name)


# -- offline corruption injectors ------------------------------------------

def flip_bits(path, offsets, *, mask: int = 0x01) -> None:
    """XOR ``mask`` into the byte at each offset of ``path`` in place.

    The bit-rot injector: the file keeps its length and structure, so
    only a checksum can tell.  Offsets index from the end when
    negative.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    for offset in offsets:
        data[offset] ^= mask & 0xFF
    path.write_bytes(bytes(data))


def truncate_file(path, keep: int) -> None:
    """Cut ``path`` to its first ``keep`` bytes (simulated torn write).

    ``keep`` may be negative to count back from the end.  Atomic-write
    journals never produce this through the write path itself — it
    models damage after the fact (fs repair, partial copy) and the torn
    tails of non-atomic storage.
    """
    path = Path(path)
    data = path.read_bytes()
    if keep < 0:
        keep = max(0, len(data) + keep)
    path.write_bytes(data[:keep])
