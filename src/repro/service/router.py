"""Front-end routing for the sharded service tier.

The router is the only process clients talk to.  It terminates HTTP
(via :mod:`repro.service.http`), maps each session id onto a shard with
**consistent hashing**, and proxies the request to that shard worker
over the length-prefixed RPC of :mod:`repro.service.rpc` — forwarding
request and response bodies *verbatim*, so the router never pays for
JSON it does not need to understand.  Its own CPU work per request is a
path match, a ring lookup and two frame copies.

Pieces, bottom up:

* :class:`HashRing` — consistent hashing over session ids.  Many
  virtual points per shard keep the load spread even; hashing is
  BLAKE2 over stable strings, so the mapping is identical in every
  process and across restarts.
* :class:`ShardClient` — one multiplexed connection to one worker.
  Concurrent front-end threads pipeline requests (tagged with ids)
  down the same socket; a reader thread matches responses back.  This
  pipelining is what *feeds* the worker's group commit: a batch forms
  from whatever several clients have in flight at once.
* :class:`ShardSupervisor` — owns the worker processes: spawns them,
  collects their ports, and restarts any that die (a crashed worker's
  sessions restore from their journals on first touch).  While a shard
  is down its requests fail fast with backpressure, never hang.
* :class:`ShardRouter` — the HTTP dispatcher: routes, fans out
  ``/sessions`` and ``/healthz``, and renders worker backpressure as
  503 + ``Retry-After``.

A sharded root is stamped with ``topology.json`` (shard count, WAL
codec) on first start; later starts must agree — re-sharding moves
sessions between shard directories and is an explicit offline
migration, not something a restart should do silently.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import multiprocessing
import os
import re
import signal
import threading
import time
import uuid
from pathlib import Path

from repro.service.errors import (
    DeadlineExceededError,
    OverloadError,
    ServiceError,
)
from repro.service.rpc import recv_frame, send_frame
from repro.service.shard import SHARD_DEFAULTS, shard_dir_name, shard_worker_main
from repro.utils import (
    CounterResetAccumulator,
    MetricsRegistry,
    add_snapshot_label,
    atomic_write_text,
    current_request_id,
    get_logger,
)
from repro.utils.metrics import PROMETHEUS_CONTENT_TYPE

__all__ = [
    "HashRing",
    "ShardClient",
    "ShardSupervisor",
    "ShardRouter",
    "load_topology",
    "init_topology",
]

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_SESSION_ROUTE = re.compile(
    r"^/sessions/(?P<sid>[A-Za-z0-9._-]+)"
    r"(?:/(?P<action>propose|ingest|estimate|checkpoint|history))?$"
)

TOPOLOGY_FILE = "topology.json"


# -- topology --------------------------------------------------------------

def load_topology(root) -> dict | None:
    """The root's recorded sharding, or ``None`` for a fresh root."""
    path = Path(root) / TOPOLOGY_FILE
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def init_topology(root, n_shards: int, codec: str) -> dict:
    """Record (or verify) the root's sharding.

    The shard count decides which directory each session journal lives
    in, so it is part of the root's identity: a mismatch raises rather
    than silently routing existing sessions to workers that do not own
    their directories.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    existing = load_topology(root)
    desired = {"version": 1, "shards": int(n_shards), "codec": codec}
    if existing is not None:
        if (existing.get("shards") != desired["shards"]
                or existing.get("codec") != desired["codec"]):
            raise ValueError(
                f"service root {root} is laid out for "
                f"{existing.get('shards')} shard(s) with the "
                f"{existing.get('codec')!r} WAL codec; asked for "
                f"{n_shards}/{codec!r}.  Re-sharding is an offline "
                "migration — move the session directories, then update "
                f"{TOPOLOGY_FILE}."
            )
        return existing
    atomic_write_text(
        root / TOPOLOGY_FILE, json.dumps(desired, sort_keys=True),
        fsync_dir=True,
    )
    return desired


# -- consistent hashing ----------------------------------------------------

class HashRing:
    """Consistent hashing of session ids onto shard indices.

    Each shard contributes ``replicas`` pseudo-random points on a
    64-bit ring; a session id hashes to a point and walks clockwise to
    the first shard point.  Removing a shard therefore only moves the
    keys that sat on its points (≈ 1/n of them) — the classic
    consistent-hashing property — and the hash is a keyed BLAKE2 over
    stable strings, identical across processes, platforms and runs.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64):
        if n_shards < 1:
            raise ValueError(f"need at least one shard; got {n_shards}")
        self.n_shards = int(n_shards)
        self.replicas = int(replicas)
        points = []
        for shard in range(self.n_shards):
            for replica in range(self.replicas):
                points.append((self._hash(f"shard-{shard}#{replica}"), shard))
        points.sort()
        self._points = [h for h, _ in points]
        self._shards = [s for _, s in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def shard_for(self, session_id: str) -> int:
        """The shard owning ``session_id``."""
        position = bisect.bisect(self._points, self._hash(session_id))
        if position == len(self._points):
            position = 0
        return self._shards[position]


# -- shard client ----------------------------------------------------------

class _Waiter:
    __slots__ = ("event", "response")

    def __init__(self):
        self.event = threading.Event()
        self.response = None


class ShardClient:
    """One multiplexed RPC connection to one shard worker.

    Thread-safe: any number of front-end threads call :meth:`request`
    concurrently; frames interleave on one socket (send serialised by a
    lock) and a reader thread dispatches responses by request id.  When
    the connection dies — worker crashed, or a reply was torn mid-frame
    — every in-flight request fails with :class:`OverloadError` (the
    caller retries once the supervisor has the worker back) and the
    next request reconnects lazily.
    """

    #: Default per-request timeout (seconds); override per client via
    #: the constructor (``serve --rpc-timeout``) or per request via
    #: :meth:`request`'s ``timeout``.
    DEFAULT_TIMEOUT = 120.0

    def __init__(self, index: int, port: int | None = None, *,
                 timeout: float | None = None):
        self.index = index
        self.timeout = (
            self.DEFAULT_TIMEOUT if timeout is None else float(timeout))
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive; got {timeout}")
        self._port = port
        self._sock = None
        self._rfile = None
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _Waiter] = {}
        self._next_id = 0

    def set_port(self, port: int) -> None:
        """Point at a (re)started worker; drops any current connection."""
        with self._state_lock:
            self._port = port
            self._teardown_locked("shard worker restarted")

    def close(self) -> None:
        with self._state_lock:
            self._teardown_locked("client closed")

    def _teardown_locked(self, reason: str) -> None:
        sock, self._sock, self._rfile = self._sock, None, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        pending, self._pending = self._pending, {}
        for waiter in pending.values():
            waiter.response = (503, {"error": reason}, 0.1)
            waiter.event.set()

    def _ensure_connected(self):
        with self._state_lock:
            if self._sock is not None:
                return self._sock
            if self._port is None:
                raise OverloadError(
                    f"shard {self.index} is not accepting connections "
                    "(worker starting)", retry_after=0.2)
            import socket as socket_module

            try:
                sock = socket_module.create_connection(
                    ("127.0.0.1", self._port), timeout=5.0)
            except OSError as exc:
                raise OverloadError(
                    f"shard {self.index} is unreachable ({exc}); "
                    "worker restarting", retry_after=0.2) from exc
            sock.setsockopt(
                socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1)
            sock.settimeout(None)
            self._sock = sock
            self._rfile = sock.makefile("rb")
            threading.Thread(
                target=self._reader_loop, args=(sock, self._rfile),
                daemon=True,
            ).start()
            return sock

    def _reader_loop(self, sock, rfile) -> None:
        while True:
            try:
                header, body = recv_frame(rfile)
            except (ConnectionError, ValueError, OSError):
                with self._state_lock:
                    if self._sock is sock:  # not already superseded
                        self._teardown_locked(
                            f"shard {self.index} connection lost")
                return
            waiter = self._pending.pop(header.get("id"), None)
            if waiter is not None:
                try:
                    payload = json.loads(body) if body else {}
                except json.JSONDecodeError:
                    payload = {"error": "shard returned malformed JSON"}
                waiter.response = (
                    int(header.get("status", 500)),
                    payload,
                    header.get("retry_after"),
                )
                waiter.event.set()

    def request(self, op: str, sid: str | None = None, body: bytes = b"",
                timeout: float | None = None,
                request_id: str | None = None):
        """One RPC round trip; returns ``(status, payload, retry_after)``.

        ``timeout`` (seconds) defaults to the client's configured
        timeout.  ``request_id`` is the HTTP front door's trace id; it
        defaults to the id bound in the logging context (set by the
        handler thread), so tracing survives this hop without every
        caller threading it through.  Raises :class:`OverloadError`
        when the shard cannot be reached (not executed — safe to retry
        blindly) and :class:`DeadlineExceededError` when it was reached
        but did not answer in time (may have executed — retry with an
        idempotency key).
        """
        if timeout is None:
            timeout = self.timeout
        if request_id is None:
            request_id = current_request_id()
        sock = self._ensure_connected()
        waiter = _Waiter()
        with self._send_lock:
            self._next_id += 1
            frame_id = self._next_id
            self._pending[frame_id] = waiter
            header = {"id": frame_id, "op": op}
            if sid is not None:
                header["sid"] = sid
            if request_id is not None:
                header["rid"] = request_id
            try:
                send_frame(sock, header, body)
            except OSError as exc:
                self._pending.pop(frame_id, None)
                with self._state_lock:
                    if self._sock is sock:
                        self._teardown_locked(
                            f"shard {self.index} connection lost")
                raise OverloadError(
                    f"shard {self.index} went away mid-send; retry",
                    retry_after=0.2) from exc
        if not waiter.event.wait(timeout):
            self._pending.pop(frame_id, None)
            raise DeadlineExceededError(
                f"shard {self.index} did not answer within {timeout:g}s; "
                "the request may still execute")
        return waiter.response


# -- supervisor ------------------------------------------------------------

def _mp_context():
    """Cheapest safe start method: forkserver (preloaded) else spawn."""
    try:
        context = multiprocessing.get_context("forkserver")
        context.set_forkserver_preload(["repro.service.shard"])
        return context
    except (ValueError, AttributeError):  # pragma: no cover - non-POSIX
        return multiprocessing.get_context("spawn")


class ShardSupervisor:
    """Spawns, watches and restarts the pool of shard workers.

    A worker that dies — crash or kill — is restarted against the same
    shard directory; its sessions restore lazily from their journals on
    first access, so from a client's perspective a crashed shard is a
    brief burst of 503s followed by exactly the state every previously
    acknowledged event implies.  Surviving shards never notice.
    """

    def __init__(self, root, n_shards: int, *, options: dict | None = None,
                 start_timeout: float = 60.0,
                 rpc_timeout: float | None = None):
        self.root = Path(root)
        self.n_shards = int(n_shards)
        options = dict(options or {})
        unknown = set(options) - set(SHARD_DEFAULTS)
        if unknown:
            raise ValueError(f"unknown shard options {sorted(unknown)}")
        self.options = options
        self.start_timeout = start_timeout
        self.rpc_timeout = rpc_timeout
        self.clients: list[ShardClient] = []
        self.processes: list = [None] * self.n_shards
        self.restarts = [0] * self.n_shards
        self._ctx = _mp_context()
        self._stopping = threading.Event()
        self._monitor = None
        self._lock = threading.Lock()
        self._log = get_logger("supervisor")

    # -- lifecycle --

    def start(self) -> "ShardSupervisor":
        self.clients = [
            ShardClient(index, timeout=self.rpc_timeout)
            for index in range(self.n_shards)
        ]
        for index in range(self.n_shards):
            self._spawn(index)
        self._monitor = threading.Thread(target=self._watch, daemon=True)
        self._monitor.start()
        return self

    def _spawn(self, index: int) -> None:
        options = dict(self.options)
        if self.restarts[index]:
            # A fault spec arms the *original* worker only: the whole
            # point of a planned crash is asserting what the restarted,
            # healthy worker restores — a respawn that re-armed the
            # same fault would just crash-loop.
            options.pop("fault", None)
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child, str(self.root / shard_dir_name(index)), options),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        process.start()
        child.close()
        if not parent.poll(self.start_timeout):
            process.kill()
            raise RuntimeError(
                f"shard worker {index} did not report its port within "
                f"{self.start_timeout:g}s")
        hello = parent.recv()
        parent.close()
        with self._lock:
            self.processes[index] = process
            self.clients[index].set_port(int(hello["port"]))

    def _watch(self) -> None:
        while not self._stopping.is_set():
            with self._lock:
                alive = {
                    process.sentinel: index
                    for index, process in enumerate(self.processes)
                    if process is not None
                }
            if not alive:
                return
            ready = multiprocessing.connection.wait(
                list(alive), timeout=0.25)
            if self._stopping.is_set():
                return
            for sentinel in ready:
                index = alive[sentinel]
                with self._lock:
                    process = self.processes[index]
                    if process is None or process.sentinel != sentinel:
                        continue
                    process.join()
                    self.processes[index] = None
                self.restarts[index] += 1
                self._log.warning("worker_restarting", shard=index,
                                  restarts=self.restarts[index])
                try:
                    self._spawn(index)
                except RuntimeError:  # pragma: no cover - spawn timeout
                    time.sleep(0.5)

    def stop(self, *, graceful: bool = True, timeout: float = 30.0) -> None:
        """Stop all workers; graceful means drain-and-checkpoint first."""
        self._stopping.set()
        with self._lock:
            processes = list(self.processes)
        for process in processes:
            if process is None or not process.is_alive():
                continue
            if graceful:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except (OSError, TypeError):  # pragma: no cover
                    pass
            else:
                process.kill()
        deadline = time.monotonic() + timeout
        for process in processes:
            if process is None:
                continue
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - drain hang
                process.kill()
                process.join(5.0)
        for client in self.clients:
            client.close()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)

    # -- introspection --

    def worker_pids(self) -> list[int | None]:
        with self._lock:
            return [
                None if process is None else process.pid
                for process in self.processes
            ]

    def shard_stats(self, timeout: float = 2.0) -> list[dict]:
        """Per-shard worker stats; unreachable shards report status down."""
        out = []
        for index, client in enumerate(self.clients):
            entry = {"shard": index, "restarts": self.restarts[index]}
            try:
                status, payload, _ = client.request(
                    "stats", timeout=timeout)
                if status == 200:
                    entry.update(payload)
                    entry["status"] = "ok"
                else:
                    entry["status"] = "down"
            except ServiceError:
                entry["status"] = "down"
            out.append(entry)
        return out


# -- the dispatcher --------------------------------------------------------

class ShardRouter:
    """HTTP-semantics dispatcher over a shard pool.

    ``dispatch`` receives the already-read request (method, path, raw
    body bytes) from the HTTP front-end and returns
    ``(status, body_bytes, extra_headers)``.  Bodies pass through to
    and from the owning shard untouched except for session creation,
    where the router must parse once to assign/validate the id it
    routes by.
    """

    # Paths every shard answers; anything else routes by session id.
    _ACTIONS = {"propose", "ingest", "estimate", "checkpoint", "history"}

    def __init__(self, supervisor: ShardSupervisor,
                 ring: HashRing | None = None):
        self.supervisor = supervisor
        self.ring = ring or HashRing(supervisor.n_shards)
        #: The router's own registry (HTTP counters, restart gauges).
        #: Shard registries are scraped over the RPC and merged in.
        self.metrics = MetricsRegistry()
        self._accumulator = CounterResetAccumulator()
        # Last successfully adjusted snapshot per shard: rendered in
        # place of a shard that cannot answer a scrape, so restart
        # windows freeze its series instead of denting them.
        self._last_shard_snapshots: dict[int, dict] = {}
        self._http_requests = self.metrics.counter(
            "oasis_http_requests_total",
            "HTTP requests served, by method and response status.",
            ("method", "status"))
        self._restart_gauge = self.metrics.gauge(
            "oasis_worker_restarts",
            "Times each shard worker has been restarted.", ("shard",))

    def _request(self, shard: int, op: str, sid: str | None = None,
                 body: bytes = b"", timeout: float | None = None):
        status, payload, retry_after = self.supervisor.clients[shard].request(
            op, sid=sid, body=body, timeout=timeout)
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = f"{max(float(retry_after), 0.0):g}"
        return status, json.dumps(payload).encode("utf-8"), headers

    def dispatch(self, method: str, path: str, body: bytes,
                 timeout: float | None = None, *,
                 request_id: str | None = None):
        """Route one request; ``timeout`` is the caller's deadline.

        ``timeout`` (seconds, from the ``X-Request-Timeout`` header)
        overrides the configured RPC timeout for this request only;
        deadline exhaustion renders as 504.  ``request_id`` (the front
        door's trace id) rides the shard RPC frames via the logging
        context the HTTP handler bound.
        """
        status, payload, headers = self._dispatch_guarded(
            method, path, body, timeout)
        self._http_requests.inc(method=method, status=str(status))
        return status, payload, headers

    def _dispatch_guarded(self, method: str, path: str, body: bytes,
                          timeout: float | None = None):
        try:
            return self._dispatch(method, path, body, timeout)
        except OverloadError as exc:
            payload = json.dumps({"error": str(exc)}).encode("utf-8")
            return exc.status, payload, {
                "Retry-After": f"{exc.retry_after:g}"}
        except ServiceError as exc:
            payload = json.dumps({"error": str(exc)}).encode("utf-8")
            return exc.status, payload, {}
        except (ValueError, TypeError) as exc:
            return 400, json.dumps({"error": str(exc)}).encode("utf-8"), {}
        except KeyError as exc:
            return (404, json.dumps({"error": f"not found: {exc}"})
                    .encode("utf-8"), {})

    def _dispatch(self, method: str, path: str, body: bytes,
                  timeout: float | None = None):
        if path == "/metrics" and method == "GET":
            return self._scrape(timeout)
        if path == "/healthz" and method == "GET":
            shards = self.supervisor.shard_stats()
            healthy = sum(1 for shard in shards if shard["status"] == "ok")
            read_only = sum(
                1 for shard in shards if shard.get("read_only"))
            status_word = "ok" if healthy == len(shards) else "degraded"
            if read_only:
                status_word = "degraded"
            recovered = [
                {"shard": shard["shard"], **entry}
                for shard in shards
                for entry in (shard.get("wal_recovered") or [])
            ]
            payload = {
                "status": status_word,
                "shards": shards,
                "resident_sessions": sum(
                    shard.get("resident_sessions", 0) for shard in shards),
                "queue_depth": sum(
                    shard.get("queue_depth", 0) for shard in shards),
                "read_only_shards": read_only,
                "wal": {"recovered": recovered},
            }
            return 200, json.dumps(payload).encode("utf-8"), {}
        if path == "/sessions":
            if method == "GET":
                sessions = []
                for index in range(self.supervisor.n_shards):
                    status, payload, _ = self.supervisor.clients[
                        index].request("list")
                    if status == 200:
                        for entry in payload.get("sessions", []):
                            entry["shard"] = index
                            sessions.append(entry)
                sessions.sort(key=lambda entry: entry.get("session_id", ""))
                return (200, json.dumps({"sessions": sessions})
                        .encode("utf-8"), {})
            if method == "POST":
                return self._create(body, timeout)
            raise ValueError(f"unsupported method {method} for {path}")
        match = _SESSION_ROUTE.match(path)
        if not match:
            raise KeyError(path)
        sid, action = match.group("sid"), match.group("action")
        shard = self.ring.shard_for(sid)
        if action is None:
            if method == "GET":
                return self._request(shard, "status", sid, timeout=timeout)
            if method == "DELETE":
                return self._request(shard, "close", sid, timeout=timeout)
            raise ValueError(f"unsupported method {method} for {path}")
        if action in ("estimate", "history"):
            if method != "GET":
                raise ValueError(f"unsupported method {method} for {path}")
            return self._request(shard, action, sid, timeout=timeout)
        if method != "POST":
            raise ValueError(f"unsupported method {method} for {path}")
        return self._request(shard, action, sid, body, timeout=timeout)

    def _scrape(self, timeout: float | None = None):
        """Fan ``/metrics`` out to every worker and merge the registries.

        Counters from a restarted worker restart from zero; the
        accumulator banks each dead instance's final values (keyed by
        the registry ``instance`` id in its snapshot) so the merged
        series stay monotonic across crashes — a SIGKILLed shard's
        request counts are never lost and never double-counted.  A
        shard that cannot answer is simply absent from this scrape; its
        banked totals still render.
        """
        for index in range(self.supervisor.n_shards):
            self._restart_gauge.set(
                self.supervisor.restarts[index], shard=str(index))
        snapshots = []
        for index, client in enumerate(self.supervisor.clients):
            try:
                status, payload, _ = client.request(
                    "metrics", timeout=timeout if timeout else 5.0)
            except ServiceError:
                status, payload = 0, None
            if status == 200 and isinstance(payload, dict):
                adjusted = self._accumulator.adjust(
                    f"shard-{index}", payload)
                labelled = add_snapshot_label(adjusted, "shard", str(index))
                self._last_shard_snapshots[index] = labelled
                snapshots.append(labelled)
            else:
                cached = self._last_shard_snapshots.get(index)
                if cached is not None:
                    snapshots.append(cached)
        text = self.metrics.render(snapshots)
        return (200, text.encode("utf-8"),
                {"Content-Type": PROMETHEUS_CONTENT_TYPE})

    def _create(self, body: bytes, timeout: float | None = None):
        # The one place the router parses a body: creation needs the
        # session id (assigned here if absent) to know its shard.
        try:
            payload = json.loads(body) if body else {}
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        sid = payload.get("session_id")
        if sid is None:
            sid = uuid.uuid4().hex[:12]
            payload["session_id"] = sid
            body = json.dumps(payload).encode("utf-8")
        elif not _ID_RE.match(sid):
            raise ValueError(
                f"session_id {sid!r} must be 1-64 filesystem-safe "
                "characters (letters, digits, '.', '_', '-')")
        shard = self.ring.shard_for(sid)
        return self._request(shard, "create", sid, body, timeout=timeout)

    def close(self, *, graceful: bool = True) -> None:
        self.supervisor.stop(graceful=graceful)
