"""Divergences and error metrics for convergence diagnostics (Fig. 4)."""

from __future__ import annotations

import numpy as np

from repro.utils import check_probability_vector, check_same_length

__all__ = ["kl_divergence", "total_variation", "absolute_error"]


def kl_divergence(p, q, *, epsilon: float = 1e-12) -> float:
    """KL(p || q) between discrete distributions, in nats.

    Terms where ``p == 0`` contribute zero.  Where ``q == 0`` but
    ``p > 0`` the divergence is infinite; a small ``epsilon`` floor on
    ``q`` keeps the diagnostic finite (the paper's Fig. 4d tracks
    KL from the optimal instrumental distribution to its estimate,
    which the epsilon-greedy mixture keeps strictly positive anyway).
    """
    p = check_probability_vector(p, "p")
    q = check_probability_vector(q, "q")
    check_same_length(p, q, names=["p", "q"])
    q = np.clip(q, epsilon, None)
    support = p > 0
    return float(np.sum(p[support] * (np.log(p[support]) - np.log(q[support]))))


def total_variation(p, q) -> float:
    """Total variation distance ``0.5 * sum |p - q|``."""
    p = check_probability_vector(p, "p")
    q = check_probability_vector(q, "q")
    check_same_length(p, q, names=["p", "q"])
    return float(0.5 * np.abs(p - q).sum())


def absolute_error(estimate, truth) -> float:
    """Mean absolute error, ignoring NaN estimates.

    For scalar inputs this is plain ``|estimate - truth|``; NaN
    estimates (undefined F-measure) propagate as NaN so aggregation
    code can decide how to treat the undefined region.
    """
    estimate = np.asarray(estimate, dtype=float)
    truth = np.asarray(truth, dtype=float)
    err = np.abs(estimate - truth)
    if err.ndim == 0:
        return float(err)
    return float(np.nanmean(err))
