"""Evaluation measures for entity resolution.

Implements the pairwise F-measure family of the paper (Eqn 1), the
generalised ratio-measure family the estimation stack is built on
(:mod:`repro.measures.ratio`), confusion-matrix counting, and the
divergence diagnostics used in the convergence experiments (Fig. 4).
"""

from repro.measures.cluster import (
    cluster_precision_recall,
    clusters_from_pairs,
    merge_distance,
    pairs_from_clusters,
)
from repro.measures.confusion import ConfusionCounts, confusion_counts
from repro.measures.divergence import absolute_error, kl_divergence, total_variation
from repro.measures.fmeasure import (
    alpha_from_beta,
    beta_from_alpha,
    f_measure,
    f_measure_from_counts,
    pool_performance,
    precision,
    recall,
)
from repro.measures.ratio import (
    MEASURE_KINDS,
    Accuracy,
    BalancedAccuracy,
    FMeasure,
    LinearRatioMeasure,
    Precision,
    RatioMeasure,
    Recall,
    Specificity,
    WeightedRelativeAccuracy,
    measure_from_spec,
    resolve_measure,
)

__all__ = [
    "MEASURE_KINDS",
    "Accuracy",
    "BalancedAccuracy",
    "FMeasure",
    "LinearRatioMeasure",
    "Precision",
    "RatioMeasure",
    "Recall",
    "Specificity",
    "WeightedRelativeAccuracy",
    "measure_from_spec",
    "resolve_measure",
    "cluster_precision_recall",
    "clusters_from_pairs",
    "merge_distance",
    "pairs_from_clusters",
    "ConfusionCounts",
    "confusion_counts",
    "absolute_error",
    "kl_divergence",
    "total_variation",
    "alpha_from_beta",
    "beta_from_alpha",
    "f_measure",
    "f_measure_from_counts",
    "pool_performance",
    "precision",
    "recall",
]
