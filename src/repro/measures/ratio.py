"""Ratio measures over the confusion masses (the generalised Eqn 1/3).

Every target the AIS machinery can estimate is an instance of one
pattern: a smooth function of the four *weighted confusion masses*

    m = (TP, FP, FN, TN),

most of them literally a ratio of linear functionals

    G(m) = (c_num . m) / (c_den . m).

The paper's F-measure is the special case ``c_num = (1, 0, 0, 0)``,
``c_den = (1, alpha, 1 - alpha, 0)``; precision, recall, accuracy and
specificity are other coefficient choices, while balanced accuracy and
weighted relative accuracy are smooth-but-nonlinear members of the same
family.  A :class:`RatioMeasure` packages everything the estimation
stack needs about such a target:

* **evaluation** from the running moments the estimator maintains
  (:meth:`RatioMeasure.value_from_moments`),
* the **gradient** with respect to the masses/moments, which drives the
  delta-method confidence intervals
  (:meth:`RatioMeasure.moment_gradient`), and
* the **per-item variance profile** that the asymptotically optimal
  instrumental distribution is built from
  (:meth:`RatioMeasure.instrumental_weights`) — the paper's Eqn (5)
  closed form falls out of the generic gradient derivation when the
  measure is :class:`FMeasure` (see ``docs/measures.md``).

Moments versus masses
---------------------

The estimator accumulates the *moment* vector

    s = (sum w l lhat,  sum w lhat,  sum w l,  sum w)
      = (TP,  TP + FP,  TP + FN,  TP + FP + FN + TN),

a linear bijection of the masses that is cheaper to maintain online.
Mass-space coefficients convert to moment-space coefficients exactly
(:func:`mass_to_moment_coefficients`), and the conversion is arranged
so the F-measure path evaluates the *identical* floating-point
expression tree as the historical alpha-threaded implementation — the
refactor changes no numeric result on that path, bit for bit.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.measures.confusion import ConfusionCounts, confusion_counts
from repro.utils import check_in_range

__all__ = [
    "RatioMeasure",
    "LinearRatioMeasure",
    "FMeasure",
    "Precision",
    "Recall",
    "Accuracy",
    "Specificity",
    "BalancedAccuracy",
    "WeightedRelativeAccuracy",
    "MEASURE_KINDS",
    "measure_from_spec",
    "resolve_measure",
    "mass_to_moment_coefficients",
]

#: Order of the confusion-mass axis used throughout: (TP, FP, FN, TN).
MASS_LABELS = ("tp", "fp", "fn", "tn")

#: Order of the moment axis: (sum w l lhat, sum w lhat, sum w l, sum w).
MOMENT_LABELS = ("tp", "predicted", "actual", "total")

# Moment indicator of each confusion cell: row c is the moment vector
# x(z, l) of one unit of mass in cell c (TP, FP, FN, TN).  Used to turn
# a moment-space gradient into per-cell scores.
_CELL_MOMENTS = np.array(
    [
        [1.0, 1.0, 1.0, 1.0],  # TP: l = 1, lhat = 1
        [0.0, 1.0, 0.0, 1.0],  # FP: l = 0, lhat = 1
        [0.0, 0.0, 1.0, 1.0],  # FN: l = 1, lhat = 0
        [0.0, 0.0, 0.0, 1.0],  # TN: l = 0, lhat = 0
    ]
)


def mass_to_moment_coefficients(coefficients) -> np.ndarray:
    """Convert mass-space coefficients ``c`` to moment-space ``d``.

    ``c . m == d . s`` identically, with ``m`` the masses and ``s`` the
    moments.  The arithmetic is arranged term by term so that, for the
    F-measure coefficients, the derived moment coefficients are exactly
    ``(0, alpha, 1 - alpha, 0)`` at the floating-point level — the
    cancellation ``(1 - alpha) - (1 - alpha)`` is computed on identical
    float values and is exactly zero.
    """
    c = [float(v) for v in coefficients]
    if len(c) != 4:
        raise ValueError(f"expected 4 mass coefficients, got {len(c)}")
    return np.array(
        [
            ((c[0] - c[1]) - c[2]) + c[3],
            c[1] - c[3],
            c[2] - c[3],
            c[3],
        ]
    )


def _combine(coefficients, tp, predicted, actual, total):
    """``d . s`` with exact-zero coefficients skipped.

    Skipping zero terms keeps two guarantees at once: the surviving
    expression tree is identical to the historical hand-written
    formulas (adding an exact ``0.0`` term is the identity, so dropping
    it changes no bits), and a NaN in a moment a measure does not use
    (e.g. the total-weight moment of a migrated v1 snapshot) cannot
    poison the result.
    """
    out = None
    for coefficient, moment in zip(
        coefficients, (tp, predicted, actual, total)
    ):
        if coefficient == 0.0:
            continue
        term = moment if coefficient == 1.0 else coefficient * moment
        out = term if out is None else out + term
    if out is None:
        return np.zeros(np.broadcast(tp, predicted, actual, total).shape)
    return out


def _scalar_combine(coefficients, tp, predicted, actual, total) -> float:
    """Pure-float ``d . s`` with the same term skipping as :func:`_combine`."""
    out = None
    for coefficient, moment in zip(
        coefficients, (tp, predicted, actual, total)
    ):
        if coefficient == 0.0:
            continue
        term = moment if coefficient == 1.0 else coefficient * moment
        out = term if out is None else out + term
    return 0.0 if out is None else out


class RatioMeasure(abc.ABC):
    """A performance measure over the weighted confusion masses.

    Subclasses provide vectorised evaluation from the moment sums and
    the moment-space gradient; everything else — mass-space gradients,
    instrumental weights, confusion-count evaluation — derives from
    those two.  Instances are immutable value objects: equality and
    hashing go through :meth:`spec`.
    """

    #: Registry key of the concrete measure class.
    kind: str = ""

    #: Mathematical range of the measure; estimates and confidence
    #: intervals are clamped into it.
    bounds: tuple = (0.0, 1.0)

    # -- identity ----------------------------------------------------------

    def spec(self) -> dict:
        """JSON-safe description; round-trips via :func:`measure_from_spec`."""
        return {"kind": self.kind}

    @property
    def name(self) -> str:
        """Compact display name, e.g. ``fmeasure(alpha=0.5)``."""
        spec = self.spec()
        extra = {k: v for k, v in sorted(spec.items()) if k != "kind"}
        if not extra:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in extra.items())
        return f"{self.kind}({inner})"

    def __repr__(self) -> str:
        return f"{type(self).__name__}<{self.name}>"

    def __eq__(self, other) -> bool:
        return isinstance(other, RatioMeasure) and self.spec() == other.spec()

    def __hash__(self) -> int:
        import json

        return hash(json.dumps(self.spec(), sort_keys=True))

    # -- evaluation --------------------------------------------------------

    @abc.abstractmethod
    def value_from_moments(self, tp, predicted, actual, total, *,
                           clamp: bool = True):
        """Evaluate the measure from moment sums (scalars or arrays).

        Returns NaN wherever the measure is undefined (a constituent
        denominator has no mass).  With ``clamp`` (the estimator path)
        the value is clipped into :attr:`bounds`, guarding against
        denominator roundoff; plug-in paths (initialisation, stratified
        estimates) pass ``clamp=False`` to keep their historical
        unclamped behaviour.
        """

    @abc.abstractmethod
    def moment_gradient(self, tp, predicted, actual, total) -> np.ndarray:
        """Gradient of the measure with respect to the moment vector.

        Evaluated at scalar moments; returns shape ``(4,)`` (NaN-filled
        where the measure is undefined).  This is the object the
        delta-method variance and the optimal instrumental distribution
        are built from.
        """

    @property
    def uses_true_negatives(self) -> bool:
        """Whether the TN mass carries information for this measure.

        Positive-class-only measures (the F family) read nothing from
        true negatives, so a sample containing no positive at all is
        genuinely uninformative for them — the condition the stratified
        plug-in estimators use to report a cold-start NaN.  Measures
        that weight the TN cell (accuracy, specificity, ...) stay
        estimable from all-negative samples.  Conservative default:
        True (no cold-start suppression).
        """
        return True

    def value_from_sums(self, tp: float, predicted: float, actual: float,
                        total: float, *, clamp: bool = True) -> float:
        """Scalar counterpart of :meth:`value_from_moments`.

        Semantically identical; exists because the estimators evaluate
        the measure once per draw, where routing four Python floats
        through the array machinery costs an order of magnitude more
        than plain float arithmetic.  Subclasses override with a pure
        scalar expression; the fallback delegates to the vectorised
        path.
        """
        return float(
            self.value_from_moments(tp, predicted, actual, total, clamp=clamp)
        )

    def value_from_counts(self, counts: ConfusionCounts, *,
                          clamp: bool = False) -> float:
        """Evaluate the measure on explicit confusion counts."""
        return self.value_from_sums(
            counts.tp,
            counts.predicted_positives,
            counts.actual_positives,
            counts.total,
            clamp=clamp,
        )

    def value(self, true_labels, pred_labels, weights=None) -> float:
        """Evaluate the measure on labelled data (optionally weighted)."""
        return self.value_from_counts(
            confusion_counts(true_labels, pred_labels, weights=weights)
        )

    def mass_gradient(self, tp, predicted, actual, total) -> np.ndarray:
        """Gradient with respect to the masses ``(TP, FP, FN, TN)``.

        Each component is the moment gradient contracted with the
        moment indicator of one confusion cell — equivalently the
        per-cell influence score driving the instrumental distribution.
        """
        return _CELL_MOMENTS @ np.asarray(
            self.moment_gradient(tp, predicted, actual, total), dtype=float
        )

    # -- optimal instrumental design ---------------------------------------

    def cell_scores(self, base, predictions, probabilities,
                    estimate: float) -> np.ndarray:
        """Per-cell influence scores ``(r_tp, r_fp, r_fn, r_tn)``.

        The generic implementation evaluates the mass gradient at the
        plug-in moments implied by ``(base, predictions,
        probabilities)``; linear ratios override this with the
        moment-free residual ``c_num - G c_den`` (positively
        proportional to the gradient, so the normalised instrumental
        distribution is unchanged).
        """
        base = np.asarray(base, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        tp = float(np.sum(base * predictions * probabilities))
        predicted = float(np.sum(base * predictions))
        actual = float(np.sum(base * probabilities))
        total = float(np.sum(base))
        return self.mass_gradient(tp, predicted, actual, total)

    def instrumental_weights(self, base, predictions, probabilities,
                             estimate: float) -> np.ndarray:
        """Unnormalised asymptotically optimal instrumental weights.

        The generalisation of paper Eqn (5): item ``z`` receives mass

            base(z) * sqrt( E_{l | z} [ (grad . x(z, l))^2 ] )

        where ``x(z, l)`` is the moment contribution of observing label
        ``l`` on ``z`` and the expectation is over the (estimated)
        oracle probability.  With fractional predictions (per-stratum
        means) the lhat = 0 and lhat = 1 profiles mix linearly, exactly
        as the stratified Eqn (12) does for the F-measure.

        Returns a copy of ``base`` when the gradient is undefined (no
        information yet), mirroring the NaN-estimate fallback.
        """
        base = np.asarray(base, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        scores = np.asarray(
            self.cell_scores(base, predictions, probabilities, estimate),
            dtype=float,
        )
        if not np.all(np.isfinite(scores)):
            return np.array(base, copy=True)
        r_tp, r_fp, r_fn, r_tn = scores
        positive = np.sqrt(
            probabilities * r_tp**2 + (1.0 - probabilities) * r_fp**2
        )
        negative = np.sqrt(
            probabilities * r_fn**2 + (1.0 - probabilities) * r_tn**2
        )
        return base * (
            predictions * positive + (1.0 - predictions) * negative
        )

    # -- variance ----------------------------------------------------------

    def observation_moments(self, labels, predictions, weights) -> np.ndarray:
        """Per-observation weighted moment rows ``w * x`` (T x 4)."""
        labels = np.asarray(labels, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        weights = np.asarray(weights, dtype=float)
        return np.column_stack(
            [
                weights * labels * predictions,
                weights * predictions,
                weights * labels,
                weights,
            ]
        )


class LinearRatioMeasure(RatioMeasure):
    """A ratio of linear functionals of the masses.

    Parameters
    ----------
    numerator:
        Mass-space coefficients ``c_num`` over ``(TP, FP, FN, TN)``.
    denominator:
        Mass-space coefficients ``c_den``; must be non-negative so that
        positive denominator mass is exactly the "measure is defined"
        condition.
    """

    def __init__(self, numerator, denominator):
        self.numerator = np.asarray(
            [float(v) for v in numerator], dtype=float
        )
        self.denominator = np.asarray(
            [float(v) for v in denominator], dtype=float
        )
        if self.numerator.shape != (4,) or self.denominator.shape != (4,):
            raise ValueError("coefficient vectors must have length 4")
        if np.any(self.denominator < 0):
            raise ValueError("denominator coefficients must be non-negative")
        self._moment_numerator = mass_to_moment_coefficients(self.numerator)
        self._moment_denominator = mass_to_moment_coefficients(self.denominator)
        # Scalar (pure-float) copies of the moment coefficients for the
        # per-draw hot path — see value_from_sums.
        self._scalar_numerator = tuple(float(v) for v in self._moment_numerator)
        self._scalar_denominator = tuple(
            float(v) for v in self._moment_denominator
        )
        self.bounds = self._derive_bounds()

    def _derive_bounds(self) -> tuple:
        """Exact range of the ratio over the non-negative mass cone.

        A ratio of linear functionals attains its extremes at the cell
        vertices: cells with positive denominator mass contribute their
        coefficient ratio; a cell with zero denominator but non-zero
        numerator pushes the corresponding end to infinity.  For the
        classical measures this derives exactly (0.0, 1.0); custom
        coefficient choices (e.g. ``(TP - FP) / (TP + FP)``) get their
        true range instead of a silently wrong clamp.
        """
        low, high = np.inf, -np.inf
        for num_c, den_c in zip(self.numerator, self.denominator):
            if den_c > 0:
                ratio = float(num_c) / float(den_c)
                low = min(low, ratio)
                high = max(high, ratio)
            elif num_c > 0:
                high = np.inf
            elif num_c < 0:
                low = -np.inf
        if not low <= high:
            return (-np.inf, np.inf)
        return (float(low), float(high))

    @property
    def uses_true_negatives(self) -> bool:
        return bool(self.numerator[3] != 0.0 or self.denominator[3] != 0.0)

    kind = "linear"

    def spec(self) -> dict:
        if type(self) is not LinearRatioMeasure:
            # Named subclasses (precision, recall, ...) are identified
            # by their kind alone; the coefficients are implied.
            return super().spec()
        return {
            "kind": self.kind,
            "numerator": [float(v) for v in self.numerator],
            "denominator": [float(v) for v in self.denominator],
        }

    def value_from_moments(self, tp, predicted, actual, total, *,
                           clamp: bool = True):
        numerator = _combine(self._moment_numerator, tp, predicted, actual, total)
        denominator = _combine(
            self._moment_denominator, tp, predicted, actual, total
        )
        low, high = self.bounds
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = numerator / np.asarray(denominator, dtype=float)
            if clamp:
                ratio = np.clip(ratio, low, high)
            return np.where(np.asarray(denominator) > 0, ratio, np.nan)

    def value_from_sums(self, tp: float, predicted: float, actual: float,
                        total: float, *, clamp: bool = True) -> float:
        # The per-draw hot path: the historical scalar expression tree
        # (zero coefficients skipped, unit coefficients not multiplied),
        # bit-identical to the vectorised evaluation.
        numerator = _scalar_combine(
            self._scalar_numerator, tp, predicted, actual, total
        )
        denominator = _scalar_combine(
            self._scalar_denominator, tp, predicted, actual, total
        )
        if not denominator > 0:  # catches NaN denominators too
            return float("nan")
        value = numerator / denominator
        if value != value:  # NaN numerator; min/max would mishandle it
            return value
        if clamp:
            low, high = self.bounds
            return max(low, min(high, value))
        return value

    def moment_gradient(self, tp, predicted, actual, total) -> np.ndarray:
        denominator = float(
            _combine(self._moment_denominator, tp, predicted, actual, total)
        )
        if denominator <= 0:
            return np.full(4, np.nan)
        value = float(
            _combine(self._moment_numerator, tp, predicted, actual, total)
        ) / denominator
        return (
            self._moment_numerator - value * self._moment_denominator
        ) / denominator

    def observation_statistics(self, labels, predictions) -> tuple:
        """Per-observation unweighted ``(numerator, denominator)`` values.

        The linear-ratio delta-method variance only needs these two
        scalars per observation (the full gradient contracts to
        ``(num - G den) / D``); on the F-measure path they evaluate the
        exact historical expressions ``l * lhat`` and
        ``alpha * lhat + (1 - alpha) * l``.
        """
        labels = np.asarray(labels, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        interaction = labels * predictions
        ones = np.ones_like(labels)
        return (
            _combine(self._moment_numerator, interaction, predictions,
                     labels, ones),
            _combine(self._moment_denominator, interaction, predictions,
                     labels, ones),
        )

    def cell_scores(self, base, predictions, probabilities,
                    estimate: float) -> np.ndarray:
        # The mass gradient of a linear ratio is (c_num - G c_den) / D;
        # the positive 1/D scale is constant across items and cells, so
        # the residuals alone determine the normalised distribution —
        # and they only need the running estimate, not plug-in moments.
        if not np.isfinite(estimate):
            return np.full(4, np.nan)
        return self.numerator - float(estimate) * self.denominator


class FMeasure(LinearRatioMeasure):
    """The paper's F_alpha (Eqn 1): ``TP / (alpha (TP+FP) + (1-alpha) (TP+FN))``.

    ``alpha = 1`` is precision, ``alpha = 0`` recall, ``alpha = 1/2``
    the balanced F-measure; ``alpha = 1 / (1 + beta^2)`` maps from the
    conventional F_beta parametrisation.
    """

    kind = "fmeasure"

    def __init__(self, alpha: float = 0.5):
        check_in_range(alpha, 0.0, 1.0, "alpha")
        self.alpha = float(alpha)
        super().__init__(
            numerator=(1.0, 0.0, 0.0, 0.0),
            denominator=(1.0, self.alpha, 1.0 - self.alpha, 0.0),
        )

    def spec(self) -> dict:
        return {"kind": self.kind, "alpha": self.alpha}

    def instrumental_weights(self, base, predictions, probabilities,
                             estimate: float) -> np.ndarray:
        # The closed form of paper Eqns (5)/(12).  It is the generic
        # gradient-based expression of the base class with the residuals
        # r_tp = 1 - F, r_fp = -alpha F, r_fn = -(1-alpha) F, r_tn = 0
        # substituted and the square roots simplified algebraically
        # (sqrt(pi r^2) = |r| sqrt(pi)); the historical expression tree
        # is kept verbatim so the F-measure sampling path is
        # bit-identical to the pre-measure implementation.
        if not np.isfinite(estimate):
            return np.array(np.asarray(base, dtype=float), copy=True)
        base = np.asarray(base, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        probabilities = np.asarray(probabilities, dtype=float)
        f = float(estimate)
        alpha = self.alpha
        negative_term = (
            (1.0 - alpha) * (1.0 - predictions) * f * np.sqrt(probabilities)
        )
        positive_term = predictions * np.sqrt(
            (alpha * f) ** 2 * (1.0 - probabilities)
            + (1.0 - f) ** 2 * probabilities
        )
        return base * (negative_term + positive_term)


class Precision(LinearRatioMeasure):
    """``TP / (TP + FP)`` — F_alpha at ``alpha = 1``."""

    kind = "precision"
    alpha = 1.0

    def __init__(self):
        super().__init__(
            numerator=(1.0, 0.0, 0.0, 0.0), denominator=(1.0, 1.0, 0.0, 0.0)
        )


class Recall(LinearRatioMeasure):
    """``TP / (TP + FN)`` — F_alpha at ``alpha = 0``."""

    kind = "recall"
    alpha = 0.0

    def __init__(self):
        super().__init__(
            numerator=(1.0, 0.0, 0.0, 0.0), denominator=(1.0, 0.0, 1.0, 0.0)
        )


class Accuracy(LinearRatioMeasure):
    """``(TP + TN) / (TP + FP + FN + TN)``.

    Needs the total-weight moment the F-family ignores, which is why
    the estimator tracks all four moments.
    """

    kind = "accuracy"

    def __init__(self):
        super().__init__(
            numerator=(1.0, 0.0, 0.0, 1.0), denominator=(1.0, 1.0, 1.0, 1.0)
        )


class Specificity(LinearRatioMeasure):
    """``TN / (TN + FP)`` — the true-negative rate."""

    kind = "specificity"

    def __init__(self):
        super().__init__(
            numerator=(0.0, 0.0, 0.0, 1.0), denominator=(0.0, 1.0, 0.0, 1.0)
        )


class BalancedAccuracy(RatioMeasure):
    """``(recall + specificity) / 2`` — a smooth non-linear member.

    Not a single ratio of linear functionals, but still a smooth
    function of the masses, so the gradient machinery (delta-method
    CIs, optimal instrumental) applies unchanged.
    """

    kind = "balanced_accuracy"

    def value_from_moments(self, tp, predicted, actual, total, *,
                           clamp: bool = True):
        tp = np.asarray(tp, dtype=float)
        predicted = np.asarray(predicted, dtype=float)
        actual = np.asarray(actual, dtype=float)
        total = np.asarray(total, dtype=float)
        negatives = total - actual
        tn = total - predicted - actual + tp
        with np.errstate(invalid="ignore", divide="ignore"):
            value = 0.5 * (tp / actual) + 0.5 * (tn / negatives)
            if clamp:
                value = np.clip(value, *self.bounds)
            return np.where((actual > 0) & (negatives > 0), value, np.nan)

    def value_from_sums(self, tp: float, predicted: float, actual: float,
                        total: float, *, clamp: bool = True) -> float:
        negatives = total - actual
        if not (actual > 0 and negatives > 0):
            return float("nan")
        tn = total - predicted - actual + tp
        value = 0.5 * (tp / actual) + 0.5 * (tn / negatives)
        if value != value:
            return value
        if clamp:
            low, high = self.bounds
            return max(low, min(high, value))
        return value

    def moment_gradient(self, tp, predicted, actual, total) -> np.ndarray:
        tp, predicted, actual, total = (
            float(tp), float(predicted), float(actual), float(total)
        )
        negatives = total - actual
        if actual <= 0 or negatives <= 0:
            return np.full(4, np.nan)
        tn = total - predicted - actual + tp
        recall = tp / actual
        specificity = tn / negatives
        return np.array(
            [
                0.5 / actual + 0.5 / negatives,
                -0.5 / negatives,
                -0.5 * recall / actual + 0.5 * (specificity - 1.0) / negatives,
                0.5 * (1.0 - specificity) / negatives,
            ]
        )


class WeightedRelativeAccuracy(RatioMeasure):
    """WRAcc: ``P(lhat=1, l=1) - P(lhat=1) P(l=1)`` over the weighted pool.

    The covariance between prediction and label — the subgroup-discovery
    trade-off between coverage and purity.  Degree-0 homogeneous in the
    masses, so it evaluates directly on unnormalised moment sums; its
    mathematical range is ``[-0.25, 0.25]``.
    """

    kind = "wracc"
    bounds = (-0.25, 0.25)

    def value_from_moments(self, tp, predicted, actual, total, *,
                           clamp: bool = True):
        tp = np.asarray(tp, dtype=float)
        predicted = np.asarray(predicted, dtype=float)
        actual = np.asarray(actual, dtype=float)
        total = np.asarray(total, dtype=float)
        with np.errstate(invalid="ignore", divide="ignore"):
            value = tp / total - (predicted / total) * (actual / total)
            if clamp:
                value = np.clip(value, *self.bounds)
            return np.where(total > 0, value, np.nan)

    def value_from_sums(self, tp: float, predicted: float, actual: float,
                        total: float, *, clamp: bool = True) -> float:
        if not total > 0:
            return float("nan")
        value = tp / total - (predicted / total) * (actual / total)
        if value != value:
            return value
        if clamp:
            low, high = self.bounds
            return max(low, min(high, value))
        return value

    def moment_gradient(self, tp, predicted, actual, total) -> np.ndarray:
        tp, predicted, actual, total = (
            float(tp), float(predicted), float(actual), float(total)
        )
        if total <= 0:
            return np.full(4, np.nan)
        return np.array(
            [
                1.0 / total,
                -actual / total**2,
                -predicted / total**2,
                -tp / total**2 + 2.0 * predicted * actual / total**3,
            ]
        )


#: Registry of named measure kinds (the sweep/CLI/service vocabulary).
MEASURE_KINDS = {
    "fmeasure": FMeasure,
    "precision": Precision,
    "recall": Recall,
    "accuracy": Accuracy,
    "specificity": Specificity,
    "balanced_accuracy": BalancedAccuracy,
    "wracc": WeightedRelativeAccuracy,
}


def measure_from_spec(spec) -> RatioMeasure:
    """Build a measure from a spec: an instance, a kind name, or a dict.

    Dicts are the JSON form produced by :meth:`RatioMeasure.spec`:
    ``{"kind": "fmeasure", "alpha": 0.25}``.  Strings name a kind with
    default parameters.
    """
    if isinstance(spec, RatioMeasure):
        return spec
    if isinstance(spec, str):
        if spec not in MEASURE_KINDS:
            raise ValueError(
                f"unknown measure kind {spec!r}; choose from "
                f"{sorted(MEASURE_KINDS)}"
            )
        return MEASURE_KINDS[spec]()
    if isinstance(spec, dict):
        payload = dict(spec)
        kind = payload.pop("kind", None)
        if kind == "linear":
            return LinearRatioMeasure(**payload)
        if kind not in MEASURE_KINDS:
            raise ValueError(
                f"unknown measure kind {kind!r}; choose from "
                f"{sorted(MEASURE_KINDS)} (or 'linear')"
            )
        return MEASURE_KINDS[kind](**payload)
    raise TypeError(
        f"cannot build a measure from {type(spec).__name__}; pass a "
        "RatioMeasure, a kind name or a spec dict"
    )


def resolve_measure(measure=None, alpha=None, *,
                    default_alpha: float = 0.5) -> RatioMeasure:
    """Resolve the ``(measure=, alpha=)`` pair every entry point accepts.

    ``alpha`` is the historical F-measure-only parametrisation, kept as
    a shim: passing it builds ``FMeasure(alpha)``.  Passing both is an
    error — the caller would otherwise silently target two different
    measures.
    """
    if measure is not None and alpha is not None:
        raise ValueError(
            "pass either measure= or the deprecated alpha=, not both"
        )
    if measure is not None:
        return measure_from_spec(measure)
    return FMeasure(default_alpha if alpha is None else alpha)
