"""Confusion-matrix counting for pairwise ER evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_same_length

__all__ = ["ConfusionCounts", "confusion_counts"]


@dataclass(frozen=True)
class ConfusionCounts:
    """True/false positive/negative counts over a labelled sample.

    The counts may be fractional: importance-weighted samples contribute
    their weight rather than 1.
    """

    tp: float
    fp: float
    fn: float
    tn: float

    @property
    def total(self) -> float:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def predicted_positives(self) -> float:
        return self.tp + self.fp

    @property
    def actual_positives(self) -> float:
        return self.tp + self.fn

    def __add__(self, other: "ConfusionCounts") -> "ConfusionCounts":
        return ConfusionCounts(
            tp=self.tp + other.tp,
            fp=self.fp + other.fp,
            fn=self.fn + other.fn,
            tn=self.tn + other.tn,
        )


def confusion_counts(true_labels, pred_labels, weights=None) -> ConfusionCounts:
    """Count (optionally weighted) TP/FP/FN/TN.

    Parameters
    ----------
    true_labels, pred_labels:
        Binary arrays: oracle labels ``l`` and predictions ``l-hat``.
    weights:
        Optional importance weights; defaults to 1 per item.
    """
    true_labels = np.asarray(true_labels, dtype=float)
    pred_labels = np.asarray(pred_labels, dtype=float)
    check_same_length(true_labels, pred_labels, names=["true_labels", "pred_labels"])
    if weights is None:
        weights = np.ones_like(true_labels)
    else:
        weights = np.asarray(weights, dtype=float)
        check_same_length(true_labels, weights, names=["true_labels", "weights"])

    tp = float(np.sum(weights * true_labels * pred_labels))
    fp = float(np.sum(weights * (1.0 - true_labels) * pred_labels))
    fn = float(np.sum(weights * true_labels * (1.0 - pred_labels)))
    tn = float(np.sum(weights * (1.0 - true_labels) * (1.0 - pred_labels)))
    return ConfusionCounts(tp=tp, fp=fp, fn=fn, tn=tn)
