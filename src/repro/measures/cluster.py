"""Cluster-based ER evaluation measures (paper Remark 2, ref [19]).

Pairwise measures degrade when entities have many records each; the
paper points to cluster-based measures (Menestrina et al.) for that
regime.  These utilities convert a predicted pairwise relation into
entity clusters via transitive closure and compute the standard
cluster-level measures: exact cluster precision/recall/F and the
K-measure's merge/split distance.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = [
    "clusters_from_pairs",
    "cluster_precision_recall",
    "merge_distance",
    "pairs_from_clusters",
]


class _UnionFind:
    """Path-compressed union-find over arbitrary hashable items."""

    def __init__(self):
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b):
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def clusters_from_pairs(pairs, labels, n_records: int) -> list[set]:
    """Entity clusters as the transitive closure of matching pairs.

    Parameters
    ----------
    pairs:
        (n, 2) array of record-index pairs (single-source indexing).
    labels:
        Binary array: 1 where the pair is declared a match.
    n_records:
        Total number of records; unmatched records become singletons.

    Returns
    -------
    List of clusters (sets of record indices) covering all records.
    """
    pairs = np.asarray(pairs)
    labels = np.asarray(labels)
    if len(pairs) != len(labels):
        raise ValueError("pairs and labels must have equal length")
    uf = _UnionFind()
    for i in range(n_records):
        uf.find(i)
    for (a, b), label in zip(pairs, labels):
        if label:
            uf.union(int(a), int(b))
    groups = defaultdict(set)
    for i in range(n_records):
        groups[uf.find(i)].add(i)
    return list(groups.values())


def pairs_from_clusters(clusters) -> set:
    """All unordered intra-cluster record pairs implied by a clustering."""
    out = set()
    for cluster in clusters:
        members = sorted(cluster)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                out.add((a, b))
    return out


def cluster_precision_recall(predicted_clusters, true_clusters) -> dict:
    """Exact-match cluster precision/recall/F (Menestrina et al.).

    A predicted cluster counts as correct only if it exactly equals a
    true cluster.  Harsh but standard; singletons count too.
    """
    predicted = {frozenset(c) for c in predicted_clusters}
    truth = {frozenset(c) for c in true_clusters}
    if not predicted or not truth:
        raise ValueError("clusterings must be non-empty")
    correct = len(predicted & truth)
    precision = correct / len(predicted)
    recall = correct / len(truth)
    if precision + recall == 0:
        f_measure = 0.0
    else:
        f_measure = 2 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f_measure": f_measure}


def merge_distance(predicted_clusters, true_clusters) -> int:
    """Minimum merge+split operations turning predicted into truth.

    The basic slice of the generalised merge distance of Menestrina et
    al.: each split of a cluster into two parts and each merge of two
    clusters costs 1.  Computed by the standard linear-time algorithm:
    for every predicted cluster, count the distinct true clusters it
    straddles (splits needed), then count the merges to reassemble.
    """
    record_to_truth: dict = {}
    for truth_index, cluster in enumerate(true_clusters):
        for record in cluster:
            if record in record_to_truth:
                raise ValueError(f"record {record} appears in two true clusters")
            record_to_truth[record] = truth_index

    splits = 0
    # After all splits, fragments are maximal (predicted ∩ truth) parts;
    # count how many fragments each true cluster must merge.
    fragments_per_truth = defaultdict(int)
    for cluster in predicted_clusters:
        touched = set()
        for record in cluster:
            if record not in record_to_truth:
                raise ValueError(f"record {record} missing from true clustering")
            touched.add(record_to_truth[record])
        splits += len(touched) - 1
        for truth_index in touched:
            fragments_per_truth[truth_index] += 1

    merges = sum(count - 1 for count in fragments_per_truth.values())
    return splits + merges
