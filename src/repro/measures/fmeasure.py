"""The pairwise F-measure family (paper Eqn 1).

The alpha-parametrisation weights precision against recall:

    F_alpha = TP / (alpha * (TP + FP) + (1 - alpha) * (TP + FN))

with ``alpha = 1`` giving precision, ``alpha = 0`` recall and
``alpha = 1/2`` the balanced F-measure.  The conventional
beta-parametrisation relates via ``alpha = 1 / (1 + beta^2)``
(paper footnote 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.measures.confusion import ConfusionCounts, confusion_counts
from repro.utils import check_in_range

__all__ = [
    "alpha_from_beta",
    "beta_from_alpha",
    "f_measure",
    "f_measure_from_counts",
    "precision",
    "recall",
    "pool_performance",
]


def alpha_from_beta(beta: float) -> float:
    """Convert an F_beta weight into the paper's alpha weight."""
    if beta < 0:
        raise ValueError(f"beta must be non-negative, got {beta}")
    return 1.0 / (1.0 + beta**2)


def beta_from_alpha(alpha: float) -> float:
    """Convert an alpha weight into the conventional beta weight."""
    check_in_range(alpha, 0.0, 1.0, "alpha", low_open=True)
    return math.sqrt(1.0 / alpha - 1.0)


def f_measure_from_counts(counts: ConfusionCounts, alpha: float = 0.5) -> float:
    """Evaluate F_alpha from confusion counts.

    Returns ``nan`` when the denominator is zero, i.e. before any
    predicted or actual positive has been observed — the "undefined
    estimate" regime of passive sampling (paper section 6.3.1).
    """
    check_in_range(alpha, 0.0, 1.0, "alpha")
    den = alpha * counts.predicted_positives + (1.0 - alpha) * counts.actual_positives
    if den <= 0:
        return float("nan")
    return counts.tp / den


def f_measure(true_labels, pred_labels, alpha: float = 0.5, weights=None) -> float:
    """F_alpha of predictions against true labels (optionally weighted)."""
    counts = confusion_counts(true_labels, pred_labels, weights=weights)
    return f_measure_from_counts(counts, alpha=alpha)


def precision(true_labels, pred_labels, weights=None) -> float:
    """Precision = F_1 in the alpha-parametrisation."""
    return f_measure(true_labels, pred_labels, alpha=1.0, weights=weights)


def recall(true_labels, pred_labels, weights=None) -> float:
    """Recall = F_0 in the alpha-parametrisation."""
    return f_measure(true_labels, pred_labels, alpha=0.0, weights=weights)


def pool_performance(true_labels, pred_labels, alpha: float = 0.5) -> dict:
    """Exhaustive ground-truth performance of a predicted ER on a pool.

    This is the quantity every sampler is trying to estimate with fewer
    labels (the "true" columns of paper Table 2).

    Returns a dict with every ratio measure of
    :data:`repro.measures.ratio.MEASURE_KINDS` — precision, recall,
    F_alpha, accuracy, specificity, balanced accuracy and weighted
    relative accuracy — all evaluated from one confusion-count pass,
    plus the counts themselves.
    """
    from repro.measures.ratio import MEASURE_KINDS, FMeasure

    true_labels = np.asarray(true_labels, dtype=float)
    pred_labels = np.asarray(pred_labels, dtype=float)
    counts = confusion_counts(true_labels, pred_labels)
    out = {
        "precision": f_measure_from_counts(counts, alpha=1.0),
        "recall": f_measure_from_counts(counts, alpha=0.0),
        "f_measure": f_measure_from_counts(counts, alpha=alpha),
        "alpha": alpha,
        "counts": counts,
    }
    for kind, cls in MEASURE_KINDS.items():
        if cls is FMeasure:
            continue  # parametrised; covered by f_measure/precision/recall
        if kind in out:
            continue
        out[kind] = cls().value_from_counts(counts)
    return out
