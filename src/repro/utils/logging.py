"""Structured logging: one event per line, JSON or key=value text.

The service tier logs *events*, not prose: every line carries a
timestamp, level, component and event name plus whatever structured
fields the call site attaches (``session``, ``shard``, ``request_id``,
durations, counts).  JSON format emits one object per line — machine-
parseable for log shippers; text format renders the same fields as
``key=value`` pairs for humans.

The module is process-global (``configure_logging``), matching how the
CLI wires it: ``serve --log-format json --log-level debug`` configures
the router process, and shard workers receive the same settings through
their options dict.  Libraries default to ``warning`` so importing the
service layer never spams a notebook; the serve entry points raise the
level to ``info``.

Request ids propagate through a :class:`contextvars.ContextVar`: the
HTTP handler binds the id for the duration of a request and every log
event on that (thread's) context picks it up automatically — no
threading of ``request_id`` arguments through the call stack.
"""

from __future__ import annotations

import contextvars
import json
import sys
import threading
import time

__all__ = [
    "LOG_LEVELS",
    "configure_logging",
    "logging_config",
    "get_logger",
    "StructuredLogger",
    "bind_request_id",
    "current_request_id",
]

LOG_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None)

_config_lock = threading.Lock()
_config = {"format": "text", "level": LOG_LEVELS["warning"], "stream": None}

_UNSET = object()


def configure_logging(log_format: str | None = None,
                      log_level: str | None = None, *,
                      stream=_UNSET) -> None:
    """Set the process-wide log format/level (``None`` leaves as-is).

    ``log_format`` is ``"json"`` or ``"text"``; ``log_level`` one of
    :data:`LOG_LEVELS`.  ``stream`` overrides the output stream;
    passing ``None`` explicitly restores the default (``sys.stderr``
    resolved at emit time, so pytest capture works).
    """
    with _config_lock:
        if log_format is not None:
            if log_format not in ("json", "text"):
                raise ValueError(
                    f"log format must be 'json' or 'text'; got "
                    f"{log_format!r}")
            _config["format"] = log_format
        if log_level is not None:
            if log_level not in LOG_LEVELS:
                raise ValueError(
                    f"log level must be one of {sorted(LOG_LEVELS)}; got "
                    f"{log_level!r}")
            _config["level"] = LOG_LEVELS[log_level]
        if stream is not _UNSET:
            _config["stream"] = stream


def logging_config() -> dict:
    """The current global configuration (for tests and introspection)."""
    with _config_lock:
        level_name = next(name for name, value in LOG_LEVELS.items()
                          if value == _config["level"])
        return {"format": _config["format"], "level": level_name}


def bind_request_id(request_id: str | None):
    """Bind the context's request id; returns a token for ``reset``."""
    return _request_id.set(request_id)


def current_request_id() -> str | None:
    return _request_id.get()


def _timestamp() -> str:
    now = time.time()
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(now))
    return f"{base}.{int((now % 1) * 1000):03d}Z"


def _render_text(payload: dict) -> str:
    head = (f"{payload['ts']} {payload['level'].upper():<7} "
            f"{payload['component']} {payload['event']}")
    fields = []
    for key, value in payload.items():
        if key in ("ts", "level", "component", "event"):
            continue
        if isinstance(value, float):
            value = f"{value:.6g}"
        fields.append(f"{key}={value}")
    return head + (" " + " ".join(fields) if fields else "")


class StructuredLogger:
    """A component-bound emitter of structured log events.

    ``bound`` fields (e.g. ``shard=3``) ride on every event; per-call
    fields override them.  The active request id joins automatically.
    """

    def __init__(self, component: str, bound: dict | None = None):
        self.component = component
        self.bound = dict(bound or {})

    def bind(self, **fields) -> "StructuredLogger":
        return StructuredLogger(self.component, {**self.bound, **fields})

    def _emit(self, level: str, event: str, fields: dict) -> None:
        with _config_lock:
            if LOG_LEVELS[level] < _config["level"]:
                return
            log_format = _config["format"]
            stream = _config["stream"]
        payload = {
            "ts": _timestamp(),
            "level": level,
            "component": self.component,
            "event": event,
        }
        request_id = _request_id.get()
        if request_id is not None:
            payload["request_id"] = request_id
        for source in (self.bound, fields):
            for key, value in source.items():
                if value is not None:
                    payload[key] = value
        if log_format == "json":
            line = json.dumps(payload, default=str)
        else:
            line = _render_text(payload)
        target = stream if stream is not None else sys.stderr
        try:
            print(line, file=target, flush=True)
        except (OSError, ValueError):  # closed stream during shutdown
            pass

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)


def get_logger(component: str, **bound) -> StructuredLogger:
    """A logger for one component (``http``, ``router``, ``shard``, …)."""
    return StructuredLogger(component, bound)
