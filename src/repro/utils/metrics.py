"""Dependency-free metrics: counters, gauges, histograms, Prometheus text.

The service tier needs operator eyes — per-session draw counts, WAL
fsync latency, queue depths, CI widths — without pulling in a client
library the container does not have.  This module is the whole stack:

* :class:`MetricsRegistry` — a thread-safe family registry.  Counters
  only go up, gauges are set, histograms observe into **fixed
  log-spaced buckets** (no dynamic resizing, so merging two histograms
  is elementwise addition).
* ``snapshot()`` / :func:`merge_snapshots` — a registry serialises to a
  plain-JSON dict, so shard workers ship their metrics to the router
  over the existing length-prefixed RPC and the router folds them into
  one exposition.
* :class:`CounterResetAccumulator` — worker restarts reset in-process
  counters to zero; the accumulator keys each source snapshot by the
  registry's ``instance`` id and carries the last value of a dead
  instance forward, so the merged totals never dip and never
  double-count.
* :func:`render_prometheus` / :func:`parse_prometheus_text` — the
  `text exposition format`__ rendered and (minimally) parsed by hand.

__ https://prometheus.io/docs/instrumenting/exposition_formats/

``NULL_REGISTRY`` is a shared disabled registry: every instrument call
is a no-op, which is what lets the observability overhead be measured
honestly (``benchmarks/test_service_throughput.py``) and lets bare
library users opt out entirely.
"""

from __future__ import annotations

import json
import math
import threading
import uuid

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "CounterResetAccumulator",
    "log_spaced_buckets",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "merge_snapshots",
    "add_snapshot_label",
    "render_prometheus",
    "parse_prometheus_text",
    "PROMETHEUS_CONTENT_TYPE",
]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_TYPES = ("counter", "gauge", "histogram")


def log_spaced_buckets(minimum: float, maximum: float,
                       per_decade: int = 2) -> tuple:
    """Fixed log-spaced bucket edges covering [minimum, maximum].

    ``per_decade`` edges per power of ten; the implicit +Inf bucket is
    appended by the histogram itself.  Fixed edges are the point: two
    histograms with the same family name always merge bucket-by-bucket.
    """
    if not (0 < minimum < maximum):
        raise ValueError(
            f"need 0 < minimum < maximum; got {minimum}, {maximum}")
    start = math.floor(math.log10(minimum) * per_decade)
    stop = math.ceil(math.log10(maximum) * per_decade)
    return tuple(10.0 ** (k / per_decade) for k in range(start, stop + 1))


#: Default latency buckets: 10 µs to 10 s, half-decade spacing.
LATENCY_BUCKETS = log_spaced_buckets(1e-5, 10.0)

#: Power-of-two size buckets (batch sizes, event counts): 1 .. 1024.
SIZE_BUCKETS = tuple(float(2 ** k) for k in range(11))


def _check_labels(labelnames, labels: dict, family: str) -> tuple:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"metric {family} takes labels {tuple(labelnames)}; "
            f"got {tuple(sorted(labels))}")
    return tuple(str(labels[name]) for name in labelnames)


class _Counter:
    """A monotonically increasing sum, per label combination."""

    kind = "counter"

    def __init__(self, registry, name, help_text, labelnames):
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        key = _check_labels(self.labelnames, labels, self.name)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = _check_labels(self.labelnames, labels, self.name)
        with self._registry._lock:
            return self._values.get(key, 0.0)

    def _samples(self):
        return [[list(key), value] for key, value in self._values.items()]


class _Gauge(_Counter):
    """A value that can go anywhere, per label combination."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = _check_labels(self.labelnames, labels, self.name)
        with self._registry._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _check_labels(self.labelnames, labels, self.name)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount


class _Histogram:
    """Observations into fixed buckets, plus running sum and count.

    Bucket counts are stored per-bucket (not cumulative); rendering
    produces the cumulative ``le`` series Prometheus expects.  The
    final slot counts observations above the last edge (+Inf).
    """

    kind = "histogram"

    def __init__(self, registry, name, help_text, labelnames, buckets):
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        edges = tuple(float(edge) for edge in (buckets or LATENCY_BUCKETS))
        if list(edges) != sorted(set(edges)):
            raise ValueError(
                f"histogram {name} bucket edges must be strictly "
                f"increasing; got {edges}")
        self.buckets = edges
        self._values: dict[tuple, dict] = {}

    def observe(self, value: float, **labels) -> None:
        key = _check_labels(self.labelnames, labels, self.name)
        value = float(value)
        slot = len(self.buckets)  # +Inf by default
        for index, edge in enumerate(self.buckets):
            if value <= edge:
                slot = index
                break
        with self._registry._lock:
            state = self._values.get(key)
            if state is None:
                state = self._values[key] = {
                    "count": 0, "sum": 0.0,
                    "buckets": [0] * (len(self.buckets) + 1),
                }
            state["count"] += 1
            state["sum"] += value
            state["buckets"][slot] += 1

    def value(self, **labels) -> dict:
        key = _check_labels(self.labelnames, labels, self.name)
        with self._registry._lock:
            state = self._values.get(key)
            return json.loads(json.dumps(state)) if state else {
                "count": 0, "sum": 0.0,
                "buckets": [0] * (len(self.buckets) + 1),
            }

    def _samples(self):
        return [
            [list(key), {"count": state["count"], "sum": state["sum"],
                         "buckets": list(state["buckets"])}]
            for key, state in self._values.items()
        ]


class _NullInstrument:
    """Accepts every instrument call and does nothing."""

    def inc(self, *args, **kwargs):
        pass

    def set(self, *args, **kwargs):
        pass

    def observe(self, *args, **kwargs):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Thread-safe registry of metric families.

    Families are created on first use and returned on later calls with
    the same name; re-declaring a name as a different type (or with
    different labels/buckets) raises, because the merged exposition
    could not be rendered coherently.

    ``instance`` is a random id minted at construction: it travels in
    every snapshot so a downstream :class:`CounterResetAccumulator`
    can tell "this worker restarted" (new instance, counters reset)
    from "this counter went down" (a bug).
    """

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self.instance = uuid.uuid4().hex[:12]
        self._lock = threading.RLock()
        self._families: dict[str, object] = {}

    def _family(self, factory, name, help_text, labelnames, **extra):
        if not self.enabled:
            return _NULL_INSTRUMENT
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, factory) or tuple(
                        labelnames) != existing.labelnames:
                    raise ValueError(
                        f"metric {name} already registered with a "
                        "different type or label set")
                return existing
            family = factory(self, name, help_text, labelnames, **extra)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames=()) -> _Counter:
        return self._family(_Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames=()) -> _Gauge:
        return self._family(_Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "", labelnames=(),
                  buckets=None) -> _Histogram:
        return self._family(_Histogram, name, help_text, labelnames,
                            buckets=buckets)

    def snapshot(self) -> dict:
        """A JSON-safe copy of every family (ships over the shard RPC)."""
        with self._lock:
            families = {}
            for name, family in self._families.items():
                entry = {
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": list(family.labelnames),
                    "samples": family._samples(),
                }
                if family.kind == "histogram":
                    entry["buckets"] = list(family.buckets)
                families[name] = entry
            return {"instance": self.instance, "families": families}

    def render(self, extra_snapshots=()) -> str:
        """Prometheus text of this registry merged with extra snapshots."""
        return render_prometheus(
            merge_snapshots([self.snapshot(), *extra_snapshots]))


#: Shared disabled registry — every instrument call is a no-op.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# -- snapshot algebra ------------------------------------------------------

def add_snapshot_label(snapshot: dict, name: str, value: str) -> dict:
    """A copy of ``snapshot`` with one label prepended to every sample.

    The router uses this to stamp each shard's metrics with
    ``shard="k"`` before merging, so per-shard series stay distinct.
    """
    out = {"instance": snapshot.get("instance"), "families": {}}
    for family_name, family in snapshot.get("families", {}).items():
        entry = dict(family)
        entry["labelnames"] = [name, *family.get("labelnames", [])]
        entry["samples"] = [
            [[str(value), *key], sample_value]
            for key, sample_value in family.get("samples", [])
        ]
        out["families"][family_name] = entry
    return out


def _merge_sample(kind: str, existing, incoming):
    if kind == "gauge":
        return incoming
    if kind == "histogram":
        if len(existing["buckets"]) != len(incoming["buckets"]):
            raise ValueError("histogram bucket layouts disagree")
        return {
            "count": existing["count"] + incoming["count"],
            "sum": existing["sum"] + incoming["sum"],
            "buckets": [a + b for a, b in zip(existing["buckets"],
                                              incoming["buckets"])],
        }
    return existing + incoming


def merge_snapshots(snapshots) -> dict:
    """Fold snapshots into one: counters/histograms add, gauges last-win.

    Families sharing a name must agree on type, label names and (for
    histograms) bucket edges — guaranteed when every producer creates
    them through the same instrumented code path.
    """
    merged: dict = {"instance": None, "families": {}}
    for snapshot in snapshots:
        for name, family in snapshot.get("families", {}).items():
            target = merged["families"].get(name)
            if target is None:
                target = merged["families"][name] = {
                    "type": family["type"],
                    "help": family.get("help", ""),
                    "labelnames": list(family.get("labelnames", [])),
                    "samples": [],
                }
                if family["type"] == "histogram":
                    target["buckets"] = list(family.get("buckets", []))
                index: dict = {}
                target["_index"] = index
            else:
                if target["type"] != family["type"] or target[
                        "labelnames"] != list(family.get("labelnames", [])):
                    raise ValueError(
                        f"cannot merge metric {name}: type or label "
                        "sets disagree across sources")
                index = target["_index"]
            for key, value in family.get("samples", []):
                tkey = tuple(key)
                position = index.get(tkey)
                if position is None:
                    index[tkey] = len(target["samples"])
                    target["samples"].append([list(key), value])
                else:
                    target["samples"][position][1] = _merge_sample(
                        family["type"], target["samples"][position][1], value)
    for family in merged["families"].values():
        family.pop("_index", None)
    return merged


class CounterResetAccumulator:
    """Restart-proof accumulation of counter-style snapshots.

    ``adjust(source, snapshot)`` returns a copy of ``snapshot`` whose
    counters (and histogram count/sum/buckets) are offset by the final
    values of every previous *instance* seen under the same source.
    When a worker restarts, its registry is reborn with a fresh
    ``instance`` id and zeroed counters; the accumulator detects the id
    change and adds the dead instance's last-seen values to the carry,
    so the merged series never loses what the old worker already
    counted and never counts it twice.  Within one instance the
    last-seen value is monotonic (``max``), keeping concurrent,
    possibly out-of-order scrapes monotonic too.
    """

    def __init__(self):
        self._lock = threading.Lock()
        # source -> {"instance": str, "last": {(family, key): value},
        #            "carry": {(family, key): value},
        #            "families": {name: metadata}}
        # ``families`` remembers each family's type/labels/buckets so a
        # family the restarted worker has not re-registered yet (e.g.
        # per-session counters before any session is resident again)
        # can still be rendered from the bank.
        self._sources: dict[str, dict] = {}

    @staticmethod
    def _zero_like(value):
        if isinstance(value, dict):
            return {"count": 0, "sum": 0.0,
                    "buckets": [0] * len(value["buckets"])}
        return 0.0

    @staticmethod
    def _add(a, b):
        if isinstance(b, dict):
            return {
                "count": a["count"] + b["count"],
                "sum": a["sum"] + b["sum"],
                "buckets": [x + y for x, y in zip(a["buckets"],
                                                  b["buckets"])],
            }
        return a + b

    @staticmethod
    def _max(a, b):
        if isinstance(b, dict):
            return b if b["count"] >= a["count"] else a
        return max(a, b)

    def adjust(self, source: str, snapshot: dict) -> dict:
        instance = snapshot.get("instance")
        with self._lock:
            state = self._sources.setdefault(
                source, {"instance": instance, "last": {}, "carry": {},
                         "families": {}})
            if state["instance"] != instance:
                # The source restarted: bank everything its previous
                # incarnation had counted, then start tracking fresh.
                for key, value in state["last"].items():
                    carry = state["carry"].get(key, self._zero_like(value))
                    state["carry"][key] = self._add(carry, value)
                state["last"] = {}
                state["instance"] = instance
            out = {"instance": instance, "families": {}}
            for name, family in snapshot.get("families", {}).items():
                entry = dict(family)
                if family["type"] != "gauge":
                    state["families"][name] = {
                        key: value for key, value in family.items()
                        if key != "samples"
                    }
                if family["type"] == "gauge":
                    entry["samples"] = [
                        [list(key), value]
                        for key, value in family.get("samples", [])
                    ]
                    out["families"][name] = entry
                    continue
                samples = []
                seen = set()
                for key, value in family.get("samples", []):
                    skey = (name, tuple(key))
                    seen.add(skey)
                    previous = state["last"].get(
                        skey, self._zero_like(value))
                    state["last"][skey] = self._max(previous, value)
                    carry = state["carry"].get(skey)
                    adjusted = state["last"][skey]
                    if carry is not None:
                        adjusted = self._add(carry, adjusted)
                    samples.append([list(key), adjusted])
                # Series the live snapshot no longer reports (it
                # restarted before re-touching them) still render from
                # carry + last, so nothing observed ever disappears.
                for (fname, key), value in list(state["last"].items()):
                    if fname != name or (fname, key) in seen:
                        continue
                    carry = state["carry"].get((fname, key))
                    adjusted = value if carry is None else self._add(
                        carry, value)
                    samples.append([list(key), adjusted])
                for (fname, key), value in state["carry"].items():
                    if fname != name or (fname, key) in seen or (
                            fname, key) in state["last"]:
                        continue
                    samples.append([list(key), value])
                entry["samples"] = samples
                out["families"][name] = entry
            # Families the live snapshot does not declare at all (the
            # restarted worker has not re-registered them yet) render
            # from the bank under their remembered metadata.
            for name, metadata in state["families"].items():
                if name in out["families"]:
                    continue
                samples = []
                for (fname, key), value in state["last"].items():
                    if fname != name:
                        continue
                    carry = state["carry"].get((fname, key))
                    samples.append([list(key), value if carry is None
                                    else self._add(carry, value)])
                for (fname, key), value in state["carry"].items():
                    if fname != name or (fname, key) in state["last"]:
                        continue
                    samples.append([list(key), value])
                if samples:
                    out["families"][name] = {**metadata, "samples": samples}
            return out


# -- text exposition -------------------------------------------------------

def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    # repr gives the shortest string that round-trips the float, which
    # keeps ``le`` labels stable and readable (1e-05, not 17 digits).
    return repr(value) if isinstance(value, float) else str(value)


def _label_text(labelnames, key, extra=None) -> str:
    pairs = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, key)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: dict) -> str:
    """Render one (merged) snapshot in the text exposition format."""
    lines = []
    for name in sorted(snapshot.get("families", {})):
        family = snapshot["families"][name]
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} "
                         f"{help_text.replace(chr(10), ' ')}")
        lines.append(f"# TYPE {name} {family['type']}")
        labelnames = family.get("labelnames", [])
        samples = sorted(family.get("samples", []), key=lambda s: s[0])
        if family["type"] != "histogram":
            for key, value in samples:
                lines.append(
                    f"{name}{_label_text(labelnames, key)} "
                    f"{_format_value(value)}")
            continue
        edges = family.get("buckets", [])
        for key, state in samples:
            cumulative = 0
            for edge, count in zip(edges, state["buckets"]):
                cumulative += count
                le = 'le="' + _format_value(float(edge)) + '"'
                labels = _label_text(labelnames, key, le)
                lines.append(f"{name}_bucket{labels} {cumulative}")
            cumulative += state["buckets"][len(edges)]
            labels = _label_text(labelnames, key, 'le="+Inf"')
            lines.append(f"{name}_bucket{labels} {cumulative}")
            lines.append(f"{name}_sum{_label_text(labelnames, key)} "
                         f"{_format_value(state['sum'])}")
            lines.append(f"{name}_count{_label_text(labelnames, key)} "
                         f"{state['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> dict:
    """Minimal exposition parser (for tests and the CI smoke).

    Returns ``{family: {"type": ..., "samples": {(metric, labels): value}}}``
    where ``labels`` is a tuple of sorted ``(name, value)`` pairs and
    ``metric`` the full sample name (``family``, ``family_bucket``, …).
    Raises ``ValueError`` on anything that is not valid exposition
    text, which is exactly what the CI scrape assertion needs.
    """
    families: dict[str, dict] = {}
    types: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in _METRIC_TYPES:
                raise ValueError(f"unknown metric type {kind!r}: {raw!r}")
            types[name] = kind
            families.setdefault(name, {"type": kind, "samples": {}})
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            metric, _, rest = line.partition("{")
            labels_text, closed, value_text = rest.partition("}")
            if not closed or not value_text.strip():
                raise ValueError(f"malformed sample line: {raw!r}")
            labels = []
            for item in filter(None, labels_text.split(",")):
                lname, eq, lvalue = item.partition("=")
                if not eq or not (lvalue.startswith('"')
                                  and lvalue.endswith('"')):
                    raise ValueError(f"malformed label in: {raw!r}")
                labels.append((lname.strip(), lvalue[1:-1]))
            value_text = value_text.strip()
        else:
            metric, _, value_text = line.partition(" ")
            labels = []
            value_text = value_text.strip()
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(f"non-numeric sample value in: {raw!r}") from exc
        family = metric
        for suffix in ("_bucket", "_sum", "_count"):
            base = metric[: -len(suffix)] if metric.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        entry = families.setdefault(
            family, {"type": types.get(family, "untyped"), "samples": {}})
        entry["samples"][(metric, tuple(sorted(labels)))] = value
    return families
