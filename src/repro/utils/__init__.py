"""Shared utilities: RNG handling, numeric transforms, validation."""

from repro.utils.random import ensure_rng, spawn_rngs, spawn_seed_sequences
from repro.utils.transforms import expit, logit, normalise, safe_divide
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability_vector,
    check_same_length,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "expit",
    "logit",
    "normalise",
    "safe_divide",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "check_same_length",
]
