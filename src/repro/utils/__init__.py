"""Shared utilities: RNG handling, numeric transforms, validation, IO."""

from repro.utils.integrity import crc32c, file_digest
from repro.utils.logging import (
    StructuredLogger,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
)
from repro.utils.metrics import (
    NULL_REGISTRY,
    CounterResetAccumulator,
    MetricsRegistry,
    add_snapshot_label,
    merge_snapshots,
    parse_prometheus_text,
    render_prometheus,
)
from repro.utils.io import (
    CorruptStateError,
    atomic_write_bytes,
    atomic_write_text,
    fsync_directory,
)
from repro.utils.memory import (
    PeakRssTracker,
    current_rss_bytes,
    peak_rss_high_water_bytes,
    rss_supported,
)
from repro.utils.random import (
    ensure_rng,
    rng_from_state_dict,
    rng_state_dict,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.utils.transforms import expit, logit, normalise, safe_divide
from repro.utils.validation import (
    check_count,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_same_length,
)

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "CorruptStateError",
    "crc32c",
    "file_digest",
    "StructuredLogger",
    "bind_request_id",
    "configure_logging",
    "current_request_id",
    "get_logger",
    "NULL_REGISTRY",
    "CounterResetAccumulator",
    "MetricsRegistry",
    "add_snapshot_label",
    "merge_snapshots",
    "parse_prometheus_text",
    "render_prometheus",
    "PeakRssTracker",
    "current_rss_bytes",
    "peak_rss_high_water_bytes",
    "rss_supported",
    "ensure_rng",
    "rng_state_dict",
    "rng_from_state_dict",
    "spawn_rngs",
    "spawn_seed_sequences",
    "expit",
    "logit",
    "normalise",
    "safe_divide",
    "check_count",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "check_same_length",
]
