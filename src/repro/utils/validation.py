"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_count",
    "check_in_range",
    "check_positive",
    "check_probability_vector",
    "check_same_length",
]


def check_count(value, name, *, minimum: int = 1) -> int:
    """Validate an integral count ``>= minimum`` and return it as ``int``.

    The shared validator for every ``batch_size`` / ``budget`` /
    ``n_repeats`` / ``n_workers`` style argument — samplers, the trial
    runner, the CLI and the serving layer all funnel through it, so the
    accepted values and the error message cannot drift between layers.
    Accepts Python and NumPy integers (and floats with an exact
    integral value, which argparse and JSON payloads may produce).
    """
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer >= {minimum}; got {value!r}")
    if isinstance(value, float) or isinstance(value, np.floating):
        if not float(value).is_integer():
            raise ValueError(
                f"{name} must be an integer >= {minimum}; got {value!r}"
            )
        value = int(value)
    if not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer >= {minimum}; got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}; got {value}")
    return value


def check_in_range(value, low, high, name, *, low_open=False, high_open=False):
    """Validate ``low (<|<=) value (<|<=) high`` and return ``value``.

    ``low_open``/``high_open`` make the corresponding bound strict.
    """
    value = float(value)
    low_ok = value > low if low_open else value >= low
    high_ok = value < high if high_open else value <= high
    if not (low_ok and high_ok):
        left = "(" if low_open else "["
        right = ")" if high_open else "]"
        raise ValueError(f"{name} must be in {left}{low}, {high}{right}; got {value}")
    return value


def check_positive(value, name, *, allow_zero=False):
    """Validate that ``value`` is positive (or non-negative)."""
    value = float(value)
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be non-negative; got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be positive; got {value}")
    return value


def check_probability_vector(p, name="p", *, atol=1e-8):
    """Validate that ``p`` is a 1-D probability vector and return it."""
    p = np.asarray(p, dtype=float)
    if p.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional; got shape {p.shape}")
    if np.any(p < -atol):
        raise ValueError(f"{name} must be non-negative")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"{name} must sum to 1; sums to {total}")
    return np.clip(p, 0.0, None)


def check_same_length(*arrays, names=None):
    """Validate that all arrays share their first dimension length."""
    lengths = [len(a) for a in arrays]
    if len(set(lengths)) > 1:
        labels = names if names else [f"array{i}" for i in range(len(arrays))]
        detail = ", ".join(f"{n}={l}" for n, l in zip(labels, lengths))
        raise ValueError(f"length mismatch: {detail}")
    return lengths[0] if lengths else 0
