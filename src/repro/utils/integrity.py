"""Checksums for persisted state: CRC32C frames and whole-file digests.

Every byte the service tier persists — WAL event shards, snapshot
manifests, chunked-store columns — is written through the atomic
tmp-fsync-rename idiom, which protects against *torn writes* but says
nothing about what the disk hands back later: bit rot, a filesystem
truncating a file during recovery, an operator-level `dd` accident.
This module supplies the two integrity primitives the storage layers
share:

* :func:`crc32c` — the Castagnoli CRC (the polynomial used by ext4
  metadata, btrfs, iSCSI and most storage systems; it detects all
  1–2-bit errors and all burst errors up to 32 bits).  The WAL wraps
  every shard payload in a CRC32C frame so restore can tell a valid
  record from a damaged one, and a *truncated* record from a
  *bit-flipped* one — the distinction that decides between torn-tail
  recovery and a hard :class:`~repro.utils.io.CorruptStateError`.
* :func:`file_digest` — a whole-file SHA-256, recorded in chunk-store
  manifests next to each chunk name and verified on load.  SHA-256
  rather than a CRC here because chunk files are megabytes (hashlib
  runs at C speed; a pure-Python CRC would not) and the manifest is
  the natural place for a collision-resistant content address.

The CRC implementation needs no native wheel: tiny inputs take a
slice-by-8 table loop (microseconds per frame), and anything from a
kilobyte up switches to a NumPy path that exploits the GF(2)
linearity of the CRC — every byte's contribution to the final
remainder depends only on its value and its distance from the end of
its block, so a whole block folds into one table gather plus an
XOR-reduction, and blocks chain through a precomputed shift-by-block
operator.  That keeps checkpoint-sized payloads at memory-bandwidth
order rather than interpreter speed, which matters because the WAL
checksums every event on the commit path.  An installed native
``crc32c`` module is still used transparently when available.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["crc32c", "file_digest"]

_POLY = 0x82F63B78  # Castagnoli, reflected


def _make_tables() -> list[list[int]]:
    tables = [[0] * 256 for _ in range(8)]
    table0 = tables[0]
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
        table0[byte] = crc
    for byte in range(256):
        crc = table0[byte]
        for slice_ in range(1, 8):
            crc = (crc >> 8) ^ table0[crc & 0xFF]
            tables[slice_][byte] = crc
    return tables


_TABLES = _make_tables()

try:  # pragma: no cover - exercised only where the wheel is installed
    from crc32c import crc32c as _native_crc32c  # type: ignore
except ImportError:
    _native_crc32c = None

# ---------------------------------------------------------------------------
# Vectorised path.  The raw CRC recurrence
#     state' = (state >> 8) ^ T0[(state ^ byte) & 0xFF]
# is affine over GF(2): T0 is a linear table (T0[a ^ b] == T0[a] ^ T0[b]),
# so after a block of B bytes
#     state_after = shift_B(state_before) ^ XOR_i K(B - 1 - i, byte_i)
# where shift_B is the (linear) effect of B zero bytes on the state and
# K(p, b) is the contribution of byte value b sitting p bytes before the
# block's end.  Both are precomputed: K as a (B, 256) gather table indexed
# by position-within-block, shift_B as four 256-entry byte tables.  A block
# then costs one fancy-index gather plus an XOR-reduction — NumPy speed —
# and blocks chain with eight scalar lookups each.

_BLOCK = 1024  # bytes per vectorised block; K table = _BLOCK x 256 x 4 B


def _shift_zero_byte(state: int) -> int:
    """Advance the raw CRC state over one zero byte."""
    return (state >> 8) ^ _TABLES[0][state & 0xFF]


def _make_vector_tables():
    table0 = _TABLES[0]
    # K[i][b]: contribution of byte value b at block offset i (distance
    # _BLOCK-1-i from the block end).  Built back to front: offset
    # _BLOCK-1 is T0 itself, each earlier offset is one zero-shift more.
    gather = np.empty((_BLOCK, 256), dtype=np.uint32)
    row = np.array(table0, dtype=np.uint32)
    gather[_BLOCK - 1] = row
    for offset in range(_BLOCK - 2, -1, -1):
        row = (row >> np.uint32(8)) ^ np.array(table0, dtype=np.uint32)[
            row & np.uint32(0xFF)]
        gather[offset] = row
    # shift_B decomposed into per-byte tables: SH[j][v] is the state v<<8j
    # advanced over _BLOCK zero bytes.
    shift = [[0] * 256 for _ in range(4)]
    for j in range(4):
        for v in range(256):
            state = v << (8 * j)
            for _ in range(_BLOCK):
                state = _shift_zero_byte(state)
            shift[j][v] = state
    return gather, shift


_VECTOR_TABLES = None  # built lazily: ~1 MiB + a few ms, first large input


def _crc_serial(crc: int, view, start: int, length: int) -> int:
    """Slice-by-8 over ``view[start:start + length]`` (raw state in/out)."""
    t0, t1, t2, t3, t4, t5, t6, t7 = _TABLES
    end8 = start + (length - (length % 8))
    end = start + length
    pos = start
    while pos < end8:
        crc ^= view[pos] | (view[pos + 1] << 8) | (view[pos + 2] << 16) | (
            view[pos + 3] << 24)
        crc = (
            t7[crc & 0xFF]
            ^ t6[(crc >> 8) & 0xFF]
            ^ t5[(crc >> 16) & 0xFF]
            ^ t4[(crc >> 24) & 0xFF]
            ^ t3[view[pos + 4]]
            ^ t2[view[pos + 5]]
            ^ t1[view[pos + 6]]
            ^ t0[view[pos + 7]]
        )
        pos += 8
    for index in range(end8, end):
        crc = (crc >> 8) ^ t0[(crc ^ view[index]) & 0xFF]
    return crc


_ARANGE_BLOCK = None


def _crc_vector(crc: int, data) -> int:
    """Raw-state CRC over ``data`` using the block-gather tables."""
    global _VECTOR_TABLES, _ARANGE_BLOCK
    if _VECTOR_TABLES is None:
        _VECTOR_TABLES = _make_vector_tables()
        _ARANGE_BLOCK = np.arange(_BLOCK)
    gather, shift = _VECTOR_TABLES
    sh0, sh1, sh2, sh3 = shift
    length = len(data)
    blocks = length // _BLOCK
    body = np.frombuffer(data, dtype=np.uint8, count=blocks * _BLOCK)
    body = body.reshape(blocks, _BLOCK)
    per_block = np.bitwise_xor.reduce(
        gather[_ARANGE_BLOCK[None, :], body], axis=1)
    for contribution in per_block.tolist():
        crc = (
            sh0[crc & 0xFF]
            ^ sh1[(crc >> 8) & 0xFF]
            ^ sh2[(crc >> 16) & 0xFF]
            ^ sh3[crc >> 24]
        ) ^ contribution
    tail = length - blocks * _BLOCK
    if tail:
        crc = _crc_serial(crc, memoryview(data), blocks * _BLOCK, tail)
    return crc


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC-32C (Castagnoli) of ``data``, seeded with ``value``.

    ``crc32c(b, crc32c(a))`` equals ``crc32c(a + b)``, the usual
    streaming composition.  The check value for ``b"123456789"`` is
    ``0xE3069283``.
    """
    if _native_crc32c is not None:  # pragma: no cover
        return _native_crc32c(data, value)
    crc = (~value) & 0xFFFFFFFF
    if len(data) >= _BLOCK:
        crc = _crc_vector(crc, data)
    else:
        crc = _crc_serial(crc, memoryview(data), 0, len(data))
    return (~crc) & 0xFFFFFFFF


def file_digest(path) -> str:
    """Hex SHA-256 of a file's bytes (streamed; constant memory)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()
