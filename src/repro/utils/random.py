"""Random-number generator handling.

Every stochastic component in the library accepts a ``random_state``
argument which may be ``None``, an integer seed, or a
``numpy.random.Generator``.  Centralising the coercion here keeps every
experiment reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ensure_rng",
    "rng_from_state_dict",
    "rng_state_dict",
    "spawn_rngs",
    "spawn_seed_sequences",
]


def rng_state_dict(rng: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state.

    The returned dict names the bit-generator class and carries its
    exact state words, so :func:`rng_from_state_dict` resumes the
    random stream at precisely the next draw.  All values are plain
    ints / arrays — JSON-safe through the service codec.
    """
    bit_generator = rng.bit_generator
    return {
        "bit_generator": type(bit_generator).__name__,
        "state": bit_generator.state,
    }


def rng_from_state_dict(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`rng_state_dict` snapshot."""
    name = state["bit_generator"]
    cls = getattr(np.random, name, None)
    if cls is None or not isinstance(cls, type) or not issubclass(
        cls, np.random.BitGenerator
    ):
        raise ValueError(f"unknown bit generator {name!r}")
    bit_generator = cls()
    bit_generator.state = state["state"]
    return np.random.Generator(bit_generator)


def ensure_rng(random_state=None) -> np.random.Generator:
    """Coerce ``random_state`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    random_state:
        ``None`` for nondeterministic entropy, an ``int`` seed, a
        ``SeedSequence``, or an existing ``Generator`` (returned
        unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    raise TypeError(
        f"random_state must be None, an int, a SeedSequence, or a numpy "
        f"Generator; got {type(random_state).__name__}"
    )


def spawn_seed_sequences(random_state, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent ``SeedSequence`` children from one source.

    Unlike :func:`spawn_rngs` this returns the seed material itself, not
    generators: a ``SeedSequence`` is cheap to pickle and ship to a
    worker process, and can be spawned further (e.g. one child for the
    oracle's noise, one for the sampler's draws) without the parent and
    child streams ever overlapping.  The children depend only on
    ``random_state`` and position, never on which process consumes them
    — the property that makes parallel experiment runs bit-identical to
    serial ones.

    Parameters
    ----------
    random_state:
        ``None``, an ``int`` seed, a ``SeedSequence`` (spawned
        directly), or a ``Generator`` (its underlying seed sequence is
        used).
    n:
        Number of children to spawn.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(random_state, np.random.SeedSequence):
        seed_seq = random_state
    elif isinstance(random_state, np.random.Generator):
        seed_seq = random_state.bit_generator.seed_seq
    else:
        seed_seq = np.random.SeedSequence(random_state)
    return list(seed_seq.spawn(n))


def spawn_rngs(random_state, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators from a single source.

    Uses ``SeedSequence.spawn`` so child streams are statistically
    independent — the right way to seed repeated experiment trials.
    """
    return [
        np.random.default_rng(child)
        for child in spawn_seed_sequences(random_state, n)
    ]
