"""Random-number generator handling.

Every stochastic component in the library accepts a ``random_state``
argument which may be ``None``, an integer seed, or a
``numpy.random.Generator``.  Centralising the coercion here keeps every
experiment reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(random_state=None) -> np.random.Generator:
    """Coerce ``random_state`` into a ``numpy.random.Generator``.

    Parameters
    ----------
    random_state:
        ``None`` for nondeterministic entropy, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators from a single source.

    Uses ``SeedSequence.spawn`` so child streams are statistically
    independent — the right way to seed repeated experiment trials.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(random_state, np.random.Generator):
        seed_seq = random_state.bit_generator.seed_seq
    else:
        seed_seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]
