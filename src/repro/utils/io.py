"""Durable filesystem primitives shared by checkpoint writers.

Both the experiment checkpoint store
(:class:`~repro.experiments.persistence.TrialStore`) and the service
write-ahead log (:class:`~repro.service.wal.SessionWAL`) rely on the
same invariant: a reader may observe a file either absent or complete,
never torn.  :func:`atomic_write_text` provides it — the content is
written to a uniquely-named temporary sibling, flushed to stable
storage, and renamed over the destination in one atomic step.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path, text: str) -> Path:
    """Atomically replace ``path`` with ``text``.

    The temporary sibling name embeds the pid and a random token, so
    concurrent writers (worker processes streaming shards into one
    directory, server threads checkpointing sessions) can never collide
    on the staging file; ``os.replace`` then makes the swap atomic on
    POSIX and Windows alike.  The file handle is fsynced before the
    rename so a crash straight after cannot surface an empty or
    truncated destination, and the temporary file is removed on any
    failure.

    Returns the destination path.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path
