"""Durable filesystem primitives shared by checkpoint writers.

Both the experiment checkpoint store
(:class:`~repro.experiments.persistence.TrialStore`) and the service
write-ahead log (:class:`~repro.service.wal.SessionWAL`) rely on the
same invariant: a reader may observe a file either absent or complete,
never torn.  :func:`atomic_write_text` / :func:`atomic_write_bytes`
provide it — the content is written to a uniquely-named temporary
sibling, flushed to stable storage, and renamed over the destination in
one atomic step.

Rename atomicity alone is not the full durability story: POSIX only
promises the *directory entry* survives a crash once the directory
itself has been fsynced.  On filesystems that journal data and metadata
separately (ext4 in some modes, XFS), a crash between the rename and
the directory sync can resurface the directory without its newest
entry.  Writers whose contract is "acknowledged means durable" — the
service WAL — must therefore follow the rename with
:func:`fsync_directory`, either via ``fsync_dir=True`` here or by
calling it explicitly after a batch of renames (one directory sync can
cover many files — the group-commit trick).
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

__all__ = [
    "atomic_write_text",
    "atomic_write_bytes",
    "fsync_directory",
    "CorruptStateError",
]


class CorruptStateError(Exception):
    """Persisted state failed an integrity check.

    Raised when a checksummed artefact — a WAL event frame, a
    chunk-store column file, a session manifest — reads back damaged:
    a CRC/digest mismatch, a truncation that cannot be attributed to a
    torn tail, or structure that contradicts the file's own name.  The
    message always names the file (and, where meaningful, the byte
    offset) so an operator can locate the damage; ``path`` and
    ``offset`` carry the same machine-readably.

    Deliberately *not* a ``ValueError``: corruption is an environment
    failure, not a caller mistake, and the service tier maps it to
    HTTP 500 (via :attr:`status`) instead of 400.
    """

    status = 500

    def __init__(self, message: str, *, path=None, offset: int | None = None):
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.offset = offset


def fsync_directory(path) -> None:
    """Flush a directory's entry table to stable storage.

    After an ``os.replace`` into ``path``, this is what makes the new
    name itself crash-durable (the file *contents* were already synced
    before the rename).  A no-op on platforms whose directories cannot
    be opened for reading (Windows); the rename there is made durable
    by the filesystem's own metadata journalling.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - windows / exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path, data: bytes, *, fsync_dir: bool = False) -> Path:
    """Atomically replace ``path`` with ``data``.

    The temporary sibling name embeds the pid and a random token, so
    concurrent writers (worker processes streaming shards into one
    directory, server threads checkpointing sessions) can never collide
    on the staging file; ``os.replace`` then makes the swap atomic on
    POSIX and Windows alike.  The file handle is fsynced before the
    rename so a crash straight after cannot surface an empty or
    truncated destination, and the temporary file is removed on any
    failure.  With ``fsync_dir=True`` the containing directory is
    fsynced after the rename, making the *name* durable too.

    Returns the destination path.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if fsync_dir:
        fsync_directory(path.parent)
    return path


def atomic_write_text(path, text: str, *, fsync_dir: bool = False) -> Path:
    """Atomically replace ``path`` with ``text`` (UTF-8).

    See :func:`atomic_write_bytes` for the durability contract.
    """
    return atomic_write_bytes(
        path, text.encode("utf-8"), fsync_dir=fsync_dir
    )
