"""Process-memory measurement with layered, optional backends.

The scale-ladder benchmark reports peak resident set size (RSS) per
rung.  ``psutil`` is the preferred backend but deliberately an
*optional* dependency; without it the module falls back to
``/proc/self/statm`` (Linux) and finally to
``resource.getrusage(...).ru_maxrss``.  When no backend exists (exotic
platforms), measurement degrades gracefully: :func:`rss_supported`
returns False and trackers report ``None`` instead of raising, so
benchmarks still run — they just cannot assert memory bounds.

``ru_maxrss`` is a process-lifetime high-water mark, so it cannot
bracket a single phase; :class:`PeakRssTracker` therefore samples
current RSS from a daemon thread while the measured block runs, and
only falls back to ``ru_maxrss`` when no sampling backend is available.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

try:  # pragma: no cover - exercised only where psutil is installed
    import psutil
except ImportError:  # pragma: no cover
    psutil = None

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

__all__ = [
    "current_rss_bytes",
    "peak_rss_high_water_bytes",
    "rss_supported",
    "PeakRssTracker",
]

_STATM = Path("/proc/self/statm")
_PAGE_SIZE = 4096
try:
    import os

    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    pass


def current_rss_bytes() -> int | None:
    """Current resident set size in bytes, or None if unmeasurable.

    Backend order: psutil (if installed), then ``/proc/self/statm``.
    """
    if psutil is not None:  # pragma: no cover - optional dependency
        try:
            return int(psutil.Process().memory_info().rss)
        except Exception:
            pass
    try:
        fields = _STATM.read_text().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_high_water_bytes() -> int | None:
    """Process-lifetime peak RSS via ``getrusage``, or None.

    Linux reports ``ru_maxrss`` in KiB; this is a whole-process
    high-water mark, useful as a last-resort ceiling when sampling is
    unavailable.
    """
    if resource is None:  # pragma: no cover
        return None
    try:
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except Exception:  # pragma: no cover
        return None


def rss_supported() -> bool:
    """True when some backend can measure current RSS right now."""
    return current_rss_bytes() is not None


class PeakRssTracker:
    """Samples RSS from a background thread to find a block's peak.

    Usage::

        with PeakRssTracker() as tracker:
            run_the_memory_hungry_thing()
        print(tracker.peak_bytes)   # None when no backend exists

    Parameters
    ----------
    interval:
        Seconds between samples.  The default (20 ms) bounds the error
        on sustained allocations while keeping overhead negligible.
    """

    def __init__(self, interval: float = 0.02):
        if interval <= 0:
            raise ValueError(f"interval must be > 0; got {interval}")
        self.interval = float(interval)
        self.peak_bytes: int | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._sampling = False

    def _sample(self) -> None:
        rss = current_rss_bytes()
        if rss is not None and (self.peak_bytes is None or rss > self.peak_bytes):
            self.peak_bytes = rss

    def _run(self) -> None:
        while not self._stop.is_set():
            self._sample()
            time.sleep(self.interval)

    def __enter__(self) -> "PeakRssTracker":
        self._stop.clear()
        self.peak_bytes = None
        self._sampling = rss_supported()
        if self._sampling:
            self._sample()
            self._thread = threading.Thread(target=self._run, daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if self._sampling:
            self._sample()
        elif self.peak_bytes is None:
            # No sampling backend: fall back to the lifetime high-water
            # mark so callers still get *an* upper bound where possible.
            self.peak_bytes = peak_rss_high_water_bytes()
