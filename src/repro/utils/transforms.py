"""Numeric transforms used across samplers and initialisation."""

from __future__ import annotations

import numpy as np

__all__ = ["expit", "logit", "normalise", "safe_divide"]

# Clip bound keeping exp() finite in float64.
_LOGIT_CLIP = 1e-12


def expit(x):
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    if out.ndim == 0:
        return float(out)
    return out


def logit(p):
    """Inverse sigmoid ``log(p / (1 - p))`` with clipping away from {0,1}."""
    p = np.clip(np.asarray(p, dtype=float), _LOGIT_CLIP, 1.0 - _LOGIT_CLIP)
    out = np.log(p) - np.log1p(-p)
    if out.ndim == 0:
        return float(out)
    return out


def normalise(weights, axis=None):
    """Normalise non-negative weights into a probability vector.

    Falls back to the uniform distribution when all weights are zero,
    which is the safe behaviour for an instrumental distribution (it can
    never assign zero mass everywhere).
    """
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum(axis=axis, keepdims=axis is not None)
    if axis is None:
        if total == 0:
            return np.full_like(w, 1.0 / w.size)
        return w / total
    zero = (total == 0).squeeze()
    out = np.divide(w, total, out=np.zeros_like(w), where=total != 0)
    if np.any(zero):
        out[..., zero] = 1.0 / w.shape[-1]
    return out


def safe_divide(num, den, fill=np.nan):
    """Elementwise ``num / den`` returning ``fill`` where ``den == 0``."""
    num = np.asarray(num, dtype=float)
    den = np.asarray(den, dtype=float)
    out = np.full(np.broadcast(num, den).shape, fill, dtype=float)
    np.divide(num, den, out=out, where=den != 0)
    if out.ndim == 0:
        return float(out)
    return out
