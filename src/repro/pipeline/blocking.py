"""Blocking schemes for candidate-pair reduction.

The paper's background describes blocking as the pipeline stage that
reduces pair comparisons with a linear scan.  Two classic schemes are
provided as substrate: token blocking and sorted neighbourhood.  Note
the paper's evaluation deliberately avoids blocking-filtered pools
(filtering "injects hidden bias into estimates"); these are offered for
building realistic pipelines, not for constructing evaluation pools.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.pipeline.normalise import normalise_string
from repro.pipeline.records import RecordStore

__all__ = ["token_blocking_pairs", "sorted_neighbourhood_pairs"]


def token_blocking_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    max_block_size: int | None = None,
) -> np.ndarray:
    """Candidate pairs sharing at least one token of ``field``.

    Records are indexed by normalised tokens; every (a, b) pair that
    co-occurs in some token's block becomes a candidate.  Oversized
    blocks (stop-word tokens) can be dropped via ``max_block_size``.

    Returns a deduplicated (n, 2) array of index pairs.
    """
    index_a = defaultdict(list)
    for i, record in enumerate(store_a):
        for token in set(normalise_string(record.get(field)).split()):
            index_a[token].append(i)
    index_b = defaultdict(list)
    for j, record in enumerate(store_b):
        for token in set(normalise_string(record.get(field)).split()):
            index_b[token].append(j)

    seen: set[tuple[int, int]] = set()
    for token, block_a in index_a.items():
        block_b = index_b.get(token)
        if not block_b:
            continue
        if max_block_size is not None and len(block_a) * len(block_b) > max_block_size:
            continue
        for i in block_a:
            for j in block_b:
                seen.add((i, j))
    if not seen:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)


def sorted_neighbourhood_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    window: int = 5,
) -> np.ndarray:
    """Sorted-neighbourhood blocking over a shared sort key.

    Records from both sources are merged, sorted by the normalised
    field value, and every cross-source pair within a sliding window of
    size ``window`` becomes a candidate.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2; got {window}")
    keyed = []
    for i, record in enumerate(store_a):
        keyed.append((normalise_string(record.get(field)), 0, i))
    for j, record in enumerate(store_b):
        keyed.append((normalise_string(record.get(field)), 1, j))
    keyed.sort()

    seen: set[tuple[int, int]] = set()
    for pos in range(len(keyed)):
        for other in range(pos + 1, min(pos + window, len(keyed))):
            __, src_x, idx_x = keyed[pos]
            __, src_y, idx_y = keyed[other]
            if src_x == src_y:
                continue
            pair = (idx_x, idx_y) if src_x == 0 else (idx_y, idx_x)
            seen.add(pair)
    if not seen:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)
