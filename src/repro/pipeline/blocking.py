"""Blocking schemes for candidate-pair reduction.

The paper's background describes blocking as the pipeline stage that
reduces pair comparisons with a linear scan.  Two classic schemes are
provided as substrate: token blocking and sorted neighbourhood.  Note
the paper's evaluation deliberately avoids blocking-filtered pools
(filtering "injects hidden bias into estimates"); these are offered for
building realistic pipelines, not for constructing evaluation pools.

Both schemes are join-based internally: candidate pairs are encoded as
single integers ``a * len(store_b) + b``, blocks are expanded with
``np.repeat``/``np.tile``-style broadcasting, and deduplication is one
``np.unique`` over the encoded keys — no Python ``set`` of tuples on
the hot path.  The original set-based scans survive as
``token_blocking_pairs_reference`` / ``sorted_neighbourhood_pairs_reference``
for parity testing.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.pipeline.normalise import normalise_string
from repro.pipeline.records import RecordStore

__all__ = [
    "token_blocking_pairs",
    "sorted_neighbourhood_pairs",
    "token_blocking_pairs_reference",
    "sorted_neighbourhood_pairs_reference",
]


def _normalised_keys(store: RecordStore, field: str) -> list[str]:
    """Each record's blocking key, normalised once per store."""
    return [normalise_string(record.get(field)) for record in store]


def _decode_pair_keys(keys: np.ndarray, n_b: int) -> np.ndarray:
    """Sorted unique ``a * n_b + b`` keys back to an (n, 2) index array."""
    if len(keys) == 0:
        return np.empty((0, 2), dtype=np.int64)
    keys = np.unique(keys)
    return np.column_stack([keys // n_b, keys % n_b])


def _token_index(keys: list[str]) -> dict[str, list[int]]:
    """Inverted index: token -> record indices whose key contains it."""
    index: dict[str, list[int]] = defaultdict(list)
    for i, key in enumerate(keys):
        for token in set(key.split()):
            index[token].append(i)
    return index


def _token_block_allowed(
    size_a: int,
    size_b: int,
    max_block_size: int | None,
    max_pairs_per_token: int | None,
) -> bool:
    """Shared guard semantics for the join and reference paths."""
    if max_block_size is not None and (
        size_a > max_block_size or size_b > max_block_size
    ):
        return False
    if max_pairs_per_token is not None and size_a * size_b > max_pairs_per_token:
        return False
    return True


def token_blocking_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    max_block_size: int | None = None,
    max_pairs_per_token: int | None = None,
) -> np.ndarray:
    """Candidate pairs sharing at least one token of ``field``.

    Records are indexed by normalised tokens; every (a, b) pair that
    co-occurs in some token's block becomes a candidate.  Per-token
    blocks are expanded into integer pair keys and deduplicated with a
    single ``np.unique``.

    Parameters
    ----------
    store_a, store_b:
        The two record sources.
    field:
        Schema field supplying the blocking key.
    max_block_size:
        Drop a token whose block in *either* source holds more than
        this many records (stop-word tokens).  Bounds per-source block
        membership.
    max_pairs_per_token:
        Drop a token whose block *product* ``len(block_a) * len(block_b)``
        exceeds this many candidate pairs.  Bounds per-token pair
        generation independently of either side's membership.

    Returns a deduplicated (n, 2) array of index pairs, sorted
    lexicographically.
    """
    n_b = len(store_b)
    if len(store_a) == 0 or n_b == 0:
        return np.empty((0, 2), dtype=np.int64)
    index_a = _token_index(_normalised_keys(store_a, field))
    index_b = _token_index(_normalised_keys(store_b, field))

    key_chunks: list[np.ndarray] = []
    for token, block_a in index_a.items():
        block_b = index_b.get(token)
        if not block_b:
            continue
        if not _token_block_allowed(
            len(block_a), len(block_b), max_block_size, max_pairs_per_token
        ):
            continue
        lefts = np.asarray(block_a, dtype=np.int64)
        rights = np.asarray(block_b, dtype=np.int64)
        # Cross product of the token's two blocks, as encoded keys.
        key_chunks.append(
            (np.repeat(lefts, len(rights)) * n_b + np.tile(rights, len(lefts)))
        )
    if not key_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return _decode_pair_keys(np.concatenate(key_chunks), n_b)


def token_blocking_pairs_reference(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    max_block_size: int | None = None,
    max_pairs_per_token: int | None = None,
) -> np.ndarray:
    """Set-based scan with the same semantics as :func:`token_blocking_pairs`.

    The original per-pair accumulation, kept as the parity baseline for
    the join-based implementation.
    """
    index_a = _token_index(_normalised_keys(store_a, field))
    index_b = _token_index(_normalised_keys(store_b, field))

    seen: set[tuple[int, int]] = set()
    for token, block_a in index_a.items():
        block_b = index_b.get(token)
        if not block_b:
            continue
        if not _token_block_allowed(
            len(block_a), len(block_b), max_block_size, max_pairs_per_token
        ):
            continue
        for i in block_a:
            for j in block_b:
                seen.add((i, j))
    if not seen:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)


def _sorted_merge(store_a: RecordStore, store_b: RecordStore, field: str):
    """Both stores merged and sorted by (normalised key, source, index)."""
    keyed = [
        (key, 0, i) for i, key in enumerate(_normalised_keys(store_a, field))
    ]
    keyed.extend(
        (key, 1, j) for j, key in enumerate(_normalised_keys(store_b, field))
    )
    keyed.sort()
    return keyed


def sorted_neighbourhood_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    window: int = 5,
) -> np.ndarray:
    """Sorted-neighbourhood blocking over a shared sort key.

    Records from both sources are merged, sorted by the normalised
    field value, and every cross-source pair within a sliding window of
    size ``window`` becomes a candidate.  The window scan is one array
    shift per offset: positions ``p`` and ``p + offset`` pair up for
    every offset below ``window``, cross-source pairs are kept, and the
    encoded keys are deduplicated with ``np.unique``.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2; got {window}")
    n_b = len(store_b)
    if len(store_a) == 0 or n_b == 0:
        return np.empty((0, 2), dtype=np.int64)
    keyed = _sorted_merge(store_a, store_b, field)
    source = np.fromiter((s for __, s, __ in keyed), dtype=np.int64, count=len(keyed))
    local = np.fromiter((i for __, __, i in keyed), dtype=np.int64, count=len(keyed))

    key_chunks: list[np.ndarray] = []
    for offset in range(1, window):
        if offset >= len(keyed):
            break
        head = slice(None, len(keyed) - offset)
        tail = slice(offset, None)
        cross = source[head] != source[tail]
        if not cross.any():
            continue
        first_is_a = source[head][cross] == 0
        left = np.where(first_is_a, local[head][cross], local[tail][cross])
        right = np.where(first_is_a, local[tail][cross], local[head][cross])
        key_chunks.append(left * n_b + right)
    if not key_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return _decode_pair_keys(np.concatenate(key_chunks), n_b)


def sorted_neighbourhood_pairs_reference(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    window: int = 5,
) -> np.ndarray:
    """Per-pair scan with the same semantics as
    :func:`sorted_neighbourhood_pairs`, kept as the parity baseline."""
    if window < 2:
        raise ValueError(f"window must be >= 2; got {window}")
    keyed = _sorted_merge(store_a, store_b, field)

    seen: set[tuple[int, int]] = set()
    for pos in range(len(keyed)):
        for other in range(pos + 1, min(pos + window, len(keyed))):
            __, src_x, idx_x = keyed[pos]
            __, src_y, idx_y = keyed[other]
            if src_x == src_y:
                continue
            pair = (idx_x, idx_y) if src_x == 0 else (idx_y, idx_x)
            seen.add(pair)
    if not seen:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)
