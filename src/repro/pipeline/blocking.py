"""Blocking schemes for candidate-pair reduction.

The paper's background describes blocking as the pipeline stage that
reduces pair comparisons with a linear scan.  Two classic schemes are
provided as substrate: token blocking and sorted neighbourhood.  Note
the paper's evaluation deliberately avoids blocking-filtered pools
(filtering "injects hidden bias into estimates"); these are offered for
building realistic pipelines, not for constructing evaluation pools.

Both schemes are join-based internally: candidate pairs are encoded as
single integers ``a * len(store_b) + b``, blocks are expanded with
``np.repeat``/``np.tile``-style broadcasting, and deduplication is one
``np.unique`` over the encoded keys — no Python ``set`` of tuples on
the hot path.  The original set-based scans survive as
``token_blocking_pairs_reference`` / ``sorted_neighbourhood_pairs_reference``
for parity testing.
"""

from __future__ import annotations

import heapq
import pickle
import tempfile
from collections import defaultdict, deque
from hashlib import blake2b
from pathlib import Path

import numpy as np

from repro.pipeline.records import BaseRecordStore as RecordStore

__all__ = [
    "token_blocking_pairs",
    "sorted_neighbourhood_pairs",
    "minhash_lsh_pairs",
    "sorted_neighbourhood_pairs_external",
    "token_blocking_pairs_reference",
    "sorted_neighbourhood_pairs_reference",
]


def _normalised_keys(store: RecordStore, field: str) -> list[str]:
    """Each record's blocking key, normalised and cached on the store."""
    return store.normalised_field(field)


def _decode_pair_keys(keys: np.ndarray, n_b: int) -> np.ndarray:
    """Sorted unique ``a * n_b + b`` keys back to an (n, 2) index array."""
    if len(keys) == 0:
        return np.empty((0, 2), dtype=np.int64)
    keys = np.unique(keys)
    return np.column_stack([keys // n_b, keys % n_b])


def _token_index(keys: list[str]) -> dict[str, list[int]]:
    """Inverted index: token -> record indices whose key contains it."""
    index: dict[str, list[int]] = defaultdict(list)
    for i, key in enumerate(keys):
        for token in set(key.split()):
            index[token].append(i)
    return index


def _token_block_allowed(
    size_a: int,
    size_b: int,
    max_block_size: int | None,
    max_pairs_per_token: int | None,
) -> bool:
    """Shared guard semantics for the join and reference paths."""
    if max_block_size is not None and (
        size_a > max_block_size or size_b > max_block_size
    ):
        return False
    if max_pairs_per_token is not None and size_a * size_b > max_pairs_per_token:
        return False
    return True


def token_blocking_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    max_block_size: int | None = None,
    max_pairs_per_token: int | None = None,
) -> np.ndarray:
    """Candidate pairs sharing at least one token of ``field``.

    Records are indexed by normalised tokens; every (a, b) pair that
    co-occurs in some token's block becomes a candidate.  Per-token
    blocks are expanded into integer pair keys and deduplicated with a
    single ``np.unique``.

    Parameters
    ----------
    store_a, store_b:
        The two record sources.
    field:
        Schema field supplying the blocking key.
    max_block_size:
        Drop a token whose block in *either* source holds more than
        this many records (stop-word tokens).  Bounds per-source block
        membership.
    max_pairs_per_token:
        Drop a token whose block *product* ``len(block_a) * len(block_b)``
        exceeds this many candidate pairs.  Bounds per-token pair
        generation independently of either side's membership.

    Returns a deduplicated (n, 2) array of index pairs, sorted
    lexicographically.
    """
    n_b = len(store_b)
    if len(store_a) == 0 or n_b == 0:
        return np.empty((0, 2), dtype=np.int64)
    index_a = _token_index(_normalised_keys(store_a, field))
    index_b = _token_index(_normalised_keys(store_b, field))

    key_chunks: list[np.ndarray] = []
    for token, block_a in index_a.items():
        block_b = index_b.get(token)
        if not block_b:
            continue
        if not _token_block_allowed(
            len(block_a), len(block_b), max_block_size, max_pairs_per_token
        ):
            continue
        lefts = np.asarray(block_a, dtype=np.int64)
        rights = np.asarray(block_b, dtype=np.int64)
        # Cross product of the token's two blocks, as encoded keys.
        key_chunks.append(
            (np.repeat(lefts, len(rights)) * n_b + np.tile(rights, len(lefts)))
        )
    if not key_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return _decode_pair_keys(np.concatenate(key_chunks), n_b)


def token_blocking_pairs_reference(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    max_block_size: int | None = None,
    max_pairs_per_token: int | None = None,
) -> np.ndarray:
    """Set-based scan with the same semantics as :func:`token_blocking_pairs`.

    The original per-pair accumulation, kept as the parity baseline for
    the join-based implementation.
    """
    index_a = _token_index(_normalised_keys(store_a, field))
    index_b = _token_index(_normalised_keys(store_b, field))

    seen: set[tuple[int, int]] = set()
    for token, block_a in index_a.items():
        block_b = index_b.get(token)
        if not block_b:
            continue
        if not _token_block_allowed(
            len(block_a), len(block_b), max_block_size, max_pairs_per_token
        ):
            continue
        for i in block_a:
            for j in block_b:
                seen.add((i, j))
    if not seen:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)


def _sorted_merge(store_a: RecordStore, store_b: RecordStore, field: str):
    """Both stores merged and sorted by (normalised key, source, index)."""
    keyed = [
        (key, 0, i) for i, key in enumerate(_normalised_keys(store_a, field))
    ]
    keyed.extend(
        (key, 1, j) for j, key in enumerate(_normalised_keys(store_b, field))
    )
    keyed.sort()
    return keyed


def sorted_neighbourhood_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    window: int = 5,
) -> np.ndarray:
    """Sorted-neighbourhood blocking over a shared sort key.

    Records from both sources are merged, sorted by the normalised
    field value, and every cross-source pair within a sliding window of
    size ``window`` becomes a candidate.  The window scan is one array
    shift per offset: positions ``p`` and ``p + offset`` pair up for
    every offset below ``window``, cross-source pairs are kept, and the
    encoded keys are deduplicated with ``np.unique``.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2; got {window}")
    n_b = len(store_b)
    if len(store_a) == 0 or n_b == 0:
        return np.empty((0, 2), dtype=np.int64)
    keyed = _sorted_merge(store_a, store_b, field)
    source = np.fromiter((s for __, s, __ in keyed), dtype=np.int64, count=len(keyed))
    local = np.fromiter((i for __, __, i in keyed), dtype=np.int64, count=len(keyed))

    key_chunks: list[np.ndarray] = []
    for offset in range(1, window):
        if offset >= len(keyed):
            break
        head = slice(None, len(keyed) - offset)
        tail = slice(offset, None)
        cross = source[head] != source[tail]
        if not cross.any():
            continue
        first_is_a = source[head][cross] == 0
        left = np.where(first_is_a, local[head][cross], local[tail][cross])
        right = np.where(first_is_a, local[tail][cross], local[head][cross])
        key_chunks.append(left * n_b + right)
    if not key_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return _decode_pair_keys(np.concatenate(key_chunks), n_b)


# -- MinHash-LSH ------------------------------------------------------

# Multiply-shift MinHash parameters live in uint64 with wraparound
# arithmetic; the odd multiplier keeps the map a bijection.
_MIX = np.uint64(0x9E3779B97F4A7C15)
_LSH_CHUNK = 8_192


def _key_tokens(key: str, ngram_size: int | None):
    """A key's token set: whitespace words, or character n-grams.

    N-gram tokens (via :func:`repro.pipeline.similarity.ngrams`) make
    the MinHash sketch robust to typos — one character edit perturbs
    only ``n`` of a key's grams instead of knocking out a whole word.
    """
    if ngram_size is None:
        return set(key.split())
    from repro.pipeline.similarity import ngrams

    return ngrams(key, ngram_size)


def _token_hashes(
    key: str, cache: dict[str, int], ngram_size: int | None
) -> list[int]:
    """Stable 64-bit hashes of a key's unique tokens (memoised)."""
    out = []
    for token in _key_tokens(key, ngram_size):
        h = cache.get(token)
        if h is None:
            h = int.from_bytes(
                blake2b(token.encode("utf-8"), digest_size=8).digest(), "little"
            )
            cache[token] = h
        out.append(h)
    return out


def _band_keys(
    store: RecordStore,
    field: str,
    bands: int,
    rows: int,
    params_a: np.ndarray,
    params_b: np.ndarray,
    token_cache: dict[str, int],
    chunk_size: int,
    ngram_size: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-record banded MinHash keys, computed chunk-by-chunk.

    Returns ``(keys, valid)`` where ``keys`` is an ``(n, bands)`` uint64
    array of band signatures and ``valid`` marks records whose key has
    at least one token.  Only the compact band keys are retained — the
    full ``bands * rows`` signature matrix exists per chunk only.
    """
    n_perm = bands * rows
    key_blocks: list[np.ndarray] = []
    valid_blocks: list[np.ndarray] = []
    old = np.seterr(over="ignore")
    try:
        for chunk in store.iter_normalised_chunks(field, chunk_size):
            lengths = np.empty(len(chunk), dtype=np.int64)
            flat: list[int] = []
            for i, key in enumerate(chunk):
                hashes = _token_hashes(key, token_cache, ngram_size)
                lengths[i] = len(hashes)
                flat.extend(hashes)
            valid = lengths > 0
            keys = np.zeros((len(chunk), bands), dtype=np.uint64)
            if flat:
                x = np.array(flat, dtype=np.uint64)
                # (tokens, n_perm) permuted hashes, min-reduced per record.
                hashed = params_a[None, :] * x[:, None] + params_b[None, :]
                offsets = np.zeros(int(valid.sum()), dtype=np.int64)
                np.cumsum(lengths[valid][:-1], out=offsets[1:])
                minima = np.minimum.reduceat(hashed, offsets, axis=0)
                sig = minima.reshape(-1, bands, rows)
                band = sig[:, :, 0].copy()
                for r in range(1, rows):
                    band = band * _MIX ^ sig[:, :, r]
                keys[valid] = band
            key_blocks.append(keys)
            valid_blocks.append(valid)
    finally:
        np.seterr(**old)
    if not key_blocks:
        return (
            np.empty((0, bands), dtype=np.uint64),
            np.empty(0, dtype=bool),
        )
    return np.concatenate(key_blocks), np.concatenate(valid_blocks)


def _bucket_join(
    keys_a: np.ndarray,
    keys_b: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    n_b: int,
    max_bucket_size: int | None,
) -> np.ndarray:
    """Encoded pair keys for every (a, b) sharing a band bucket.

    A vectorised grouped cross product: both key columns are mapped to
    shared integer codes, each side is grouped by code with one stable
    argsort, and per-bucket blocks are expanded with
    ``np.repeat`` + a grouped ``arange`` — no Python loop over buckets.
    """
    codes, inverse = np.unique(
        np.concatenate([keys_a, keys_b]), return_inverse=True
    )
    codes_a = inverse[: len(keys_a)]
    codes_b = inverse[len(keys_a):]
    n_codes = len(codes)
    counts_a = np.bincount(codes_a, minlength=n_codes)
    counts_b = np.bincount(codes_b, minlength=n_codes)
    keep = (counts_a > 0) & (counts_b > 0)
    if max_bucket_size is not None:
        keep &= (counts_a <= max_bucket_size) & (counts_b <= max_bucket_size)
    if not keep.any():
        return np.empty(0, dtype=np.int64)

    order_b = np.argsort(codes_b, kind="stable")
    starts_b = np.zeros(n_codes, dtype=np.int64)
    np.cumsum(counts_b[:-1], out=starts_b[1:])

    mask_a = keep[codes_a]
    a_idx = idx_a[mask_a]
    a_codes = codes_a[mask_a]
    per_a = counts_b[a_codes]
    total = int(per_a.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    lefts = np.repeat(a_idx, per_a)
    # Grouped arange: position of each emitted pair within its bucket.
    ends = np.cumsum(per_a)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - per_a, per_a)
    rights = idx_b[order_b[np.repeat(starts_b[a_codes], per_a) + within]]
    return lefts * n_b + rights


def minhash_lsh_pairs(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    bands: int = 16,
    rows: int = 4,
    seed: int = 0,
    chunk_size: int = _LSH_CHUNK,
    max_bucket_size: int | None = None,
    ngram_size: int | None = None,
) -> np.ndarray:
    """Approximate candidate pairs via banded MinHash-LSH over tokens.

    Each record's normalised ``field`` tokens are min-hashed under
    ``bands * rows`` multiply-shift permutations; the signature is cut
    into ``bands`` bands of ``rows`` values, and two records become a
    candidate pair when *any* band key collides.  A pair with token
    Jaccard similarity ``s`` is recalled with probability
    ``1 - (1 - s**rows)**bands`` — more bands or fewer rows per band
    raise recall (and candidate volume), the reverse raises precision.

    Unlike :func:`token_blocking_pairs` this never builds a full
    inverted index of exact tokens, consumes columns chunk-wise
    (``iter_normalised_chunks``), and retains only ``bands`` uint64
    keys per record, so it scales to pools where the exact pair space
    is unmaterialisable.  Candidates are deduplicated with the same
    ``a * n_b + b`` integer-key ``np.unique`` idiom as the exact
    schemes; the result is always a subset of the full cross product
    of records with non-empty keys.

    Parameters
    ----------
    store_a, store_b:
        The two record sources (in-memory or chunked).
    field:
        Schema field supplying the token key.
    bands, rows:
        Banding shape; ``bands * rows`` permutations total.
    seed:
        Seeds the permutation parameters; identical seeds give
        identical candidates for identical inputs.
    chunk_size:
        Records per signature-computation chunk.
    max_bucket_size:
        Drop a band bucket holding more than this many records in
        either source (the LSH analogue of ``max_block_size``).
    ngram_size:
        When set, sketch character ``ngram_size``-grams of the key
        instead of whitespace words — typo-robust blocking at the cost
        of denser token sets (the right setting for dirty text).

    Returns a deduplicated (n, 2) array of index pairs, sorted
    lexicographically.
    """
    if bands < 1 or rows < 1:
        raise ValueError(f"bands and rows must be >= 1; got {bands}x{rows}")
    n_b = len(store_b)
    if len(store_a) == 0 or n_b == 0:
        return np.empty((0, 2), dtype=np.int64)

    rng = np.random.default_rng(seed)
    n_perm = bands * rows
    # Odd multipliers + arbitrary offsets: multiply-shift hash family.
    params_a = rng.integers(0, 2**64, size=n_perm, dtype=np.uint64) | np.uint64(1)
    params_b = rng.integers(0, 2**64, size=n_perm, dtype=np.uint64)

    token_cache: dict[str, int] = {}
    keys_a, valid_a = _band_keys(
        store_a, field, bands, rows, params_a, params_b, token_cache,
        chunk_size, ngram_size,
    )
    keys_b, valid_b = _band_keys(
        store_b, field, bands, rows, params_a, params_b, token_cache,
        chunk_size, ngram_size,
    )
    idx_a = np.flatnonzero(valid_a)
    idx_b = np.flatnonzero(valid_b)
    if len(idx_a) == 0 or len(idx_b) == 0:
        return np.empty((0, 2), dtype=np.int64)

    key_chunks: list[np.ndarray] = []
    for band in range(bands):
        encoded = _bucket_join(
            keys_a[idx_a, band],
            keys_b[idx_b, band],
            idx_a,
            idx_b,
            n_b,
            max_bucket_size,
        )
        if len(encoded):
            # Dedup per band before concatenating across bands.
            key_chunks.append(np.unique(encoded))
    if not key_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return _decode_pair_keys(np.concatenate(key_chunks), n_b)


# -- External-memory sorted neighbourhood -----------------------------

_DEFAULT_RUN_SIZE = 8_192


def _write_run(directory: Path, index: int, run: list) -> Path:
    """Persist one sorted run of (key, source, index) tuples."""
    run.sort()
    path = directory / f"run-{index:06d}.pkl"
    with open(path, "wb") as handle:
        for item in run:
            pickle.dump(item, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def _read_run(path: Path):
    """Stream one run file back as tuples."""
    with open(path, "rb") as handle:
        while True:
            try:
                yield pickle.load(handle)
            except EOFError:
                return


def sorted_neighbourhood_pairs_external(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    window: int = 5,
    run_size: int = _DEFAULT_RUN_SIZE,
    tmp_dir=None,
) -> np.ndarray:
    """External-memory sorted neighbourhood: disk runs + k-way merge.

    Produces *exactly* the same candidate set as
    :func:`sorted_neighbourhood_pairs` without ever holding the merged
    key list in memory: normalised keys stream chunk-wise into sorted
    runs of ``run_size`` tuples spilled to ``tmp_dir``, a
    ``heapq.merge`` re-streams the global sort order, and a
    ``window``-sized deque emits cross-source pairs on the fly.  The
    tuple sort key ``(key, source, index)`` is a strict total order, so
    the merged stream is identical to the in-memory sort and the two
    variants are bit-identical by construction.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2; got {window}")
    if run_size < 1:
        raise ValueError(f"run_size must be >= 1; got {run_size}")
    n_b = len(store_b)
    if len(store_a) == 0 or n_b == 0:
        return np.empty((0, 2), dtype=np.int64)

    with tempfile.TemporaryDirectory(dir=tmp_dir) as workdir:
        workdir = Path(workdir)
        run_paths: list[Path] = []
        run: list = []
        for source, store in ((0, store_a), (1, store_b)):
            position = 0
            for chunk in store.iter_normalised_chunks(field):
                for key in chunk:
                    run.append((key, source, position))
                    position += 1
                    if len(run) >= run_size:
                        run_paths.append(_write_run(workdir, len(run_paths), run))
                        run = []
        if run:
            run_paths.append(_write_run(workdir, len(run_paths), run))

        merged = heapq.merge(*(_read_run(path) for path in run_paths))
        recent: deque = deque(maxlen=window - 1)
        buffer: list[int] = []
        key_chunks: list[np.ndarray] = []
        for __, src_y, idx_y in merged:
            for __, src_x, idx_x in recent:
                if src_x == src_y:
                    continue
                left, right = (
                    (idx_x, idx_y) if src_x == 0 else (idx_y, idx_x)
                )
                buffer.append(left * n_b + right)
            recent.append((None, src_y, idx_y))
            if len(buffer) >= 4 * run_size:
                key_chunks.append(np.unique(np.array(buffer, dtype=np.int64)))
                buffer = []
        if buffer:
            key_chunks.append(np.unique(np.array(buffer, dtype=np.int64)))
    if not key_chunks:
        return np.empty((0, 2), dtype=np.int64)
    return _decode_pair_keys(np.concatenate(key_chunks), n_b)


def sorted_neighbourhood_pairs_reference(
    store_a: RecordStore,
    store_b: RecordStore,
    field: str,
    *,
    window: int = 5,
) -> np.ndarray:
    """Per-pair scan with the same semantics as
    :func:`sorted_neighbourhood_pairs`, kept as the parity baseline."""
    if window < 2:
        raise ValueError(f"window must be >= 2; got {window}")
    keyed = _sorted_merge(store_a, store_b, field)

    seen: set[tuple[int, int]] = set()
    for pos in range(len(keyed)):
        for other in range(pos + 1, min(pos + window, len(keyed))):
            __, src_x, idx_x = keyed[pos]
            __, src_y, idx_y = keyed[other]
            if src_x == src_y:
                continue
            pair = (idx_x, idx_y) if src_x == 0 else (idx_y, idx_x)
            seen.add(pair)
    if not seen:
        return np.empty((0, 2), dtype=np.int64)
    return np.array(sorted(seen), dtype=np.int64)
