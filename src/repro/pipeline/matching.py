"""Matching stage and end-to-end pipeline orchestration.

The matcher turns similarity scores into a predicted relation R-hat by
thresholding (paper section 2.1: "sufficiently high-scoring pairs are
used to construct R-hat").  :class:`ERPipeline` wires together feature
extraction, a trained pair classifier and the matcher, producing the
triple every sampler consumes: (scores, predictions, pool).
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.features import PairFeatureExtractor
from repro.pipeline.records import BaseRecordStore as RecordStore

__all__ = ["threshold_match", "ERPipeline"]


def threshold_match(scores, threshold: float = 0.0) -> np.ndarray:
    """Predicted labels: 1 where ``score >= threshold``.

    The natural threshold is 0 for margin scores (SVM distances) and
    0.5 for probabilistic scores.
    """
    scores = np.asarray(scores, dtype=float)
    return (scores >= threshold).astype(np.int8)


class ERPipeline:
    """End-to-end ER pipeline: features -> classifier -> matcher.

    Parameters
    ----------
    extractor:
        A fitted or unfitted :class:`PairFeatureExtractor`.
    classifier:
        Any object with ``fit(X, y)`` and ``decision_function(X)``
        (margin scores) and optionally ``predict_proba(X)``.
    threshold:
        Match threshold applied to the classifier's scores.
    use_probabilities:
        If True, score pairs with calibrated probabilities (threshold
        should then be 0.5) — the paper's "calibrated scores" setting.
    chunk_size:
        Optional override for the extractor's scoring chunk size —
        pairs scored per vectorised kernel call (memory/throughput
        trade-off for full-pool scoring passes).
    memory_budget:
        Optional transient-memory target in bytes for scoring passes.
        When set and ``chunk_size`` is not, the kernel chunk size is
        derived from the fitted extractor via
        :meth:`PairFeatureExtractor.budget_chunk_size` after ``fit``.
    """

    def __init__(
        self,
        extractor: PairFeatureExtractor,
        classifier,
        *,
        threshold: float = 0.0,
        use_probabilities: bool = False,
        chunk_size: int | None = None,
        memory_budget: int | None = None,
    ):
        self.extractor = extractor
        self.classifier = classifier
        self.threshold = threshold
        self.use_probabilities = use_probabilities
        self.chunk_size = chunk_size
        self.memory_budget = memory_budget

    def _scoring_chunk(self) -> int | None:
        """Chunk size for extractor calls: explicit beats budget-derived."""
        if self.chunk_size is not None:
            return self.chunk_size
        if self.memory_budget is not None:
            return self.extractor.budget_chunk_size(self.memory_budget)
        return None

    def fit(
        self,
        store_a: RecordStore,
        store_b: RecordStore,
        train_pairs,
        train_labels,
    ) -> "ERPipeline":
        """Fit the extractor on the stores and the classifier on pairs.

        ``train_pairs`` is a labelled subset of the pair space — the
        paper trains its classifiers "on a random subset of the entire
        dataset (including ground truth labels)"; training data need
        not be representative (section 2.1.1).
        """
        self.extractor.fit(store_a, store_b)
        features = self.extractor.transform(
            train_pairs, chunk_size=self._scoring_chunk()
        )
        self.classifier.fit(features, np.asarray(train_labels))
        return self

    def _score_features(self, features: np.ndarray) -> np.ndarray:
        if self.use_probabilities:
            if not hasattr(self.classifier, "predict_proba"):
                raise AttributeError(
                    "classifier has no predict_proba; wrap it with "
                    "PlattCalibrator or set use_probabilities=False"
                )
            return self.classifier.predict_proba(features)
        return self.classifier.decision_function(features)

    def score_pairs(self, pairs) -> np.ndarray:
        """Similarity scores for pairs: margins or probabilities."""
        features = self.extractor.transform(pairs, chunk_size=self._scoring_chunk())
        return self._score_features(features)

    def score_pairs_iter(self, pair_chunks):
        """Yield one score block per (n, 2) pair chunk.

        The streaming counterpart of :meth:`score_pairs` for candidate
        generators: peak memory is one pair chunk's features, not the
        whole pool's.
        """
        chunk = self._scoring_chunk()
        for features in self.extractor.transform_iter(pair_chunks, chunk_size=chunk):
            yield self._score_features(features)

    def predict_pairs(self, pairs, scores=None) -> np.ndarray:
        """Predicted match labels for pairs (R-hat membership)."""
        if scores is None:
            scores = self.score_pairs(pairs)
        return threshold_match(scores, self.threshold)

    def resolve(self, pairs) -> dict:
        """Score and match a pool in one pass.

        Returns a dict with ``scores`` and ``predictions`` aligned to
        ``pairs`` — the sampler-facing output of the whole pipeline.
        """
        scores = self.score_pairs(pairs)
        return {
            "scores": scores,
            "predictions": threshold_match(scores, self.threshold),
        }

    def resolve_iter(self, pair_chunks):
        """Streamed :meth:`resolve`: one scores/predictions dict per chunk.

        Aligns with the input chunking, so a caller can stream
        candidates from :func:`~repro.pipeline.records.iter_cross_product_pairs`
        or a blocking scheme, score them, and keep only what it needs
        (e.g. predicted matches) without the full pool in memory.
        """
        for scores in self.score_pairs_iter(pair_chunks):
            yield {
                "scores": scores,
                "predictions": threshold_match(scores, self.threshold),
            }
