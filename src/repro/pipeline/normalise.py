"""Pre-processing: string normalisation and numeric imputation.

Mirrors the paper's pipeline pre-processing (section 6.1.2): strings are
normalised by removing symbols, accents and capitalisation; numeric
fields are coerced to floats with mean imputation for missing values.
"""

from __future__ import annotations

import re
import unicodedata

import numpy as np

__all__ = ["normalise_string", "to_float", "impute_missing_numeric"]

_NON_ALNUM = re.compile(r"[^a-z0-9\s]+")
_WHITESPACE = re.compile(r"\s+")


def normalise_string(value) -> str:
    """Normalise text: strip accents, symbols and capitalisation.

    ``None`` (a missing value) normalises to the empty string, which
    downstream similarity measures treat as "no information".
    """
    if value is None:
        return ""
    text = str(value)
    # Decompose accented characters and drop the combining marks.
    text = unicodedata.normalize("NFKD", text)
    text = "".join(ch for ch in text if not unicodedata.combining(ch))
    text = text.lower()
    text = _NON_ALNUM.sub(" ", text)
    text = _WHITESPACE.sub(" ", text).strip()
    return text


def to_float(value) -> float:
    """Coerce a field value to float; unparseable/missing become NaN."""
    if value is None:
        return float("nan")
    if isinstance(value, (int, float, np.integer, np.floating)):
        return float(value)
    text = str(value).strip().replace(",", "").replace("$", "")
    if not text:
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return float("nan")


def impute_missing_numeric(values) -> np.ndarray:
    """Replace NaNs with the mean of the observed values.

    If every value is missing, impute zeros (there is no mean to use).
    """
    arr = np.asarray([to_float(v) for v in values], dtype=float)
    missing = np.isnan(arr)
    if missing.all():
        return np.zeros_like(arr)
    arr[missing] = arr[~missing].mean()
    return arr
