"""Disk-backed columnar record storage for out-of-core pools.

A :class:`ChunkedRecordStore` holds a record table as fixed-size
columnar chunks on disk — one ``chunk-%08d.npz`` shard per
``chunk_size`` records plus a ``manifest.json`` — and loads chunks
lazily behind a small LRU cache, so a million-record pool costs a few
chunks of resident memory rather than the whole table.  Shards are
written with the same atomic-write idiom as the experiment checkpoint
store (:class:`~repro.experiments.persistence.TrialStore`): a reader
observes each shard either absent or complete, never torn.

The store implements the shared
:class:`~repro.pipeline.records.BaseRecordStore` interface, so every
pipeline layer that consumes the chunk-iterating column accessors
(:class:`~repro.pipeline.features.PairFeatureExtractor`, the blocking
schemes) works identically — and, by the chunk-invariance test suite,
bit-identically — over in-memory and disk-backed pools.
"""

from __future__ import annotations

import io
import json
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.pipeline.normalise import normalise_string
from repro.pipeline.records import BaseRecordStore, Record
from repro.utils import (
    CorruptStateError,
    atomic_write_bytes,
    atomic_write_text,
    file_digest,
)

__all__ = ["ChunkedRecordStore", "ChunkedStoreWriter"]

_MANIFEST = "manifest.json"
_CHUNK_FORMAT = "chunk-{index:08d}.npz"
_DEFAULT_CHUNK_SIZE = 8_192
_DEFAULT_CACHE_CHUNKS = 4


def _chunk_payload(schema, record_ids, entity_ids, columns) -> bytes:
    """Serialise one chunk's columns into npz bytes."""
    arrays = {
        "record_ids": np.asarray(record_ids, dtype=np.int64),
        "entity_ids": np.asarray(entity_ids, dtype=np.int64),
    }
    for name in schema:
        arrays[f"field_{name}"] = np.asarray(columns[name], dtype=object)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


class ChunkedStoreWriter:
    """Streaming writer: append records, flush columnar chunks to disk.

    Accumulates at most ``chunk_size`` records in memory; each full
    chunk is serialised to an npz shard and atomically renamed into
    place, so generators can stream arbitrarily large pools through a
    bounded buffer.  :meth:`close` writes the trailing partial chunk
    and the manifest, and returns the opened
    :class:`ChunkedRecordStore`.
    """

    def __init__(
        self,
        directory,
        schema,
        *,
        name: str = "db",
        chunk_size: int = _DEFAULT_CHUNK_SIZE,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.schema = tuple(schema)
        self.name = name
        self.chunk_size = int(chunk_size)
        self._record_ids: list[int] = []
        self._entity_ids: list[int] = []
        self._columns: dict[str, list] = {f: [] for f in self.schema}
        self._n_records = 0
        self._n_chunks = 0
        self._chunk_digests: list[str] = []
        self._closed = False

    def append(self, record: Record) -> None:
        if self._closed:
            raise RuntimeError("writer is closed")
        extra = set(record.fields) - set(self.schema)
        if extra:
            raise ValueError(
                f"record {record.record_id} has fields {sorted(extra)} "
                f"outside schema {self.schema}"
            )
        self._record_ids.append(record.record_id)
        self._entity_ids.append(record.entity_id)
        for name in self.schema:
            self._columns[name].append(record.get(name))
        self._n_records += 1
        if len(self._record_ids) >= self.chunk_size:
            self._flush_chunk()

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def _flush_chunk(self) -> None:
        if not self._record_ids:
            return
        payload = _chunk_payload(
            self.schema, self._record_ids, self._entity_ids, self._columns
        )
        path = self.directory / _CHUNK_FORMAT.format(index=self._n_chunks)
        # fsync_dir makes the chunk's *name* crash-durable too — without
        # it a crash after the rename can roll the file back out of the
        # directory on lazily-journalled filesystems.
        atomic_write_bytes(path, payload, fsync_dir=True)
        self._chunk_digests.append(file_digest(path))
        self._n_chunks += 1
        self._record_ids = []
        self._entity_ids = []
        self._columns = {f: [] for f in self.schema}

    def close(self) -> "ChunkedRecordStore":
        """Flush the trailing chunk, write the manifest, open the store."""
        if self._closed:
            raise RuntimeError("writer is closed")
        self._flush_chunk()
        manifest = {
            "version": 1,
            "name": self.name,
            "schema": list(self.schema),
            "chunk_size": self.chunk_size,
            "n_records": self._n_records,
            "n_chunks": self._n_chunks,
            # SHA-256 per chunk file; additive key, so stores written
            # before it existed still open (loads just go unverified).
            "chunk_digests": self._chunk_digests,
        }
        atomic_write_text(
            self.directory / _MANIFEST,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            fsync_dir=True,
        )
        self._closed = True
        return ChunkedRecordStore(self.directory)


class _ResidentChunk:
    """One loaded chunk: its column arrays plus lazy normalised text."""

    __slots__ = ("record_ids", "entity_ids", "columns", "normalised")

    def __init__(self, record_ids, entity_ids, columns):
        self.record_ids = record_ids
        self.entity_ids = entity_ids
        self.columns = columns
        self.normalised: dict[str, list] = {}


class ChunkedRecordStore(BaseRecordStore):
    """A record store backed by columnar npz chunks on disk.

    Implements the same interface as the in-memory
    :class:`~repro.pipeline.records.RecordStore` but keeps at most
    ``cache_chunks`` chunks resident (LRU), so peak memory is
    ``O(cache_chunks * chunk_size)`` records regardless of pool size.
    Normalised blocking keys are cached per resident chunk — eviction
    bounds that cache too — and :meth:`entity_ids` caches only the
    compact int64 array (8 bytes per record).

    Parameters
    ----------
    directory:
        A directory previously written by :class:`ChunkedStoreWriter`
        (or the :meth:`create` / :meth:`from_store` conveniences).
    cache_chunks:
        Resident-chunk budget of the LRU cache.
    """

    def __init__(self, directory, *, cache_chunks: int = _DEFAULT_CACHE_CHUNKS):
        if cache_chunks < 1:
            raise ValueError(f"cache_chunks must be >= 1; got {cache_chunks}")
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"{manifest_path} not found; not a chunked record store"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptStateError(
                f"chunked-store manifest {manifest_path} is not valid "
                f"JSON: {exc}", path=manifest_path) from exc
        if manifest.get("version") != 1:
            raise ValueError(
                f"unsupported chunked-store version {manifest.get('version')!r}"
            )
        self.schema = tuple(manifest["schema"])
        self.name = manifest["name"]
        self.chunk_size = int(manifest["chunk_size"])
        self._n_records = int(manifest["n_records"])
        self._n_chunks = int(manifest["n_chunks"])
        # Absent in stores written before the integrity layer; chunks
        # then load unverified.
        self._chunk_digests = list(manifest.get("chunk_digests") or [])
        self.cache_chunks = int(cache_chunks)
        self._cache: OrderedDict[int, _ResidentChunk] = OrderedDict()
        self._entity_ids: np.ndarray | None = None

    # -- construction conveniences ------------------------------------

    @classmethod
    def create(
        cls,
        directory,
        schema,
        records,
        *,
        name: str = "db",
        chunk_size: int = _DEFAULT_CHUNK_SIZE,
        cache_chunks: int = _DEFAULT_CACHE_CHUNKS,
    ) -> "ChunkedRecordStore":
        """Stream ``records`` (any iterable) into a new on-disk store."""
        writer = ChunkedStoreWriter(
            directory, schema, name=name, chunk_size=chunk_size
        )
        writer.extend(records)
        store = writer.close()
        store.cache_chunks = int(cache_chunks)
        return store

    @classmethod
    def from_store(
        cls,
        directory,
        store: BaseRecordStore,
        *,
        chunk_size: int = _DEFAULT_CHUNK_SIZE,
        cache_chunks: int = _DEFAULT_CACHE_CHUNKS,
    ) -> "ChunkedRecordStore":
        """Spill an existing store to disk chunk by chunk."""
        return cls.create(
            directory,
            store.schema,
            iter(store),
            name=store.name,
            chunk_size=chunk_size,
            cache_chunks=cache_chunks,
        )

    # -- chunk access --------------------------------------------------

    @property
    def n_chunks(self) -> int:
        return self._n_chunks

    def _load_chunk(self, index: int) -> _ResidentChunk:
        if index in self._cache:
            self._cache.move_to_end(index)
            return self._cache[index]
        path = self.directory / _CHUNK_FORMAT.format(index=index)
        if index < len(self._chunk_digests):
            actual = file_digest(path)
            if actual != self._chunk_digests[index]:
                raise CorruptStateError(
                    f"chunk {path} failed its SHA-256 check (manifest "
                    f"records {self._chunk_digests[index][:12]}…, file "
                    f"hashes {actual[:12]}…)", path=path)
        with np.load(path, allow_pickle=True) as payload:
            chunk = _ResidentChunk(
                payload["record_ids"],
                payload["entity_ids"],
                {name: payload[f"field_{name}"] for name in self.schema},
            )
        self._cache[index] = chunk
        while len(self._cache) > self.cache_chunks:
            self._cache.popitem(last=False)
        return chunk

    def __len__(self) -> int:
        return self._n_records

    def __getitem__(self, index: int) -> Record:
        if index < 0:
            index += self._n_records
        if not 0 <= index < self._n_records:
            raise IndexError(f"record index {index} out of range")
        chunk = self._load_chunk(index // self.chunk_size)
        offset = index % self.chunk_size
        return Record(
            record_id=int(chunk.record_ids[offset]),
            entity_id=int(chunk.entity_ids[offset]),
            fields={
                name: chunk.columns[name][offset]
                for name in self.schema
                if chunk.columns[name][offset] is not None
            },
        )

    def __iter__(self):
        for chunk_index in range(self._n_chunks):
            chunk = self._load_chunk(chunk_index)
            for offset in range(len(chunk.record_ids)):
                yield Record(
                    record_id=int(chunk.record_ids[offset]),
                    entity_id=int(chunk.entity_ids[offset]),
                    fields={
                        name: chunk.columns[name][offset]
                        for name in self.schema
                        if chunk.columns[name][offset] is not None
                    },
                )

    # -- columnar access ----------------------------------------------

    def _iter_native_chunks(self, name: str, *, normalised: bool):
        """Yield one list per on-disk chunk, optionally normalised."""
        self._check_field(name)
        for chunk_index in range(self._n_chunks):
            chunk = self._load_chunk(chunk_index)
            if not normalised:
                yield list(chunk.columns[name])
                continue
            if name not in chunk.normalised:
                chunk.normalised[name] = [
                    normalise_string(value) for value in chunk.columns[name]
                ]
            yield chunk.normalised[name]

    @staticmethod
    def _rechunk(blocks, chunk_size: int | None):
        """Re-slice native chunk blocks into ``chunk_size``-sized lists."""
        if chunk_size is None:
            yield from blocks
            return
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
        buffer: list = []
        for block in blocks:
            buffer.extend(block)
            while len(buffer) >= chunk_size:
                yield buffer[:chunk_size]
                buffer = buffer[chunk_size:]
        if buffer:
            yield buffer

    def iter_field_chunks(self, name: str, chunk_size: int | None = None):
        """Stream one field's values chunk-wise from disk."""
        yield from self._rechunk(
            self._iter_native_chunks(name, normalised=False), chunk_size
        )

    def iter_normalised_chunks(self, name: str, chunk_size: int | None = None):
        """Stream normalised blocking keys chunk-wise from disk.

        Normalised text is cached on the resident chunk, so the LRU
        budget bounds this cache exactly like the raw columns.
        """
        yield from self._rechunk(
            self._iter_native_chunks(name, normalised=True), chunk_size
        )

    def normalised_field(self, name: str) -> list:
        """Whole-column normalised keys, materialised but never cached.

        The disk-backed store deliberately keeps no whole-column caches
        (that would defeat the resident-memory bound); exact blocking
        schemes that need the full key list pay the materialisation on
        every call, which is why they are the small-pool oracle and
        :func:`~repro.pipeline.blocking.minhash_lsh_pairs` (which
        consumes :meth:`iter_normalised_chunks`) is the at-scale path.
        """
        out: list = []
        for block in self._iter_native_chunks(name, normalised=True):
            out.extend(block)
        return out

    def entity_ids(self) -> np.ndarray:
        if self._entity_ids is None:
            parts = [
                self._load_chunk(i).entity_ids for i in range(self._n_chunks)
            ]
            self._entity_ids = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            ).astype(np.int64, copy=False)
        return self._entity_ids
