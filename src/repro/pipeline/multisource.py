"""Multi-source ER support (paper Remark 1).

The paper notes OASIS "applies equally well to multi-source ER on
relations over larger product spaces".  The sampler consumes only
(scores, predictions, oracle) over a pool, so multi-source reduces to
pool construction: concatenate the sources into one global record
index space and enumerate cross-source candidate pairs.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.records import RecordStore

__all__ = ["MultiSourcePool", "multi_source_pairs"]


class MultiSourcePool:
    """K record sources merged into one global index space.

    Global record index = source offset + local index; the pool's
    candidate pairs are all cross-source pairs (records of the same
    source are never candidates, matching two-source conventions —
    include a source twice to deduplicate within it).
    """

    def __init__(self, stores):
        stores = list(stores)
        if len(stores) < 2:
            raise ValueError(f"need at least two sources; got {len(stores)}")
        self.stores = stores
        sizes = [len(store) for store in stores]
        if any(size == 0 for size in sizes):
            raise ValueError("every source must be non-empty")
        self.offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self.total_records = int(np.sum(sizes))

    @property
    def n_sources(self) -> int:
        return len(self.stores)

    def global_index(self, source: int, local_index: int) -> int:
        """Map a (source, local index) pair to the global index."""
        if not 0 <= source < self.n_sources:
            raise IndexError(f"source {source} out of range")
        if not 0 <= local_index < len(self.stores[source]):
            raise IndexError(
                f"record {local_index} out of range for source {source}"
            )
        return int(self.offsets[source]) + local_index

    def locate(self, global_index: int) -> tuple[int, int]:
        """Map a global index back to (source, local index)."""
        if not 0 <= global_index < self.total_records:
            raise IndexError(f"global index {global_index} out of range")
        source = int(np.searchsorted(self.offsets, global_index, side="right")) - 1
        return source, global_index - int(self.offsets[source])

    def record(self, global_index: int):
        """The record at a global index."""
        source, local = self.locate(global_index)
        return self.stores[source][local]

    def entity_ids(self) -> np.ndarray:
        """Entity ids across all sources, in global index order."""
        return np.concatenate([store.entity_ids() for store in self.stores])

    def cross_source_pairs(self) -> np.ndarray:
        """All cross-source candidate pairs as global (i, j) indices."""
        return multi_source_pairs(self.stores)

    def true_labels(self, pairs: np.ndarray) -> np.ndarray:
        """Ground-truth labels for global-index pairs via entity ids."""
        pairs = np.asarray(pairs, dtype=np.int64)
        ids = self.entity_ids()
        return (ids[pairs[:, 0]] == ids[pairs[:, 1]]).astype(np.int8)


def multi_source_pairs(stores) -> np.ndarray:
    """All cross-source pairs over K sources, in global indices.

    For sources of sizes n_1..n_K this enumerates sum_{a<b} n_a * n_b
    pairs — the multi-source product space of Remark 1.
    """
    stores = list(stores)
    if len(stores) < 2:
        raise ValueError(f"need at least two sources; got {len(stores)}")
    sizes = [len(store) for store in stores]
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]]).astype(np.int64)

    blocks = []
    for a in range(len(stores)):
        for b in range(a + 1, len(stores)):
            left = np.repeat(np.arange(sizes[a]) + offsets[a], sizes[b])
            right = np.tile(np.arange(sizes[b]) + offsets[b], sizes[a])
            blocks.append(np.column_stack([left, right]))
    return np.concatenate(blocks, axis=0)
