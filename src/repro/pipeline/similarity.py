"""Attribute-level similarity measures (paper section 6.1.2).

The paper's feature set: character-trigram Jaccard for short text,
tf-idf cosine for long text, normalised absolute difference for numeric
fields.  Edit-distance measures (Levenshtein, Jaro, Jaro-Winkler,
Monge-Elkan) are included as the standard ER scoring toolbox the
background section describes.

All similarities return values in [0, 1], with 1 meaning identical.
Empty/missing strings are handled explicitly: two empty strings give
similarity 0 (missing data carries no evidence of a match).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

__all__ = [
    "ngrams",
    "jaccard_ngram_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "monge_elkan_similarity",
    "normalised_numeric_similarity",
    "TfidfVectoriser",
    "cosine_tfidf_similarity",
]


def ngrams(text: str, n: int = 3, *, pad: bool = True) -> set:
    """Character n-grams of ``text`` as a set.

    Padding with ``n - 1`` sentinel characters on each side makes short
    strings comparable (standard practice for trigram Jaccard).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1; got {n}")
    if not text:
        return set()
    if pad:
        padding = "\x00" * (n - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < n:
        return {text}
    return {text[i : i + n] for i in range(len(text) - n + 1)}


def jaccard_ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of character n-gram sets (short-text feature)."""
    grams_a = ngrams(a, n)
    grams_b = ngrams(b, n)
    if not grams_a and not grams_b:
        return 0.0
    union = len(grams_a | grams_b)
    if union == 0:
        return 0.0
    return len(grams_a & grams_b) / union


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance with unit insert/delete/substitute costs.

    Classic two-row dynamic programme, O(len(a) * len(b)).
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a [0, 1] similarity."""
    if not a and not b:
        return 0.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: matching characters within a sliding window."""
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len(a)
    matched_b = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    # Count transpositions between the matched subsequences.
    seq_a = [ch for i, ch in enumerate(a) if matched_a[i]]
    seq_b = [ch for j, ch in enumerate(b) if matched_b[j]]
    transpositions = sum(x != y for x, y in zip(seq_a, seq_b)) // 2
    m = matches
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by shared prefixes (up to 4 chars)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25]; got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def monge_elkan_similarity(a: str, b: str, inner=jaro_winkler_similarity) -> float:
    """Monge-Elkan: mean best inner similarity over tokens of ``a``.

    Note the measure is asymmetric by definition; symmetrise by
    averaging both directions if needed.
    """
    tokens_a = a.split()
    tokens_b = b.split()
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(inner(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def normalised_numeric_similarity(x: float, y: float, scale: float | None = None) -> float:
    """Numeric similarity: ``1 - |x - y| / scale`` clipped to [0, 1].

    ``scale`` defaults to ``max(|x|, |y|)`` (relative deviation).  NaN
    inputs (missing after imputation failure) give similarity 0.
    """
    x = float(x)
    y = float(y)
    if math.isnan(x) or math.isnan(y):
        return 0.0
    if scale is None:
        scale = max(abs(x), abs(y))
    if scale <= 0:
        return 1.0 if x == y else 0.0
    return max(0.0, 1.0 - abs(x - y) / scale)


class TfidfVectoriser:
    """Minimal tf-idf vectoriser over whitespace tokens.

    Fits an idf table on a corpus and transforms documents into sparse
    (dict) tf-idf vectors with L2 normalisation — enough to compute the
    cosine similarities the pipeline uses for long text fields.
    """

    def __init__(self, *, min_df: int = 1, sublinear_tf: bool = True):
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1; got {min_df}")
        self.min_df = min_df
        self.sublinear_tf = sublinear_tf
        self.idf_: dict[str, float] | None = None
        self._n_docs = 0

    def fit(self, corpus) -> "TfidfVectoriser":
        doc_freq: Counter = Counter()
        n_docs = 0
        for document in corpus:
            n_docs += 1
            doc_freq.update(set(document.split()))
        self._n_docs = n_docs
        self.idf_ = {
            token: math.log((1 + n_docs) / (1 + df)) + 1.0
            for token, df in doc_freq.items()
            if df >= self.min_df
        }
        return self

    def transform_one(self, document: str) -> dict[str, float]:
        """tf-idf vector of a single document as a token -> weight dict."""
        if self.idf_ is None:
            raise RuntimeError("vectoriser must be fitted before transform")
        counts = Counter(document.split())
        vector: dict[str, float] = {}
        for token, count in counts.items():
            idf = self.idf_.get(token)
            if idf is None:
                continue
            tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            vector[token] = tf * idf
        norm = math.sqrt(sum(v * v for v in vector.values()))
        if norm > 0:
            vector = {t: v / norm for t, v in vector.items()}
        return vector

    @staticmethod
    def cosine(vec_a: dict[str, float], vec_b: dict[str, float]) -> float:
        """Cosine similarity of two L2-normalised sparse vectors."""
        if len(vec_a) > len(vec_b):
            vec_a, vec_b = vec_b, vec_a
        return sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())


def cosine_tfidf_similarity(a: str, b: str, vectoriser: TfidfVectoriser) -> float:
    """tf-idf cosine similarity between two documents (long-text feature)."""
    return TfidfVectoriser.cosine(
        vectoriser.transform_one(a), vectoriser.transform_one(b)
    )
