"""Attribute-level similarity measures (paper section 6.1.2).

The paper's feature set: character-trigram Jaccard for short text,
tf-idf cosine for long text, normalised absolute difference for numeric
fields.  Edit-distance measures (Levenshtein, Jaro, Jaro-Winkler,
Monge-Elkan) are included as the standard ER scoring toolbox the
background section describes.

All similarities return values in [0, 1], with 1 meaning identical.
Empty/missing strings are handled explicitly: two empty strings give
similarity 0 (missing data carries no evidence of a match).

Two families live here:

* scalar measures (``jaccard_ngram_similarity`` and friends) — one
  Python call per pair, the reference semantics;
* array kernels (:class:`TokenSetMatrix`, :class:`SparseVectorMatrix`,
  :func:`jaccard_pairs`, :func:`cosine_pairs`,
  :func:`numeric_similarity_pairs`) — contiguous NumPy encodings of a
  whole record column that score an entire pair block per call.  These
  back the vectorised :class:`~repro.pipeline.features.PairFeatureExtractor`
  hot path.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

__all__ = [
    "ngrams",
    "jaccard_ngram_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "monge_elkan_similarity",
    "normalised_numeric_similarity",
    "TfidfVectoriser",
    "cosine_tfidf_similarity",
    "build_token_vocabulary",
    "TokenSetMatrix",
    "SparseVectorMatrix",
    "jaccard_pairs",
    "cosine_pairs",
    "numeric_similarity_pairs",
]


def ngrams(text: str, n: int = 3, *, pad: bool = True) -> set:
    """Character n-grams of ``text`` as a set.

    Padding with ``n - 1`` sentinel characters on each side makes short
    strings comparable (standard practice for trigram Jaccard).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1; got {n}")
    if not text:
        return set()
    if pad:
        padding = "\x00" * (n - 1)
        text = f"{padding}{text}{padding}"
    if len(text) < n:
        return {text}
    return {text[i : i + n] for i in range(len(text) - n + 1)}


def jaccard_ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Jaccard similarity of character n-gram sets (short-text feature)."""
    grams_a = ngrams(a, n)
    grams_b = ngrams(b, n)
    if not grams_a and not grams_b:
        return 0.0
    union = len(grams_a | grams_b)
    if union == 0:
        return 0.0
    return len(grams_a & grams_b) / union


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance with unit insert/delete/substitute costs.

    Classic two-row dynamic programme, O(len(a) * len(b)).
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a [0, 1] similarity."""
    if not a and not b:
        return 0.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: matching characters within a sliding window."""
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len(a)
    matched_b = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not matched_b[j] and b[j] == ch:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    # Count transpositions between the matched subsequences.
    seq_a = [ch for i, ch in enumerate(a) if matched_a[i]]
    seq_b = [ch for j, ch in enumerate(b) if matched_b[j]]
    transpositions = sum(x != y for x, y in zip(seq_a, seq_b)) // 2
    m = matches
    return (m / len(a) + m / len(b) + (m - transpositions) / m) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by shared prefixes (up to 4 chars)."""
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25]; got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a[:4], b[:4]):
        if ch_a != ch_b:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def monge_elkan_similarity(a: str, b: str, inner=jaro_winkler_similarity) -> float:
    """Monge-Elkan: mean best inner similarity over tokens of ``a``.

    Note the measure is asymmetric by definition; symmetrise by
    averaging both directions if needed.
    """
    tokens_a = a.split()
    tokens_b = b.split()
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(inner(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def normalised_numeric_similarity(x: float, y: float, scale: float | None = None) -> float:
    """Numeric similarity: ``1 - |x - y| / scale`` clipped to [0, 1].

    ``scale`` defaults to ``max(|x|, |y|)`` (relative deviation).  NaN
    inputs (missing after imputation failure) give similarity 0.
    """
    x = float(x)
    y = float(y)
    if math.isnan(x) or math.isnan(y):
        return 0.0
    if scale is None:
        scale = max(abs(x), abs(y))
    if scale <= 0:
        return 1.0 if x == y else 0.0
    return max(0.0, 1.0 - abs(x - y) / scale)


class TfidfVectoriser:
    """Minimal tf-idf vectoriser over whitespace tokens.

    Fits an idf table on a corpus and transforms documents into sparse
    (dict) tf-idf vectors with L2 normalisation — enough to compute the
    cosine similarities the pipeline uses for long text fields.
    """

    def __init__(self, *, min_df: int = 1, sublinear_tf: bool = True):
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1; got {min_df}")
        self.min_df = min_df
        self.sublinear_tf = sublinear_tf
        self.idf_: dict[str, float] | None = None
        self._n_docs = 0
        self._token_ids: dict[str, int] | None = None

    def fit(self, corpus) -> "TfidfVectoriser":
        doc_freq: Counter = Counter()
        n_docs = 0
        for document in corpus:
            n_docs += 1
            doc_freq.update(set(document.split()))
        self._n_docs = n_docs
        self.idf_ = {
            token: math.log((1 + n_docs) / (1 + df)) + 1.0
            for token, df in doc_freq.items()
            if df >= self.min_df
        }
        self._token_ids = None  # refit invalidates the cached vocabulary ids
        return self

    def transform_one(self, document: str) -> dict[str, float]:
        """tf-idf vector of a single document as a token -> weight dict."""
        if self.idf_ is None:
            raise RuntimeError("vectoriser must be fitted before transform")
        counts = Counter(document.split())
        vector: dict[str, float] = {}
        for token, count in counts.items():
            idf = self.idf_.get(token)
            if idf is None:
                continue
            tf = 1.0 + math.log(count) if self.sublinear_tf else float(count)
            vector[token] = tf * idf
        norm = math.sqrt(sum(v * v for v in vector.values()))
        if norm > 0:
            vector = {t: v / norm for t, v in vector.items()}
        return vector

    @staticmethod
    def cosine(vec_a: dict[str, float], vec_b: dict[str, float]) -> float:
        """Cosine similarity of two L2-normalised sparse vectors."""
        if len(vec_a) > len(vec_b):
            vec_a, vec_b = vec_b, vec_a
        return sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())

    def token_ids(self) -> dict[str, int]:
        """Dense integer id per fitted token (sorted-token order)."""
        if self.idf_ is None:
            raise RuntimeError("vectoriser must be fitted before transform")
        if self._token_ids is None:
            self._token_ids = {t: i for i, t in enumerate(sorted(self.idf_))}
        return self._token_ids

    def transform_matrix(self, corpus) -> "SparseVectorMatrix":
        """Encode a corpus as one :class:`SparseVectorMatrix`.

        Row ``i`` holds the same tf-idf weights ``transform_one`` would
        produce for ``corpus[i]``, keyed by the shared dense token ids of
        :meth:`token_ids` — the array-backed input of
        :func:`cosine_pairs`.
        """
        token_ids = self.token_ids()
        idf = np.zeros(len(token_ids), dtype=float)
        for token, token_id in token_ids.items():
            idf[token_id] = self.idf_[token]
        # ``corpus`` may be any iterable (e.g. a chunked-store column
        # stream); rows are encoded one at a time, never materialising
        # the document list.
        indptr: list[int] = [0]
        row_indices: list[np.ndarray] = []
        row_data: list[np.ndarray] = []
        for document in corpus:
            ids: list[int] = []
            tfs: list[float] = []
            for token, count in Counter(document.split()).items():
                token_id = token_ids.get(token)
                if token_id is None:
                    continue
                ids.append(token_id)
                tfs.append(1.0 + math.log(count) if self.sublinear_tf else float(count))
            ids_arr = np.asarray(ids, dtype=np.int64)
            order = np.argsort(ids_arr)
            ids_arr = ids_arr[order]
            weights = np.asarray(tfs, dtype=float)[order] * idf[ids_arr]
            norm = math.sqrt(float(np.dot(weights, weights)))
            if norm > 0:
                weights = weights / norm
            indptr.append(indptr[-1] + len(ids_arr))
            row_indices.append(ids_arr)
            row_data.append(weights)
        indices = (
            np.concatenate(row_indices) if row_indices else np.empty(0, np.int64)
        )
        data = np.concatenate(row_data) if row_data else np.empty(0, float)
        return SparseVectorMatrix(
            np.asarray(indptr, dtype=np.int64), indices, data, len(token_ids)
        )


def cosine_tfidf_similarity(a: str, b: str, vectoriser: TfidfVectoriser) -> float:
    """tf-idf cosine similarity between two documents (long-text feature)."""
    return TfidfVectoriser.cosine(
        vectoriser.transform_one(a), vectoriser.transform_one(b)
    )


# --------------------------------------------------------------------------
# Array-backed batch kernels.
#
# A record column is encoded once (at extractor fit time) into CSR-style
# contiguous arrays; each kernel then scores an (n,) block of row pairs
# with whole-array operations only.  The workhorse is a segmented merge:
# every token id is lifted to the per-pair key ``pair * n_tokens + token``,
# which makes both gathered operands globally sorted, so one stable sort
# (timsort merges the two pre-sorted runs in linear time) lines up the
# shared tokens of every pair at once.
# --------------------------------------------------------------------------

# A bitmap row costs ~n_tokens/64 words per intersection while the merge
# costs ~row length; prefer bitmaps only while the vocabulary is within
# this factor of the mean row length (and small enough to store).
_BITMAP_DENSITY_FACTOR = 256
_BITMAP_MAX_TOKENS = 65536
# Bound the transient (block, words) gathers of the bitmap path.
_BITMAP_BLOCK_WORDS = 4_000_000


def build_token_vocabulary(token_sets) -> dict[str, int]:
    """Dense id per distinct token across ``token_sets`` (sorted order).

    The shared vocabulary that makes two :class:`TokenSetMatrix` columns
    (one per record store) comparable.
    """
    universe: set = set()
    for tokens in token_sets:
        universe.update(tokens)
    return {token: i for i, token in enumerate(sorted(universe))}


def _gather_rows(indptr: np.ndarray, rows: np.ndarray):
    """Lengths and flat element positions of CSR ``rows``, in row order."""
    lens = indptr[rows + 1] - indptr[rows]
    total = int(lens.sum())
    cum = np.cumsum(lens) - lens
    flat = np.repeat(indptr[rows] - cum, lens) + np.arange(total, dtype=np.int64)
    return lens, flat


class TokenSetMatrix:
    """A record column of token *sets*, CSR-encoded for batch kernels.

    Row ``i`` is the sorted array of dense token ids
    ``indices[indptr[i]:indptr[i+1]]`` — e.g. the character trigrams of
    record ``i``'s normalised field value.  Both stores of a comparison
    must be encoded against the same vocabulary (see
    :func:`build_token_vocabulary`).
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n_tokens: int):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.n_tokens = int(n_tokens)
        if self.indptr.ndim != 1 or len(self.indptr) == 0:
            raise ValueError("indptr must be a non-empty 1-d array")
        if int(self.indptr[-1]) != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        self._bitmap: np.ndarray | None = None

    @classmethod
    def from_sets(cls, token_sets, vocabulary: dict[str, int]) -> "TokenSetMatrix":
        """Encode per-record token sets; tokens outside the vocabulary drop.

        ``token_sets`` may be any iterable (a list, or a streaming
        generator over a chunked column) — rows are encoded one at a
        time and only the CSR arrays are retained.
        """
        indptr: list[int] = [0]
        rows: list[np.ndarray] = []
        for tokens in token_sets:
            ids = np.asarray(
                [vocabulary[t] for t in tokens if t in vocabulary], dtype=np.int64
            )
            ids.sort()
            rows.append(ids)
            indptr.append(indptr[-1] + len(ids))
        indices = np.concatenate(rows) if rows else np.empty(0, np.int64)
        return cls(np.asarray(indptr, dtype=np.int64), indices, len(vocabulary))

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def bitmap(self) -> np.ndarray:
        """Per-row token bitmaps (lazily built, cached) for popcount kernels."""
        if self._bitmap is None:
            words = max(1, (self.n_tokens + 63) // 64)
            bitmap = np.zeros((len(self), words), dtype=np.uint64)
            row_of = np.repeat(
                np.arange(len(self), dtype=np.int64), self.row_lengths()
            )
            np.bitwise_or.at(
                bitmap,
                (row_of, self.indices >> 6),
                np.uint64(1) << (self.indices & 63).astype(np.uint64),
            )
            self._bitmap = bitmap
        return self._bitmap


class SparseVectorMatrix:
    """A record column of sparse weighted vectors (CSR), e.g. tf-idf rows.

    ``indices`` are sorted dense token ids per row; ``data`` holds the
    aligned weights.  Input of :func:`cosine_pairs`.
    """

    def __init__(self, indptr, indices, data, n_tokens: int):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=float)
        self.n_tokens = int(n_tokens)
        if self.indptr.ndim != 1 or len(self.indptr) == 0:
            raise ValueError("indptr must be a non-empty 1-d array")
        if int(self.indptr[-1]) != len(self.indices) or len(self.indices) != len(self.data):
            raise ValueError("indptr, indices and data are inconsistent")
        self._shifted_indices: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.indptr) - 1

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def shifted_indices(self) -> np.ndarray:
        """Token ids pre-shifted into the high 32 bits (cached).

        Lets :func:`cosine_pairs` build its packed sort keys with one
        gather instead of gather + shift per call.
        """
        if self._shifted_indices is None:
            self._shifted_indices = self.indices << np.int64(32)
        return self._shifted_indices


def _check_pair_rows(rows_a, rows_b):
    rows_a = np.asarray(rows_a, dtype=np.int64)
    rows_b = np.asarray(rows_b, dtype=np.int64)
    if rows_a.ndim != 1 or rows_a.shape != rows_b.shape:
        raise ValueError(
            f"row index arrays must be 1-d and equal-length; "
            f"got {rows_a.shape} and {rows_b.shape}"
        )
    return rows_a, rows_b


def _merge_intersections(sets_a, rows_a, sets_b, rows_b) -> np.ndarray:
    """Per-pair intersection sizes via the segmented stable-sort merge."""
    n = len(rows_a)
    width = np.int64(max(sets_a.n_tokens, 1))
    lens_a, flat_a = _gather_rows(sets_a.indptr, rows_a)
    lens_b, flat_b = _gather_rows(sets_b.indptr, rows_b)
    base = np.arange(n, dtype=np.int64) * width
    keys = np.concatenate(
        [
            np.repeat(base, lens_a) + sets_a.indices[flat_a],
            np.repeat(base, lens_b) + sets_b.indices[flat_b],
        ]
    )
    # Both halves are sorted runs; a stable sort is one linear merge.
    keys.sort(kind="stable")
    duplicates = keys[1:][keys[1:] == keys[:-1]]
    return np.bincount(duplicates // width, minlength=n)[:n]


# np.bitwise_count arrived in NumPy 2.0; older installs use the merge
# kernel (identical results, no popcount acceleration).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _bitmap_intersections(sets_a, rows_a, sets_b, rows_b) -> np.ndarray:
    """Per-pair intersection sizes via bitmap AND + popcount."""
    if not _HAS_BITWISE_COUNT:
        raise RuntimeError(
            "jaccard_pairs(method='bitmap') requires NumPy >= 2.0 "
            "(np.bitwise_count); use method='merge' or 'auto'"
        )
    bitmap_a = sets_a.bitmap()
    bitmap_b = sets_b.bitmap()
    words = bitmap_a.shape[1]
    block = max(1, _BITMAP_BLOCK_WORDS // words)
    out = np.empty(len(rows_a), dtype=np.int64)
    for start in range(0, len(rows_a), block):
        stop = min(start + block, len(rows_a))
        both = bitmap_a[rows_a[start:stop]] & bitmap_b[rows_b[start:stop]]
        out[start:stop] = np.bitwise_count(both).sum(axis=1, dtype=np.int64)
    return out


def jaccard_pairs(
    sets_a: TokenSetMatrix,
    rows_a,
    sets_b: TokenSetMatrix,
    rows_b,
    *,
    method: str = "auto",
) -> np.ndarray:
    """Jaccard similarity for a whole block of row pairs.

    Bit-identical to calling ``jaccard_ngram_similarity`` per pair on the
    decoded sets: intersection and union sizes are exact integers, so the
    final division is the only floating-point step.

    Parameters
    ----------
    sets_a, sets_b:
        Columns encoded against one shared vocabulary.
    rows_a, rows_b:
        Equal-length 1-d arrays of row indices; pair ``k`` compares
        ``sets_a`` row ``rows_a[k]`` with ``sets_b`` row ``rows_b[k]``.
    method:
        ``"merge"`` (segmented sort merge, any vocabulary size),
        ``"bitmap"`` (popcount over per-row bitmaps, fastest for small
        vocabularies) or ``"auto"`` to choose by vocabulary density.
    """
    if sets_a.n_tokens != sets_b.n_tokens:
        raise ValueError("token-set matrices must share a vocabulary")
    if method not in ("auto", "merge", "bitmap"):
        raise ValueError(f"unknown method {method!r}")
    rows_a, rows_b = _check_pair_rows(rows_a, rows_b)
    n = len(rows_a)
    if n == 0:
        return np.zeros(0, dtype=float)
    lens_a = sets_a.indptr[rows_a + 1] - sets_a.indptr[rows_a]
    lens_b = sets_b.indptr[rows_b + 1] - sets_b.indptr[rows_b]
    if method == "auto":
        elements = len(sets_a.indices) + len(sets_b.indices)
        row_count = len(sets_a) + len(sets_b)
        mean_len = elements / max(row_count, 1)
        dense_enough = sets_a.n_tokens <= _BITMAP_DENSITY_FACTOR * max(mean_len, 1.0)
        method = (
            "bitmap"
            if _HAS_BITWISE_COUNT
            and 0 < sets_a.n_tokens <= _BITMAP_MAX_TOKENS
            and dense_enough
            else "merge"
        )
    if method == "bitmap":
        inter = _bitmap_intersections(sets_a, rows_a, sets_b, rows_b)
    else:
        inter = _merge_intersections(sets_a, rows_a, sets_b, rows_b)
    union = lens_a + lens_b - inter
    out = np.zeros(n, dtype=float)
    np.divide(inter, union, out=out, where=union > 0)
    return out


def cosine_pairs(
    docs_a: SparseVectorMatrix,
    rows_a,
    docs_b: SparseVectorMatrix,
    rows_b,
) -> np.ndarray:
    """Sparse dot product for a whole block of row pairs.

    Equivalent to ``TfidfVectoriser.cosine`` per pair up to summation
    order (a few ulps).  Shared tokens are aligned with the same
    segmented merge as :func:`jaccard_pairs`; element positions ride
    along packed into the low 32 bits of the sort key so the weights can
    be recovered without an indirect ``argsort``.
    """
    if docs_a.n_tokens != docs_b.n_tokens:
        raise ValueError("sparse-vector matrices must share a vocabulary")
    rows_a, rows_b = _check_pair_rows(rows_a, rows_b)
    n = len(rows_a)
    if n == 0:
        return np.zeros(0, dtype=float)
    width = np.int64(max(docs_a.n_tokens, 1))
    lens_a, flat_a = _gather_rows(docs_a.indptr, rows_a)
    lens_b, flat_b = _gather_rows(docs_b.indptr, rows_b)
    count_a = int(lens_a.sum())
    total = count_a + int(lens_b.sum())
    if total == 0:
        return np.zeros(n, dtype=float)
    base = np.arange(n, dtype=np.int64) * width
    if n * int(width) < 2**31 and total < 2**32:
        # Pack (key, gathered position) into one int64 so a single
        # stable sort both merges the runs and carries enough to find
        # each shared token's weights afterwards; weights are then
        # gathered only at the (few) shared positions.
        packed = np.concatenate(
            [
                np.repeat(base << np.int64(32), lens_a)
                + docs_a.shifted_indices()[flat_a],
                np.repeat(base << np.int64(32), lens_b)
                + docs_b.shifted_indices()[flat_b],
            ]
        )
        packed += np.arange(total, dtype=np.int64)
        packed.sort(kind="stable")
        keys = packed >> np.int64(32)
        shared = keys[1:] == keys[:-1]
        mask = np.int64(0xFFFFFFFF)
        # Adjacent equal keys are one element of each side (tokens are
        # unique within a row); positions tell which side and where.
        pos_hi = packed[1:][shared] & mask
        pos_lo = packed[:-1][shared] & mask

        def _weights(pos: np.ndarray) -> np.ndarray:
            out = np.empty(len(pos), dtype=float)
            from_a = pos < count_a
            out[from_a] = docs_a.data[flat_a[pos[from_a]]]
            out[~from_a] = docs_b.data[flat_b[pos[~from_a] - count_a]]
            return out

        products = _weights(pos_hi) * _weights(pos_lo)
        pair_ids = keys[1:][shared] // width
    else:
        keys = np.concatenate(
            [
                np.repeat(base, lens_a) + docs_a.indices[flat_a],
                np.repeat(base, lens_b) + docs_b.indices[flat_b],
            ]
        )
        values = np.concatenate([docs_a.data[flat_a], docs_b.data[flat_b]])
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        shared = keys[1:] == keys[:-1]
        products = values[1:][shared] * values[:-1][shared]
        pair_ids = keys[1:][shared] // width
    return np.bincount(pair_ids, weights=products, minlength=n)[:n].astype(float)


def numeric_similarity_pairs(x, y, scale=None) -> np.ndarray:
    """Vectorised :func:`normalised_numeric_similarity` over aligned arrays.

    NaN on either side gives 0; a non-positive scale degenerates to the
    equality indicator; otherwise ``max(0, 1 - |x - y| / scale)`` — the
    identical IEEE operations as the scalar measure, so results match
    bit for bit.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if scale is None:
        scale = np.maximum(np.abs(x), np.abs(y))
    else:
        scale = np.broadcast_to(np.asarray(scale, dtype=float), x.shape)
    out = np.zeros(x.shape, dtype=float)
    valid = ~(np.isnan(x) | np.isnan(y))
    positive = valid & (scale > 0)
    degenerate = valid & ~(scale > 0)
    out[positive] = np.maximum(
        0.0, 1.0 - np.abs(x[positive] - y[positive]) / scale[positive]
    )
    out[degenerate] = (x[degenerate] == y[degenerate]).astype(float)
    return out
