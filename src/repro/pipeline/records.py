"""Record and pair-space abstractions.

A :class:`RecordStore` is a minimal in-memory database table: a schema
(ordered field names) plus rows.  The pair space of two stores is the
candidate set the ER classifier scores; the :class:`MatchRelation`
holds the ground-truth relation R (paper Definition 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import ensure_rng

__all__ = [
    "Record",
    "RecordStore",
    "MatchRelation",
    "cross_product_pairs",
    "dedup_pairs",
    "build_pair_pool",
]


@dataclass(frozen=True)
class Record:
    """A single record: an id, an entity id (ground truth) and fields."""

    record_id: int
    entity_id: int
    fields: dict = field(default_factory=dict)

    def __getitem__(self, key):
        return self.fields[key]

    def get(self, key, default=None):
        return self.fields.get(key, default)


class RecordStore:
    """An ordered collection of records sharing a schema.

    Acts as one database (D1 or D2 in the paper).  Field access is
    validated against the schema so malformed generators fail fast.
    """

    def __init__(self, schema, records=None, name: str = "db"):
        self.schema = tuple(schema)
        self.name = name
        self._records: list[Record] = []
        if records is not None:
            for record in records:
                self.add(record)

    def add(self, record: Record) -> None:
        extra = set(record.fields) - set(self.schema)
        if extra:
            raise ValueError(
                f"record {record.record_id} has fields {sorted(extra)} "
                f"outside schema {self.schema}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def __iter__(self):
        return iter(self._records)

    def field_values(self, name: str) -> list:
        """All values of one field, in record order (None if missing)."""
        if name not in self.schema:
            raise KeyError(f"unknown field {name!r}; schema is {self.schema}")
        return [record.get(name) for record in self._records]

    def entity_ids(self) -> np.ndarray:
        return np.array([record.entity_id for record in self._records])


class MatchRelation:
    """Ground-truth matching relation R over a pair pool.

    Stores, for an explicit list of pairs ``(i, j)``, whether each pair
    is a true match.  Built from entity ids: a pair matches iff both
    records share an entity id.
    """

    def __init__(self, pairs, labels):
        self.pairs = np.asarray(pairs, dtype=np.int64)
        self.labels = np.asarray(labels, dtype=np.int8)
        if self.pairs.ndim != 2 or self.pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (n, 2); got {self.pairs.shape}")
        if len(self.pairs) != len(self.labels):
            raise ValueError("pairs and labels must have equal length")

    @classmethod
    def from_entity_ids(cls, store_a: RecordStore, store_b: RecordStore, pairs):
        """Label each pair by entity-id equality."""
        pairs = np.asarray(pairs, dtype=np.int64)
        ids_a = store_a.entity_ids()
        ids_b = store_b.entity_ids()
        labels = (ids_a[pairs[:, 0]] == ids_b[pairs[:, 1]]).astype(np.int8)
        return cls(pairs, labels)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def n_matches(self) -> int:
        return int(self.labels.sum())

    @property
    def imbalance_ratio(self) -> float:
        """Non-matches per match (paper Table 1's 'Imb. Ratio')."""
        matches = self.n_matches
        if matches == 0:
            return float("inf")
        return (len(self) - matches) / matches


def cross_product_pairs(n_a: int, n_b: int) -> np.ndarray:
    """Full pair space D1 x D2 as an (n_a * n_b, 2) index array."""
    left = np.repeat(np.arange(n_a), n_b)
    right = np.tile(np.arange(n_b), n_a)
    return np.column_stack([left, right])


def dedup_pairs(n: int) -> np.ndarray:
    """All unordered distinct pairs of a single source (deduplication).

    The paper treats cora deduplication as ER of a DB matched with
    itself; the candidate space is the set of pairs i < j.
    """
    i, j = np.triu_indices(n, k=1)
    return np.column_stack([i, j])


def build_pair_pool(
    pairs: np.ndarray,
    pool_size: int | None = None,
    *,
    guarantee_indices=None,
    random_state=None,
) -> np.ndarray:
    """Random pool of pairs (paper section 6.1.1 'Pooling').

    Draws ``pool_size`` pairs uniformly without replacement from the
    candidate set.  ``guarantee_indices`` forces specific rows (e.g.
    known matches) into the pool, mirroring pools constructed to hit a
    target match count (paper Table 2).
    """
    pairs = np.asarray(pairs)
    n = len(pairs)
    if pool_size is None or pool_size >= n:
        return pairs.copy()
    rng = ensure_rng(random_state)
    if guarantee_indices is None:
        chosen = rng.choice(n, size=pool_size, replace=False)
    else:
        guaranteed = np.unique(np.asarray(guarantee_indices, dtype=np.int64))
        if len(guaranteed) > pool_size:
            raise ValueError(
                f"{len(guaranteed)} guaranteed rows exceed pool size {pool_size}"
            )
        remaining = np.setdiff1d(np.arange(n), guaranteed, assume_unique=False)
        extra = rng.choice(
            remaining, size=pool_size - len(guaranteed), replace=False
        )
        chosen = np.concatenate([guaranteed, extra])
    chosen.sort()
    return pairs[chosen]
