"""Record and pair-space abstractions.

A record store is a minimal database table: a schema (ordered field
names) plus rows.  Two implementations share one interface
(:class:`BaseRecordStore`): the in-memory :class:`RecordStore` (the
small-pool fast path) and the disk-backed
:class:`~repro.pipeline.storage.ChunkedRecordStore` (the out-of-core
path for pools that do not fit in RAM).  Consumers that want to stay
memory-bounded must use the chunk-iterating column accessors
(:meth:`BaseRecordStore.iter_field_chunks` /
:meth:`BaseRecordStore.iter_normalised_chunks`) rather than
:meth:`BaseRecordStore.field_values`, which materialises a whole
column.

The pair space of two stores is the candidate set the ER classifier
scores; the :class:`MatchRelation` holds the ground-truth relation R
(paper Definition 1).  Exact pair spaces grow as ``n_a * n_b``, so the
eager constructors (:func:`cross_product_pairs` / :func:`dedup_pairs`)
guard against runaway allocations and the chunked generators
(:func:`iter_cross_product_pairs` / :func:`iter_dedup_pairs`) plus
:func:`sample_pair_pool` cover the sizes where eager construction is
infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pipeline.normalise import normalise_string
from repro.utils import ensure_rng

__all__ = [
    "Record",
    "BaseRecordStore",
    "RecordStore",
    "MatchRelation",
    "PairSpaceError",
    "DEFAULT_MAX_PAIR_ELEMENTS",
    "cross_product_pairs",
    "dedup_pairs",
    "iter_cross_product_pairs",
    "iter_dedup_pairs",
    "build_pair_pool",
    "sample_pair_pool",
]

# Default ceiling on eagerly-materialised pair spaces: 50M index pairs
# is an ~800 MB (n, 2) int64 array — roughly the largest allocation a
# laptop-class machine absorbs without swapping.  Beyond it the caller
# should block approximately or sample keys directly.
DEFAULT_MAX_PAIR_ELEMENTS = 50_000_000

# Rows per yielded block in the chunked pair generators.
_PAIR_CHUNK = 65_536

# Records per yielded block in the column chunk iterators.
_COLUMN_CHUNK = 8_192


class PairSpaceError(ValueError):
    """An exact pair space is too large to materialise.

    Raised by :func:`cross_product_pairs` / :func:`dedup_pairs` when the
    requested pair space exceeds the element limit.  The remedies are
    named in the message: approximate blocking
    (:func:`~repro.pipeline.blocking.minhash_lsh_pairs`), streaming
    (:func:`iter_cross_product_pairs`), or direct pool sampling
    (:func:`sample_pair_pool`).
    """


@dataclass(frozen=True)
class Record:
    """A single record: an id, an entity id (ground truth) and fields."""

    record_id: int
    entity_id: int
    fields: dict = field(default_factory=dict)

    def __getitem__(self, key):
        return self.fields[key]

    def get(self, key, default=None):
        return self.fields.get(key, default)


class BaseRecordStore:
    """Shared interface of the in-memory and chunked record stores.

    Subclasses provide ``__len__``, ``__getitem__``, ``__iter__`` and
    the chunk-iterating column accessor :meth:`iter_field_chunks`; the
    base class derives whole-column access, normalised-key caching and
    entity-id extraction from those.  Layers that must stay
    memory-bounded consume :meth:`iter_field_chunks` /
    :meth:`iter_normalised_chunks`; :meth:`field_values` is the
    explicit "materialise the whole column" escape hatch for small
    pools.
    """

    schema: tuple
    name: str

    def _check_field(self, name: str) -> None:
        if name not in self.schema:
            raise KeyError(f"unknown field {name!r}; schema is {self.schema}")

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __getitem__(self, index: int) -> Record:  # pragma: no cover - abstract
        raise NotImplementedError

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]

    def iter_field_chunks(self, name: str, chunk_size: int | None = None):
        """Yield one field's values in record order, one list per chunk.

        The memory-bounded column accessor: no layer consuming it holds
        more than ``chunk_size`` values at once.  Subclasses backed by
        disk shards override this to stream chunks without loading the
        column.
        """
        self._check_field(name)
        chunk = _COLUMN_CHUNK if chunk_size is None else int(chunk_size)
        if chunk < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk}")
        block: list = []
        for record in self:
            block.append(record.get(name))
            if len(block) >= chunk:
                yield block
                block = []
        if block:
            yield block

    def iter_normalised_chunks(self, name: str, chunk_size: int | None = None):
        """Yield normalised (blocking-key) values of a field, chunk-wise.

        Normalisation runs once per record per field; implementations
        cache the result (whole-column here, per-resident-chunk in the
        disk-backed store) so repeated blocking runs do not re-normalise.
        """
        keys = self.normalised_field(name)
        chunk = _COLUMN_CHUNK if chunk_size is None else int(chunk_size)
        for start in range(0, len(keys), chunk):
            yield keys[start : start + chunk]

    def field_values(self, name: str) -> list:
        """All values of one field, in record order (None if missing).

        Materialises the whole column — fine for small pools, wrong for
        out-of-core ones; prefer :meth:`iter_field_chunks` in code that
        must honour a memory budget.
        """
        out: list = []
        for block in self.iter_field_chunks(name):
            out.extend(block)
        return out

    def normalised_field(self, name: str) -> list:
        """Normalised blocking keys of a field, cached per (store, field).

        Every blocking scheme keys on :func:`normalise_string` of a
        field; caching here means N blocking runs over one store cost
        one normalisation pass, not N.
        """
        cache = getattr(self, "_normalised_cache", None)
        if cache is None:
            cache = {}
            self._normalised_cache = cache
        if name not in cache:
            self._check_field(name)
            cache[name] = [
                normalise_string(value) for value in self.field_values(name)
            ]
        return cache[name]

    def entity_ids(self) -> np.ndarray:
        return np.array([record.entity_id for record in self], dtype=np.int64)


class RecordStore(BaseRecordStore):
    """An ordered in-memory collection of records sharing a schema.

    Acts as one database (D1 or D2 in the paper).  Field access is
    validated against the schema so malformed generators fail fast.
    """

    def __init__(self, schema, records=None, name: str = "db"):
        self.schema = tuple(schema)
        self.name = name
        self._records: list[Record] = []
        self._normalised_cache: dict[str, list] = {}
        if records is not None:
            for record in records:
                self.add(record)

    def add(self, record: Record) -> None:
        extra = set(record.fields) - set(self.schema)
        if extra:
            raise ValueError(
                f"record {record.record_id} has fields {sorted(extra)} "
                f"outside schema {self.schema}"
            )
        self._records.append(record)
        # Appending invalidates any cached whole-column normalisation.
        if self._normalised_cache:
            self._normalised_cache.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def __iter__(self):
        return iter(self._records)

    def field_values(self, name: str) -> list:
        """All values of one field, in record order (None if missing)."""
        self._check_field(name)
        return [record.get(name) for record in self._records]

    def entity_ids(self) -> np.ndarray:
        return np.array([record.entity_id for record in self._records])


class MatchRelation:
    """Ground-truth matching relation R over a pair pool.

    Stores, for an explicit list of pairs ``(i, j)``, whether each pair
    is a true match.  Built from entity ids: a pair matches iff both
    records share an entity id.
    """

    def __init__(self, pairs, labels):
        self.pairs = np.asarray(pairs, dtype=np.int64)
        self.labels = np.asarray(labels, dtype=np.int8)
        if self.pairs.ndim != 2 or self.pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (n, 2); got {self.pairs.shape}")
        if len(self.pairs) != len(self.labels):
            raise ValueError("pairs and labels must have equal length")

    @classmethod
    def from_entity_ids(cls, store_a: BaseRecordStore, store_b: BaseRecordStore, pairs):
        """Label each pair by entity-id equality."""
        pairs = np.asarray(pairs, dtype=np.int64)
        ids_a = store_a.entity_ids()
        ids_b = store_b.entity_ids()
        labels = (ids_a[pairs[:, 0]] == ids_b[pairs[:, 1]]).astype(np.int8)
        return cls(pairs, labels)

    def __len__(self) -> int:
        return len(self.pairs)

    @property
    def n_matches(self) -> int:
        return int(self.labels.sum())

    @property
    def imbalance_ratio(self) -> float:
        """Non-matches per match (paper Table 1's 'Imb. Ratio')."""
        matches = self.n_matches
        if matches == 0:
            return float("inf")
        return (len(self) - matches) / matches


def _check_pair_space(n_pairs: int, what: str, max_elements: int | None) -> None:
    if max_elements is not None and n_pairs > max_elements:
        raise PairSpaceError(
            f"{what} holds {n_pairs:,} pairs, above the {max_elements:,}-"
            f"element limit for eager materialisation; use approximate "
            f"blocking (minhash_lsh_pairs), the streaming generator "
            f"(iter_cross_product_pairs / iter_dedup_pairs), or sample "
            f"the pool directly (sample_pair_pool). Pass "
            f"max_elements=None to override."
        )


def cross_product_pairs(
    n_a: int, n_b: int, *, max_elements: int | None = DEFAULT_MAX_PAIR_ELEMENTS
) -> np.ndarray:
    """Full pair space D1 x D2 as an (n_a * n_b, 2) index array.

    Raises :class:`PairSpaceError` when the pair space exceeds
    ``max_elements`` (default 50M pairs, ~800 MB) — at that size use
    :func:`~repro.pipeline.blocking.minhash_lsh_pairs`,
    :func:`iter_cross_product_pairs` or :func:`sample_pair_pool`
    instead of materialising the exact space.
    """
    _check_pair_space(n_a * n_b, f"cross product {n_a} x {n_b}", max_elements)
    left = np.repeat(np.arange(n_a), n_b)
    right = np.tile(np.arange(n_b), n_a)
    return np.column_stack([left, right])


def dedup_pairs(
    n: int, *, max_elements: int | None = DEFAULT_MAX_PAIR_ELEMENTS
) -> np.ndarray:
    """All unordered distinct pairs of a single source (deduplication).

    The paper treats cora deduplication as ER of a DB matched with
    itself; the candidate space is the set of pairs i < j.  The same
    ``max_elements`` guard as :func:`cross_product_pairs` applies.
    """
    _check_pair_space(n * (n - 1) // 2, f"dedup space of {n} records", max_elements)
    i, j = np.triu_indices(n, k=1)
    return np.column_stack([i, j])


def iter_cross_product_pairs(n_a: int, n_b: int, chunk_size: int = _PAIR_CHUNK):
    """Stream the full pair space D1 x D2 as (chunk, 2) blocks.

    The chunked counterpart of :func:`cross_product_pairs`: peak memory
    is one block of ``chunk_size`` pairs regardless of ``n_a * n_b``.
    Pairs arrive in the same lexicographic order the eager constructor
    produces.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
    total = n_a * n_b
    for start in range(0, total, chunk_size):
        keys = np.arange(start, min(start + chunk_size, total), dtype=np.int64)
        yield np.column_stack([keys // n_b, keys % n_b])


def iter_dedup_pairs(n: int, chunk_size: int = _PAIR_CHUNK):
    """Stream all unordered pairs i < j of one source as (chunk, 2) blocks.

    Same order as :func:`dedup_pairs`, peak memory bounded by
    ``chunk_size``.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
    block: list[np.ndarray] = []
    held = 0
    for i in range(n - 1):
        row = np.empty((n - 1 - i, 2), dtype=np.int64)
        row[:, 0] = i
        row[:, 1] = np.arange(i + 1, n)
        block.append(row)
        held += len(row)
        while held >= chunk_size:
            merged = np.concatenate(block) if len(block) > 1 else block[0]
            yield merged[:chunk_size]
            block = [merged[chunk_size:]]
            held = len(block[0])
    if held:
        merged = np.concatenate(block) if len(block) > 1 else block[0]
        if len(merged):
            yield merged


def build_pair_pool(
    pairs: np.ndarray,
    pool_size: int | None = None,
    *,
    guarantee_indices=None,
    random_state=None,
) -> np.ndarray:
    """Random pool of pairs (paper section 6.1.1 'Pooling').

    Draws ``pool_size`` pairs uniformly without replacement from the
    candidate set.  ``guarantee_indices`` forces specific rows (e.g.
    known matches) into the pool, mirroring pools constructed to hit a
    target match count (paper Table 2).

    This operates on an already-materialised candidate array; when the
    candidate space is the full cross product of two large stores, use
    :func:`sample_pair_pool`, which samples pair keys directly and
    never allocates the exact space.
    """
    pairs = np.asarray(pairs)
    n = len(pairs)
    if pool_size is None or pool_size >= n:
        return pairs.copy()
    rng = ensure_rng(random_state)
    if guarantee_indices is None:
        chosen = rng.choice(n, size=pool_size, replace=False)
    else:
        guaranteed = np.unique(np.asarray(guarantee_indices, dtype=np.int64))
        if len(guaranteed) > pool_size:
            raise ValueError(
                f"{len(guaranteed)} guaranteed rows exceed pool size {pool_size}"
            )
        remaining = np.setdiff1d(np.arange(n), guaranteed, assume_unique=False)
        extra = rng.choice(
            remaining, size=pool_size - len(guaranteed), replace=False
        )
        chosen = np.concatenate([guaranteed, extra])
    chosen.sort()
    return pairs[chosen]


def sample_pair_pool(
    n_a: int,
    n_b: int,
    pool_size: int,
    *,
    guarantee_pairs=None,
    random_state=None,
) -> np.ndarray:
    """Uniform pair pool from D1 x D2 without materialising the space.

    Samples ``pool_size`` distinct pairs uniformly from the
    ``n_a * n_b`` cross product by drawing integer pair keys
    ``a * n_b + b`` with rejection — peak memory is proportional to the
    pool, never the pair space, so pools over billion-pair spaces are
    cheap.  ``guarantee_pairs`` (an (m, 2) array, e.g. known matches)
    forces specific pairs into the pool, mirroring
    :func:`build_pair_pool`'s ``guarantee_indices``.

    Returns the pool sorted lexicographically (a deterministic order
    for a given seed).
    """
    total = n_a * n_b
    if pool_size > total:
        raise ValueError(
            f"pool_size {pool_size} exceeds the {total}-pair space"
        )
    rng = ensure_rng(random_state)
    if guarantee_pairs is None:
        guaranteed = np.empty(0, dtype=np.int64)
    else:
        guarantee_pairs = np.asarray(guarantee_pairs, dtype=np.int64)
        if guarantee_pairs.ndim != 2 or guarantee_pairs.shape[1] != 2:
            raise ValueError(
                f"guarantee_pairs must have shape (m, 2); "
                f"got {guarantee_pairs.shape}"
            )
        guaranteed = np.unique(
            guarantee_pairs[:, 0] * n_b + guarantee_pairs[:, 1]
        )
        if len(guaranteed) > pool_size:
            raise ValueError(
                f"{len(guaranteed)} guaranteed pairs exceed pool size {pool_size}"
            )
    keys = guaranteed
    while len(keys) < pool_size:
        deficit = pool_size - len(keys)
        # Oversample to absorb collisions; loops again if unlucky.
        draw = rng.integers(0, total, size=int(deficit * 1.3) + 16)
        keys = np.unique(np.concatenate([keys, draw]))
    if len(keys) > pool_size:
        extra = np.setdiff1d(keys, guaranteed, assume_unique=False)
        chosen = rng.choice(extra, size=pool_size - len(guaranteed), replace=False)
        keys = np.concatenate([guaranteed, chosen])
        keys.sort()
    return np.column_stack([keys // n_b, keys % n_b])
