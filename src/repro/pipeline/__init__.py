"""Entity-resolution pipeline substrate (paper section 6.1.2).

Implements the full pipeline the paper evaluates on: record storage,
string/numeric normalisation, attribute-level similarity measures,
pairwise feature construction, blocking for pool reduction, and the
threshold matcher producing a predicted resolution.
"""

from repro.pipeline.blocking import (
    minhash_lsh_pairs,
    sorted_neighbourhood_pairs,
    sorted_neighbourhood_pairs_external,
    sorted_neighbourhood_pairs_reference,
    token_blocking_pairs,
    token_blocking_pairs_reference,
)
from repro.pipeline.features import FieldSpec, PairFeatureExtractor
from repro.pipeline.matching import ERPipeline, threshold_match
from repro.pipeline.multisource import MultiSourcePool, multi_source_pairs
from repro.pipeline.normalise import impute_missing_numeric, normalise_string, to_float
from repro.pipeline.records import (
    DEFAULT_MAX_PAIR_ELEMENTS,
    BaseRecordStore,
    MatchRelation,
    PairSpaceError,
    Record,
    RecordStore,
    build_pair_pool,
    cross_product_pairs,
    dedup_pairs,
    iter_cross_product_pairs,
    iter_dedup_pairs,
    sample_pair_pool,
)
from repro.pipeline.storage import ChunkedRecordStore, ChunkedStoreWriter
from repro.pipeline.similarity import (
    SparseVectorMatrix,
    TokenSetMatrix,
    build_token_vocabulary,
    cosine_pairs,
    cosine_tfidf_similarity,
    jaccard_ngram_similarity,
    jaccard_pairs,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    ngrams,
    normalised_numeric_similarity,
    numeric_similarity_pairs,
    TfidfVectoriser,
)

__all__ = [
    "minhash_lsh_pairs",
    "sorted_neighbourhood_pairs",
    "sorted_neighbourhood_pairs_external",
    "sorted_neighbourhood_pairs_reference",
    "token_blocking_pairs",
    "token_blocking_pairs_reference",
    "FieldSpec",
    "PairFeatureExtractor",
    "ERPipeline",
    "threshold_match",
    "MultiSourcePool",
    "multi_source_pairs",
    "impute_missing_numeric",
    "normalise_string",
    "to_float",
    "BaseRecordStore",
    "ChunkedRecordStore",
    "ChunkedStoreWriter",
    "DEFAULT_MAX_PAIR_ELEMENTS",
    "MatchRelation",
    "PairSpaceError",
    "Record",
    "RecordStore",
    "build_pair_pool",
    "cross_product_pairs",
    "dedup_pairs",
    "iter_cross_product_pairs",
    "iter_dedup_pairs",
    "sample_pair_pool",
    "build_token_vocabulary",
    "cosine_pairs",
    "cosine_tfidf_similarity",
    "jaccard_ngram_similarity",
    "jaccard_pairs",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan_similarity",
    "ngrams",
    "normalised_numeric_similarity",
    "numeric_similarity_pairs",
    "SparseVectorMatrix",
    "TfidfVectoriser",
    "TokenSetMatrix",
]
