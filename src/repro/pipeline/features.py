"""Pairwise similarity-feature construction (paper section 6.1.2).

For each pair of corresponding fields the extractor computes one scalar
similarity feature: character-trigram Jaccard for short text, tf-idf
cosine for long text, normalised absolute difference for numerics.

The scoring pass is array-backed end to end: ``fit`` encodes every text
column into contiguous CSR structures (:class:`TokenSetMatrix` /
:class:`SparseVectorMatrix` over a shared vocabulary) and ``transform``
scores whole pair blocks with the batch kernels from
:mod:`repro.pipeline.similarity`, chunked to bound peak memory.  Column
encodings are built by streaming the stores' chunk-iterating accessors
(:meth:`~repro.pipeline.records.BaseRecordStore.iter_normalised_chunks`),
so fitting against a disk-backed
:class:`~repro.pipeline.storage.ChunkedRecordStore` never materialises
a whole raw column — only the compact CSR/float encodings are retained.
The original per-pair semantics survive as :meth:`transform_reference`,
the parity baseline for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.normalise import normalise_string, to_float
from repro.pipeline.records import BaseRecordStore as RecordStore
from repro.pipeline.similarity import (
    TfidfVectoriser,
    TokenSetMatrix,
    build_token_vocabulary,
    cosine_pairs,
    jaccard_pairs,
    ngrams,
    normalised_numeric_similarity,
    numeric_similarity_pairs,
)


def _jaccard_of_sets(grams_a: set, grams_b: set) -> float:
    """Jaccard similarity of two pre-computed n-gram sets."""
    if not grams_a and not grams_b:
        return 0.0
    union = len(grams_a | grams_b)
    if union == 0:
        return 0.0
    return len(grams_a & grams_b) / union

__all__ = ["FieldSpec", "PairFeatureExtractor"]

_FIELD_KINDS = ("short_text", "long_text", "numeric")

# Default pairs per kernel call; bounds the transient merge arrays at
# roughly chunk_size * (tokens per record pair) int64 elements, sized so
# a chunk's working set stays cache-resident on typical hardware.
_DEFAULT_CHUNK_SIZE = 4096

# Transient bytes a scored pair costs beyond its token payload
# (feature row, gathered index arrays, bincount scratch).
_PAIR_BASE_BYTES = 128.0
# Transient bytes per gathered token of a pair (int64 sort key + the
# stable sort's scratch copy + the gather itself).
_TOKEN_BYTES = 48.0


def _flat_normalised(store: RecordStore, field: str):
    """Stream one normalised column value at a time, chunk-buffered."""
    for chunk in store.iter_normalised_chunks(field):
        yield from chunk


def _numeric_column(store: RecordStore, field: str) -> np.ndarray:
    """Float-coerce a column chunk-wise, then mean-impute.

    Only the compact float64 array (8 bytes/record) is ever whole; the
    raw Python objects stream through a bounded chunk buffer.
    """
    parts = [
        np.asarray([to_float(v) for v in chunk], dtype=float)
        for chunk in store.iter_field_chunks(field)
    ]
    arr = np.concatenate(parts) if parts else np.empty(0, dtype=float)
    missing = np.isnan(arr)
    if missing.all():
        return np.zeros_like(arr)
    arr[missing] = arr[~missing].mean()
    return arr


@dataclass(frozen=True)
class FieldSpec:
    """How one schema field should be compared across sources.

    ``kind`` selects the similarity measure per the paper's recipe:
    ``short_text`` -> trigram Jaccard, ``long_text`` -> tf-idf cosine,
    ``numeric`` -> normalised absolute difference.
    """

    name: str
    kind: str = "short_text"

    def __post_init__(self):
        if self.kind not in _FIELD_KINDS:
            raise ValueError(
                f"kind must be one of {_FIELD_KINDS}; got {self.kind!r}"
            )


class PairFeatureExtractor:
    """Turns record pairs into similarity feature vectors.

    ``fit`` pre-computes imputed numerics and array-encoded
    trigram/tf-idf columns for both stores (streaming each column
    chunk-wise — in-memory and disk-backed stores produce bit-identical
    encodings); ``transform`` then maps an (n, 2) array of pair indices
    to an (n, n_features) matrix with vectorised kernels.  Fitting once
    and transforming many times keeps the full-pool scoring pass (the
    most expensive pipeline stage, per the paper's background section)
    tractable.

    Parameters
    ----------
    field_specs:
        One :class:`FieldSpec` per compared field.
    chunk_size:
        Pairs scored per kernel call in :meth:`transform`.  Smaller
        values bound peak memory; larger values amortise per-call
        overhead.  Overridable per ``transform`` call.
    memory_budget:
        Optional transient-memory target in bytes for the scoring
        pass.  When set (and ``chunk_size`` is not explicitly given to
        ``transform``), the effective chunk size is derived from the
        fitted columns' mean token payload so a kernel call's scratch
        stays within the budget.  This bounds *scoring* transients; the
        fitted encodings themselves are compact but proportional to the
        pool.
    """

    def __init__(
        self,
        field_specs,
        *,
        chunk_size: int = _DEFAULT_CHUNK_SIZE,
        memory_budget: int | None = None,
    ):
        self.field_specs = list(field_specs)
        if not self.field_specs:
            raise ValueError("at least one FieldSpec is required")
        names = [spec.name for spec in self.field_specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in specs: {names}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
        if memory_budget is not None and memory_budget < 1:
            raise ValueError(
                f"memory_budget must be >= 1 byte; got {memory_budget}"
            )
        self.chunk_size = int(chunk_size)
        self.memory_budget = memory_budget
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.field_specs)

    @property
    def feature_names(self) -> list[str]:
        return [f"{spec.name}:{spec.kind}" for spec in self.field_specs]

    def fit(self, store_a: RecordStore, store_b: RecordStore) -> "PairFeatureExtractor":
        """Pre-process both stores for fast pairwise comparison.

        Each column is consumed through the store's chunk-iterating
        accessors; text fields take two streaming passes (vocabulary /
        document frequencies, then encoding) so no whole raw column is
        ever resident.  Both passes are order-preserving and the
        vocabulary is order-independent, so the resulting encodings are
        bit-identical to a single in-memory pass.
        """
        # The hot path keeps only array encodings (numeric columns and
        # CSR matrices); the per-record sets/dicts that back
        # ``transform_reference`` are rebuilt lazily from the stores on
        # first use.
        self._store_a = store_a
        self._store_b = store_b
        self._columns_a = {}
        self._columns_b = {}
        self._norm_cache_a = {}
        self._norm_cache_b = {}
        self._reference_a = {}
        self._reference_b = {}
        self._vectorisers = {}
        self._matrix_a = {}
        self._matrix_b = {}
        for spec in self.field_specs:
            if spec.kind == "numeric":
                self._columns_a[spec.name] = _numeric_column(store_a, spec.name)
                self._columns_b[spec.name] = _numeric_column(store_b, spec.name)
            elif spec.kind == "long_text":
                # Pass 1: document frequencies over both corpora.
                vectoriser = TfidfVectoriser()
                vectoriser.fit(
                    text
                    for store in (store_a, store_b)
                    for text in _flat_normalised(store, spec.name)
                )
                self._vectorisers[spec.name] = vectoriser
                # Pass 2: per-store CSR encodings (streaming rows).
                self._matrix_a[spec.name] = vectoriser.transform_matrix(
                    _flat_normalised(store_a, spec.name)
                )
                self._matrix_b[spec.name] = vectoriser.transform_matrix(
                    _flat_normalised(store_b, spec.name)
                )
            else:
                # Pass 1: the shared trigram vocabulary (a set union, so
                # order-independent); pass 2 re-derives each record's
                # trigrams and encodes them against it.
                vocabulary = build_token_vocabulary(
                    ngrams(text)
                    for store in (store_a, store_b)
                    for text in _flat_normalised(store, spec.name)
                )
                self._matrix_a[spec.name] = TokenSetMatrix.from_sets(
                    (ngrams(t) for t in _flat_normalised(store_a, spec.name)),
                    vocabulary,
                )
                self._matrix_b[spec.name] = TokenSetMatrix.from_sets(
                    (ngrams(t) for t in _flat_normalised(store_b, spec.name)),
                    vocabulary,
                )
        self._fitted = True
        return self

    def _norm_column(self, name: str, side: str) -> list[str]:
        """Whole normalised column for the reference path (lazy)."""
        cache = self._norm_cache_a if side == "a" else self._norm_cache_b
        if name not in cache:
            store = self._store_a if side == "a" else self._store_b
            cache[name] = [normalise_string(v) for v in store.field_values(name)]
        return cache[name]

    def _reference_column(self, spec: FieldSpec, side: str):
        """Per-record sets/dicts for the reference path, built lazily.

        Deliberately materialises whole columns — the reference scorer
        is the small-pool parity oracle, not the out-of-core path.
        """
        if spec.kind == "numeric":
            columns = self._columns_a if side == "a" else self._columns_b
            return columns[spec.name]
        cache = self._reference_a if side == "a" else self._reference_b
        if spec.name not in cache:
            norm = self._norm_column(spec.name, side)
            if spec.kind == "long_text":
                vectoriser = self._vectorisers[spec.name]
                cache[spec.name] = [vectoriser.transform_one(t) for t in norm]
            else:
                cache[spec.name] = [ngrams(t) for t in norm]
        return cache[spec.name]

    def _validated_pairs(self, pairs) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("extractor must be fitted before transform")
        pairs = np.asarray(pairs, dtype=np.int64)
        # Accept an empty pair *list* ([], shape (0,) or (0, 2)); other
        # zero-size shapes are still malformed.
        if pairs.size == 0 and (pairs.ndim <= 1 or pairs.shape == (0, 2)):
            return np.empty((0, 2), dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (n, 2); got {pairs.shape}")
        return pairs

    def budget_chunk_size(self, memory_budget: int) -> int:
        """Pairs per kernel call that fit a transient-byte budget.

        Estimates the per-pair scratch cost from the fitted columns'
        mean row lengths (each gathered token costs sort key + scratch
        + gather bytes) and divides the budget by it.
        """
        if not self._fitted:
            raise RuntimeError("extractor must be fitted before sizing chunks")
        if memory_budget < 1:
            raise ValueError(f"memory_budget must be >= 1; got {memory_budget}")
        bytes_per_pair = _PAIR_BASE_BYTES
        for spec in self.field_specs:
            if spec.kind == "numeric":
                bytes_per_pair += 3 * 8  # x, y and the output gather
                continue
            mat_a = self._matrix_a[spec.name]
            mat_b = self._matrix_b[spec.name]
            mean_a = len(mat_a.indices) / max(len(mat_a), 1)
            mean_b = len(mat_b.indices) / max(len(mat_b), 1)
            bytes_per_pair += _TOKEN_BYTES * (mean_a + mean_b)
        return max(1, int(memory_budget / bytes_per_pair))

    def _effective_chunk(self, chunk_size: int | None) -> int:
        if chunk_size is not None:
            if chunk_size < 1:
                raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
            return int(chunk_size)
        if self.memory_budget is not None:
            return self.budget_chunk_size(self.memory_budget)
        return self.chunk_size

    def transform(self, pairs, *, chunk_size: int | None = None) -> np.ndarray:
        """Feature matrix for an (n, 2) array of (index_a, index_b) pairs.

        Runs the vectorised kernels in chunks of ``chunk_size`` pairs
        (falling back to the ``memory_budget``-derived size, then the
        instance default).  An empty pair list yields a
        ``(0, n_features)`` matrix.
        """
        pairs = self._validated_pairs(pairs)
        chunk = self._effective_chunk(chunk_size)
        features = np.empty((len(pairs), self.n_features), dtype=float)
        for start in range(0, len(pairs), chunk):
            stop = min(start + chunk, len(pairs))
            self._transform_block(
                pairs[start:stop, 0], pairs[start:stop, 1], features[start:stop]
            )
        return features

    def _transform_block(self, rows_a, rows_b, out) -> None:
        """Score one block of pairs into a pre-allocated output view."""
        for col, spec in enumerate(self.field_specs):
            if spec.kind == "numeric":
                out[:, col] = numeric_similarity_pairs(
                    self._columns_a[spec.name][rows_a],
                    self._columns_b[spec.name][rows_b],
                )
            elif spec.kind == "long_text":
                out[:, col] = cosine_pairs(
                    self._matrix_a[spec.name], rows_a,
                    self._matrix_b[spec.name], rows_b,
                )
            else:
                out[:, col] = jaccard_pairs(
                    self._matrix_a[spec.name], rows_a,
                    self._matrix_b[spec.name], rows_b,
                )

    def transform_iter(self, pair_chunks, *, chunk_size: int | None = None):
        """Yield one feature block per (n, 2) pair chunk.

        The streaming counterpart of :meth:`transform` for candidate
        generators (:func:`~repro.pipeline.records.iter_cross_product_pairs`
        and friends): peak memory is one pair chunk plus one kernel
        chunk, regardless of the total candidate count.
        """
        for pairs in pair_chunks:
            yield self.transform(pairs, chunk_size=chunk_size)

    def transform_reference(self, pairs) -> np.ndarray:
        """Per-pair scalar scoring — the original Python semantics.

        Kept as the parity baseline: tests and the Table-3-style
        benchmark assert :meth:`transform` matches this to within
        floating-point reassociation.
        """
        pairs = self._validated_pairs(pairs)
        features = np.empty((len(pairs), self.n_features), dtype=float)
        for col, spec in enumerate(self.field_specs):
            col_a = self._reference_column(spec, "a")
            col_b = self._reference_column(spec, "b")
            if spec.kind == "numeric":
                features[:, col] = [
                    normalised_numeric_similarity(col_a[i], col_b[j])
                    for i, j in pairs
                ]
            elif spec.kind == "long_text":
                features[:, col] = [
                    TfidfVectoriser.cosine(col_a[i], col_b[j]) for i, j in pairs
                ]
            else:
                features[:, col] = [
                    _jaccard_of_sets(col_a[i], col_b[j]) for i, j in pairs
                ]
        return features

    def fit_transform(self, store_a: RecordStore, store_b: RecordStore, pairs):
        return self.fit(store_a, store_b).transform(pairs)
