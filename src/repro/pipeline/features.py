"""Pairwise similarity-feature construction (paper section 6.1.2).

For each pair of corresponding fields the extractor computes one scalar
similarity feature: character-trigram Jaccard for short text, tf-idf
cosine for long text, normalised absolute difference for numerics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.normalise import impute_missing_numeric, normalise_string
from repro.pipeline.records import RecordStore
from repro.pipeline.similarity import (
    TfidfVectoriser,
    ngrams,
    normalised_numeric_similarity,
)


def _jaccard_of_sets(grams_a: set, grams_b: set) -> float:
    """Jaccard similarity of two pre-computed n-gram sets."""
    if not grams_a and not grams_b:
        return 0.0
    union = len(grams_a | grams_b)
    if union == 0:
        return 0.0
    return len(grams_a & grams_b) / union

__all__ = ["FieldSpec", "PairFeatureExtractor"]

_FIELD_KINDS = ("short_text", "long_text", "numeric")


@dataclass(frozen=True)
class FieldSpec:
    """How one schema field should be compared across sources.

    ``kind`` selects the similarity measure per the paper's recipe:
    ``short_text`` -> trigram Jaccard, ``long_text`` -> tf-idf cosine,
    ``numeric`` -> normalised absolute difference.
    """

    name: str
    kind: str = "short_text"

    def __post_init__(self):
        if self.kind not in _FIELD_KINDS:
            raise ValueError(
                f"kind must be one of {_FIELD_KINDS}; got {self.kind!r}"
            )


class PairFeatureExtractor:
    """Turns record pairs into similarity feature vectors.

    ``fit`` pre-computes normalised field values, imputed numerics and
    tf-idf vectors for both stores; ``transform`` then maps an (n, 2)
    array of pair indices to an (n, n_features) matrix.  Fitting once
    and transforming many times keeps the full-pool scoring pass (the
    most expensive pipeline stage, per the paper's background section)
    tractable.
    """

    def __init__(self, field_specs):
        self.field_specs = list(field_specs)
        if not self.field_specs:
            raise ValueError("at least one FieldSpec is required")
        names = [spec.name for spec in self.field_specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in specs: {names}")
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.field_specs)

    @property
    def feature_names(self) -> list[str]:
        return [f"{spec.name}:{spec.kind}" for spec in self.field_specs]

    def fit(self, store_a: RecordStore, store_b: RecordStore) -> "PairFeatureExtractor":
        """Pre-process both stores for fast pairwise comparison."""
        self._columns_a = {}
        self._columns_b = {}
        self._vectorisers = {}
        for spec in self.field_specs:
            raw_a = store_a.field_values(spec.name)
            raw_b = store_b.field_values(spec.name)
            if spec.kind == "numeric":
                self._columns_a[spec.name] = impute_missing_numeric(raw_a)
                self._columns_b[spec.name] = impute_missing_numeric(raw_b)
            else:
                norm_a = [normalise_string(v) for v in raw_a]
                norm_b = [normalise_string(v) for v in raw_b]
                if spec.kind == "long_text":
                    vectoriser = TfidfVectoriser().fit(norm_a + norm_b)
                    self._vectorisers[spec.name] = vectoriser
                    self._columns_a[spec.name] = [
                        vectoriser.transform_one(text) for text in norm_a
                    ]
                    self._columns_b[spec.name] = [
                        vectoriser.transform_one(text) for text in norm_b
                    ]
                else:
                    # Pre-compute trigram sets once per record so the
                    # full-pool scoring pass is set-intersection only.
                    self._columns_a[spec.name] = [ngrams(text) for text in norm_a]
                    self._columns_b[spec.name] = [ngrams(text) for text in norm_b]
        self._fitted = True
        return self

    def transform(self, pairs) -> np.ndarray:
        """Feature matrix for an (n, 2) array of (index_a, index_b) pairs."""
        if not self._fitted:
            raise RuntimeError("extractor must be fitted before transform")
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (n, 2); got {pairs.shape}")
        features = np.empty((len(pairs), self.n_features), dtype=float)
        for col, spec in enumerate(self.field_specs):
            col_a = self._columns_a[spec.name]
            col_b = self._columns_b[spec.name]
            if spec.kind == "numeric":
                features[:, col] = [
                    normalised_numeric_similarity(col_a[i], col_b[j])
                    for i, j in pairs
                ]
            elif spec.kind == "long_text":
                features[:, col] = [
                    TfidfVectoriser.cosine(col_a[i], col_b[j]) for i, j in pairs
                ]
            else:
                features[:, col] = [
                    _jaccard_of_sets(col_a[i], col_b[j]) for i, j in pairs
                ]
        return features

    def fit_transform(self, store_a: RecordStore, store_b: RecordStore, pairs):
        return self.fit(store_a, store_b).transform(pairs)
