"""Pairwise similarity-feature construction (paper section 6.1.2).

For each pair of corresponding fields the extractor computes one scalar
similarity feature: character-trigram Jaccard for short text, tf-idf
cosine for long text, normalised absolute difference for numerics.

The scoring pass is array-backed end to end: ``fit`` encodes every text
column into contiguous CSR structures (:class:`TokenSetMatrix` /
:class:`SparseVectorMatrix` over a shared vocabulary) and ``transform``
scores whole pair blocks with the batch kernels from
:mod:`repro.pipeline.similarity`, chunked to bound peak memory.  The
original per-pair semantics survive as :meth:`transform_reference`, the
parity baseline for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.normalise import impute_missing_numeric, normalise_string
from repro.pipeline.records import RecordStore
from repro.pipeline.similarity import (
    TfidfVectoriser,
    TokenSetMatrix,
    build_token_vocabulary,
    cosine_pairs,
    jaccard_pairs,
    ngrams,
    normalised_numeric_similarity,
    numeric_similarity_pairs,
)


def _jaccard_of_sets(grams_a: set, grams_b: set) -> float:
    """Jaccard similarity of two pre-computed n-gram sets."""
    if not grams_a and not grams_b:
        return 0.0
    union = len(grams_a | grams_b)
    if union == 0:
        return 0.0
    return len(grams_a & grams_b) / union

__all__ = ["FieldSpec", "PairFeatureExtractor"]

_FIELD_KINDS = ("short_text", "long_text", "numeric")

# Default pairs per kernel call; bounds the transient merge arrays at
# roughly chunk_size * (tokens per record pair) int64 elements, sized so
# a chunk's working set stays cache-resident on typical hardware.
_DEFAULT_CHUNK_SIZE = 4096


@dataclass(frozen=True)
class FieldSpec:
    """How one schema field should be compared across sources.

    ``kind`` selects the similarity measure per the paper's recipe:
    ``short_text`` -> trigram Jaccard, ``long_text`` -> tf-idf cosine,
    ``numeric`` -> normalised absolute difference.
    """

    name: str
    kind: str = "short_text"

    def __post_init__(self):
        if self.kind not in _FIELD_KINDS:
            raise ValueError(
                f"kind must be one of {_FIELD_KINDS}; got {self.kind!r}"
            )


class PairFeatureExtractor:
    """Turns record pairs into similarity feature vectors.

    ``fit`` pre-computes normalised field values, imputed numerics and
    array-encoded trigram/tf-idf columns for both stores; ``transform``
    then maps an (n, 2) array of pair indices to an (n, n_features)
    matrix with vectorised kernels.  Fitting once and transforming many
    times keeps the full-pool scoring pass (the most expensive pipeline
    stage, per the paper's background section) tractable.

    Parameters
    ----------
    field_specs:
        One :class:`FieldSpec` per compared field.
    chunk_size:
        Pairs scored per kernel call in :meth:`transform`.  Smaller
        values bound peak memory; larger values amortise per-call
        overhead.  Overridable per ``transform`` call.
    """

    def __init__(self, field_specs, *, chunk_size: int = _DEFAULT_CHUNK_SIZE):
        self.field_specs = list(field_specs)
        if not self.field_specs:
            raise ValueError("at least one FieldSpec is required")
        names = [spec.name for spec in self.field_specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in specs: {names}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self._fitted = False

    @property
    def n_features(self) -> int:
        return len(self.field_specs)

    @property
    def feature_names(self) -> list[str]:
        return [f"{spec.name}:{spec.kind}" for spec in self.field_specs]

    def fit(self, store_a: RecordStore, store_b: RecordStore) -> "PairFeatureExtractor":
        """Pre-process both stores for fast pairwise comparison."""
        # The hot path keeps only array encodings (numeric columns and
        # CSR matrices); the per-record sets/dicts that back
        # ``transform_reference`` are rebuilt lazily from the cached
        # normalised strings on first use.
        self._columns_a = {}
        self._columns_b = {}
        self._norm_a = {}
        self._norm_b = {}
        self._reference_a = {}
        self._reference_b = {}
        self._vectorisers = {}
        self._matrix_a = {}
        self._matrix_b = {}
        for spec in self.field_specs:
            raw_a = store_a.field_values(spec.name)
            raw_b = store_b.field_values(spec.name)
            if spec.kind == "numeric":
                self._columns_a[spec.name] = impute_missing_numeric(raw_a)
                self._columns_b[spec.name] = impute_missing_numeric(raw_b)
            else:
                norm_a = [normalise_string(v) for v in raw_a]
                norm_b = [normalise_string(v) for v in raw_b]
                self._norm_a[spec.name] = norm_a
                self._norm_b[spec.name] = norm_b
                if spec.kind == "long_text":
                    vectoriser = TfidfVectoriser().fit(norm_a + norm_b)
                    self._vectorisers[spec.name] = vectoriser
                    self._matrix_a[spec.name] = vectoriser.transform_matrix(norm_a)
                    self._matrix_b[spec.name] = vectoriser.transform_matrix(norm_b)
                else:
                    # Trigram sets are computed once per record here (to
                    # build the shared vocabulary and the encodings) and
                    # discarded; the reference path re-derives them.
                    sets_a = [ngrams(text) for text in norm_a]
                    sets_b = [ngrams(text) for text in norm_b]
                    vocabulary = build_token_vocabulary(sets_a + sets_b)
                    self._matrix_a[spec.name] = TokenSetMatrix.from_sets(
                        sets_a, vocabulary
                    )
                    self._matrix_b[spec.name] = TokenSetMatrix.from_sets(
                        sets_b, vocabulary
                    )
        self._fitted = True
        return self

    def _reference_column(self, spec: FieldSpec, side: str):
        """Per-record sets/dicts for the reference path, built lazily."""
        if spec.kind == "numeric":
            columns = self._columns_a if side == "a" else self._columns_b
            return columns[spec.name]
        cache = self._reference_a if side == "a" else self._reference_b
        if spec.name not in cache:
            norm = (self._norm_a if side == "a" else self._norm_b)[spec.name]
            if spec.kind == "long_text":
                vectoriser = self._vectorisers[spec.name]
                cache[spec.name] = [vectoriser.transform_one(t) for t in norm]
            else:
                cache[spec.name] = [ngrams(t) for t in norm]
        return cache[spec.name]

    def _validated_pairs(self, pairs) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("extractor must be fitted before transform")
        pairs = np.asarray(pairs, dtype=np.int64)
        # Accept an empty pair *list* ([], shape (0,) or (0, 2)); other
        # zero-size shapes are still malformed.
        if pairs.size == 0 and (pairs.ndim <= 1 or pairs.shape == (0, 2)):
            return np.empty((0, 2), dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (n, 2); got {pairs.shape}")
        return pairs

    def transform(self, pairs, *, chunk_size: int | None = None) -> np.ndarray:
        """Feature matrix for an (n, 2) array of (index_a, index_b) pairs.

        Runs the vectorised kernels in chunks of ``chunk_size`` pairs
        (instance default when None).  An empty pair list yields a
        ``(0, n_features)`` matrix.
        """
        pairs = self._validated_pairs(pairs)
        chunk = self.chunk_size if chunk_size is None else int(chunk_size)
        if chunk < 1:
            raise ValueError(f"chunk_size must be >= 1; got {chunk}")
        features = np.empty((len(pairs), self.n_features), dtype=float)
        for start in range(0, len(pairs), chunk):
            stop = min(start + chunk, len(pairs))
            rows_a = pairs[start:stop, 0]
            rows_b = pairs[start:stop, 1]
            for col, spec in enumerate(self.field_specs):
                if spec.kind == "numeric":
                    features[start:stop, col] = numeric_similarity_pairs(
                        self._columns_a[spec.name][rows_a],
                        self._columns_b[spec.name][rows_b],
                    )
                elif spec.kind == "long_text":
                    features[start:stop, col] = cosine_pairs(
                        self._matrix_a[spec.name], rows_a,
                        self._matrix_b[spec.name], rows_b,
                    )
                else:
                    features[start:stop, col] = jaccard_pairs(
                        self._matrix_a[spec.name], rows_a,
                        self._matrix_b[spec.name], rows_b,
                    )
        return features

    def transform_reference(self, pairs) -> np.ndarray:
        """Per-pair scalar scoring — the original Python semantics.

        Kept as the parity baseline: tests and the Table-3-style
        benchmark assert :meth:`transform` matches this to within
        floating-point reassociation.
        """
        pairs = self._validated_pairs(pairs)
        features = np.empty((len(pairs), self.n_features), dtype=float)
        for col, spec in enumerate(self.field_specs):
            col_a = self._reference_column(spec, "a")
            col_b = self._reference_column(spec, "b")
            if spec.kind == "numeric":
                features[:, col] = [
                    normalised_numeric_similarity(col_a[i], col_b[j])
                    for i, j in pairs
                ]
            elif spec.kind == "long_text":
                features[:, col] = [
                    TfidfVectoriser.cosine(col_a[i], col_b[j]) for i, j in pairs
                ]
            else:
                features[:, col] = [
                    _jaccard_of_sets(col_a[i], col_b[j]) for i, j in pairs
                ]
        return features

    def fit_transform(self, store_a: RecordStore, store_b: RecordStore, pairs):
        return self.fit(store_a, store_b).transform(pairs)
