"""Shared sampler infrastructure (paper Definition 4's setting).

Every evaluation sampler — OASIS and the baselines — shares the same
contract: it holds (predictions, scores, oracle) for a pool, draws
items with replacement, queries the oracle for *new* items only (label
caching: footnote 5 — a repeated draw is free), and maintains an
estimate of its target ratio measure (the paper's F-measure by
default) whose history is indexed both by iteration and by distinct
labels consumed.

Two execution paths share that contract:

* the sequential path (:meth:`BaseEvaluationSampler.sample`), one
  oracle query per iteration, exactly as the paper specifies; and
* the batched path (:meth:`BaseEvaluationSampler.sample_batch`), which
  freezes the sampler's proposal for a block of ``B`` draws and
  amortises the per-iteration Python overhead across the block.
  Holding the instrumental distribution fixed over a block is the
  standard adaptive-importance-sampling relaxation (Delyon & Portier):
  the weights stay unbiased because each draw's weight uses the
  proposal it was actually drawn from.  ``sample_batch`` with
  ``batch_size=1`` is bit-identical to one sequential step under the
  same random state.

The batched path is itself split into two halves — a *propose* phase
(:meth:`BaseEvaluationSampler._propose_batch`: consume randomness, pick
the draws) and a *commit* phase
(:meth:`BaseEvaluationSampler._commit_batch`: fold the labels into the
model, estimator and histories).  The oracle round-trip sits exactly at
the seam, which is what lets the serving layer
(:mod:`repro.service`) replace the synchronous oracle call with an
asynchronous propose-pairs → ingest-labels protocol without perturbing
a single draw.

Samplers also support versioned snapshot/restore
(:meth:`BaseEvaluationSampler.state_dict` /
:meth:`~BaseEvaluationSampler.load_state_dict`): restoring a snapshot
into an identically-constructed sampler continues the run bit-for-bit,
RNG stream included.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.measures.ratio import FMeasure, measure_from_spec, resolve_measure
from repro.oracle.base import BaseOracle
from repro.utils import (
    check_count,
    ensure_rng,
    rng_from_state_dict,
    rng_state_dict,
)

__all__ = ["BaseEvaluationSampler"]

#: Version stamp of the sampler snapshot layout.  Version 2 records the
#: target measure spec; version-1 (alpha-only) snapshots still load.
STATE_FORMAT_VERSION = 2


class BaseEvaluationSampler(abc.ABC):
    """Base class for label-efficient ratio-measure samplers.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item.
    oracle:
        Labelling oracle queried for ground truth.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``
        (0.5 balanced; 1 precision; 0 recall).  Mutually exclusive with
        ``measure``.
    measure:
        The target :class:`~repro.measures.ratio.RatioMeasure` (or a
        kind name / spec dict); defaults to ``FMeasure(0.5)``, the
        paper's setting.
    random_state:
        Seed or generator for the sampling randomness.

    Attributes
    ----------
    measure:
        The resolved target measure.
    alpha:
        The F-family weight of the target measure, or None for non-F
        measures (kept for the historical API).
    estimate:
        Current estimate of the target measure (NaN while undefined).
    history:
        Estimate after every iteration.
    budget_history:
        Distinct labels consumed after every iteration; plotting
        ``history`` against ``budget_history`` gives the paper's
        label-budget curves.
    queried_labels:
        Cache of oracle labels by pool index.
    """

    def __init__(self, predictions, scores, oracle: BaseOracle, *,
                 alpha: float | None = None, measure=None, random_state=None):
        predictions = np.asarray(predictions)
        scores = np.asarray(scores, dtype=float)
        if predictions.shape != scores.shape or predictions.ndim != 1:
            raise ValueError(
                f"predictions {predictions.shape} and scores {scores.shape} "
                "must be aligned 1-D arrays"
            )
        if len(predictions) == 0:
            raise ValueError("pool must be non-empty")
        unique = set(np.unique(predictions).tolist())
        if not unique <= {0, 1}:
            raise ValueError(f"predictions must be binary; found {unique}")
        self.measure = resolve_measure(measure, alpha)

        self.predictions = predictions.astype(np.int8)
        self.scores = scores
        self.oracle = oracle
        self.rng = ensure_rng(random_state)

        self.queried_labels: dict[int, int] = {}
        # Array mirror of ``queried_labels`` (-1 = unqueried) so the
        # batched path can resolve cache hits with one gather instead
        # of a Python dict probe per draw.
        self._label_cache = np.full(len(predictions), -1, dtype=np.int8)
        self.history: list[float] = []
        self.budget_history: list[int] = []
        self.sampled_indices: list[int] = []

    @property
    def n_items(self) -> int:
        return len(self.predictions)

    @property
    def alpha(self):
        """The F-family weight, or None for non-F measures (deprecated)."""
        return getattr(self.measure, "alpha", None)

    @property
    def labels_consumed(self) -> int:
        """Distinct oracle labels consumed so far (the budget)."""
        return len(self.queried_labels)

    @property
    def estimate(self) -> float:
        if not self.history:
            return float("nan")
        return self.history[-1]

    def _query_label(self, index: int) -> int:
        """Oracle label for ``index`` with caching (footnote 5)."""
        index = int(index)
        cached = self.queried_labels.get(index)
        if cached is not None:
            return cached
        label = int(self.oracle.label(index))
        if label not in (0, 1):
            raise ValueError(f"oracle returned non-binary label {label}")
        self.queried_labels[index] = label
        self._label_cache[index] = label
        return label

    def _pending_fresh(self, indices) -> np.ndarray:
        """Distinct not-yet-labelled indices of a batch of draws.

        Returned in first-occurrence order — exactly the order the
        oracle (or an asynchronous labeller) must answer them in for
        randomised labellers to consume their randomness as the
        sequential path would.
        """
        indices = np.asarray(indices, dtype=np.int64)
        unknown = self._label_cache[indices] < 0
        if not np.any(unknown):
            return np.zeros(0, dtype=np.int64)
        unknown_values = indices[unknown]
        unique, first_pos = np.unique(unknown_values, return_index=True)
        return unique[np.argsort(first_pos)]

    def _apply_labels(self, indices, fresh_labels) -> tuple[np.ndarray, np.ndarray]:
        """Fold labels for :meth:`_pending_fresh` indices into the caches.

        ``fresh_labels`` must align with ``self._pending_fresh(indices)``
        (the dedup is recomputed here in one pass — the caches have not
        changed in between).  Shape and label range are re-checked at
        this trust boundary, as the labels may come from an overridden
        oracle backend or an external client.

        Returns
        -------
        labels:
            int64 label array aligned with ``indices``.
        new_mask:
            Boolean array marking the positions that consumed a fresh
            distinct label (the first occurrence of each
            previously-unqueried index); its cumulative sum is the
            intra-batch label-budget trajectory.
        """
        indices = np.asarray(indices, dtype=np.int64)
        fresh_labels = np.asarray(fresh_labels, dtype=np.int64)
        new_mask = np.zeros(len(indices), dtype=bool)
        # One dedup pass serves both outputs: ``fresh`` (what the labels
        # must align with) and ``new_mask`` (where the budget advances).
        unknown_pos = np.flatnonzero(self._label_cache[indices] < 0)
        if unknown_pos.size:
            unknown_values = indices[unknown_pos]
            unique, first_pos = np.unique(unknown_values, return_index=True)
            fresh = unique[np.argsort(first_pos)]
        else:
            fresh = np.zeros(0, dtype=np.int64)
        if fresh_labels.shape != fresh.shape:
            raise ValueError(
                f"oracle returned {fresh_labels.shape} labels for "
                f"{fresh.shape} queries"
            )
        if fresh.size:
            if np.any((fresh_labels != 0) & (fresh_labels != 1)):
                bad = fresh_labels[(fresh_labels != 0) & (fresh_labels != 1)][0]
                raise ValueError(f"oracle returned non-binary label {bad}")
            new_mask[unknown_pos[first_pos]] = True
            self._label_cache[fresh] = fresh_labels
            for index, label in zip(fresh.tolist(), fresh_labels.tolist()):
                self.queried_labels[index] = int(label)
        labels = self._label_cache[indices].astype(np.int64)
        return labels, new_mask

    def _query_labels(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Bulk cached oracle lookup for a batch of draws.

        Cache hits are resolved with one vectorised gather; the
        remaining distinct indices (:meth:`_pending_fresh`) are
        forwarded to the oracle's
        :meth:`~repro.oracle.base.BaseOracle.query_many` in
        first-occurrence order, so randomised oracles consume their
        randomness exactly as the sequential path would, and the
        answers are folded back in via :meth:`_apply_labels`.

        Returns the ``(labels, new_mask)`` pair of
        :meth:`_apply_labels`.
        """
        indices = np.asarray(indices, dtype=np.int64)
        fresh = self._pending_fresh(indices)
        if fresh.size:
            fresh_labels = np.asarray(self.oracle.query_many(fresh), dtype=np.int64)
        else:
            fresh_labels = np.zeros(0, dtype=np.int64)
        return self._apply_labels(indices, fresh_labels)

    @abc.abstractmethod
    def _step(self) -> None:
        """Perform one sampling iteration, appending to the histories."""

    def _propose_batch(self, batch_size: int) -> dict:
        """Propose phase of one batched iteration: pick the draws.

        Consumes randomness and computes everything derivable *without*
        labels — the drawn indices plus whatever per-sampler context
        (strata, weights, frozen proposal) the commit phase needs.
        Returns a context dict with at least ``"indices"``.

        Subclasses with a vectorised batched path override this
        together with :meth:`_commit_batch`; the base implementation
        signals "no split path" and :meth:`_step_batch` falls back to
        looping :meth:`_step`.
        """
        raise NotImplementedError

    def _commit_batch(self, context, labels, new_mask) -> None:
        """Commit phase of one batched iteration: fold the labels in.

        ``context`` is the dict returned by :meth:`_propose_batch`;
        ``labels`` / ``new_mask`` come from :meth:`_apply_labels` on
        ``context["indices"]``.  Updates model, estimator and the
        histories — everything downstream of the oracle round-trip.
        """
        raise NotImplementedError

    @property
    def supports_propose_ingest(self) -> bool:
        """Whether this sampler implements the split batched path.

        Split samplers can be driven through the asynchronous
        propose-pairs → ingest-labels protocol of
        :class:`repro.service.session.EvaluationSession`.
        """
        return type(self)._propose_batch is not BaseEvaluationSampler._propose_batch

    def _step_batch(self, batch_size: int) -> None:
        """Perform one batched iteration of ``batch_size`` draws.

        Runs propose → oracle round-trip → commit when the sampler
        implements the split path; otherwise falls back to looping
        :meth:`_step`, preserving exact sequential semantics for
        samplers without a vectorised path.
        """
        if not self.supports_propose_ingest:
            for __ in range(batch_size):
                self._step()
            return
        context = self._propose_batch(batch_size)
        labels, new_mask = self._query_labels(context["indices"])
        self._commit_batch(context, labels, new_mask)

    def sample_batch(self, batch_size: int) -> float:
        """Draw ``batch_size`` items under one frozen proposal.

        The batched counterpart of a single :meth:`_step`: one proposal
        computation is amortised over the whole block, the oracle is
        queried once via :meth:`~repro.oracle.base.BaseOracle.query_many`
        (with cache-aware deduplication), and the model/estimator
        updates are vectorised.  Histories still gain one entry per
        draw, so budget-indexed post-processing is unaffected.

        ``sample_batch(1)`` is bit-identical to one sequential step
        under the same random state.  Returns the updated estimate.
        """
        batch_size = check_count(batch_size, "batch_size")
        self._step_batch(batch_size)
        return self.estimate

    def sample(self, n_iterations: int, *, batch_size: int = 1) -> float:
        """Run ``n_iterations`` sampling draws; return the estimate.

        With ``batch_size > 1`` the draws are executed in blocks of
        (at most) ``batch_size`` via :meth:`sample_batch`; the proposal
        is refreshed between blocks instead of between draws.
        """
        n_iterations = check_count(n_iterations, "n_iterations", minimum=0)
        batch_size = check_count(batch_size, "batch_size")
        if batch_size == 1:
            for __ in range(n_iterations):
                self._step()
        else:
            remaining = n_iterations
            while remaining > 0:
                block = min(batch_size, remaining)
                self._step_batch(block)
                remaining -= block
        return self.estimate

    def sample_until_budget(self, budget: int, *, batch_size: int = 1,
                            max_iterations: int | None = None) -> float:
        """Sample until ``budget`` distinct labels have been consumed.

        ``max_iterations`` bounds the loop for safety; it defaults to
        50x the budget (re-draws of cached items consume iterations but
        not budget).  The budget is exact for every ``batch_size``: a
        draw consumes at most one distinct label, so each block is
        capped at the remaining budget and the run stops with
        ``labels_consumed == budget`` labels billed to the oracle
        (unless ``max_iterations`` or the pool size intervenes).
        """
        budget = check_count(budget, "budget")
        batch_size = check_count(batch_size, "batch_size")
        budget = min(budget, self.n_items)
        if max_iterations is None:
            max_iterations = 50 * budget
        iterations = 0
        while self.labels_consumed < budget and iterations < max_iterations:
            if batch_size == 1:
                self._step()
                iterations += 1
            else:
                block = min(
                    batch_size,
                    budget - self.labels_consumed,
                    max_iterations - iterations,
                )
                self._step_batch(block)
                iterations += block
        return self.estimate

    def sample_distinct(self, n_labels: int, **kwargs) -> float:
        """Alias for :meth:`sample_until_budget`.

        Matches the naming of the original author implementation, where
        ``sample_distinct(n)`` consumes exactly ``n`` distinct oracle
        labels.
        """
        return self.sample_until_budget(n_labels, **kwargs)

    def estimate_at_budgets(self, budgets) -> np.ndarray:
        """Estimates recorded at given distinct-label budgets.

        For each requested budget b, returns the latest estimate at the
        last iteration where ``labels_consumed <= b`` (NaN if the run
        never reached that point or the estimate was undefined).
        """
        budgets = np.asarray(budgets, dtype=int)
        consumed = np.asarray(self.budget_history, dtype=int)
        history = np.asarray(self.history, dtype=float)
        out = np.full(len(budgets), np.nan)
        if len(consumed) == 0:
            return out
        positions = np.searchsorted(consumed, budgets, side="right") - 1
        valid = positions >= 0
        out[valid] = history[positions[valid]]
        return out

    # -- snapshot / restore ------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: additional state folded into :meth:`state_dict`."""
        return {}

    def _load_extra_state(self, state: dict) -> None:
        """Subclass hook: restore what :meth:`_extra_state` captured."""

    def state_dict(self) -> dict:
        """Versioned snapshot of everything mutable in the sampler.

        The snapshot captures the label cache, the histories, the RNG
        bit-generator state and every model/estimator running sum — but
        *not* the pool arrays or the oracle, which are construction
        inputs.  The restore contract: build a sampler with the same
        constructor arguments (any seed), call :meth:`load_state_dict`,
        and every subsequent draw, estimate and history entry is
        bit-identical to the snapshotted sampler continuing uninterrupted.

        The returned dict contains live NumPy arrays; pass it through
        :func:`repro.service.codec.encode_state` for a JSON-safe form.
        """
        indices = np.fromiter(self.queried_labels.keys(), dtype=np.int64,
                              count=len(self.queried_labels))
        labels = np.fromiter(self.queried_labels.values(), dtype=np.int64,
                             count=len(self.queried_labels))
        state = {
            "format_version": STATE_FORMAT_VERSION,
            "class": type(self).__name__,
            "n_items": self.n_items,
            "measure": self.measure.spec(),
            "rng": rng_state_dict(self.rng),
            "queried_indices": indices,
            "queried_label_values": labels,
            "history": list(self.history),
            "budget_history": list(self.budget_history),
            "sampled_indices": list(self.sampled_indices),
        }
        state.update(self._extra_state())
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        The sampler must have been constructed over the same pool (size
        and class are validated; subclasses validate their structural
        configuration).  Accepts snapshots decoded by
        :func:`repro.service.codec.decode_state`.
        """
        version = state.get("format_version")
        if version not in (1, STATE_FORMAT_VERSION):
            raise ValueError(f"unsupported sampler state version {version!r}")
        if state.get("class") != type(self).__name__:
            raise ValueError(
                f"state was captured from {state.get('class')!r}, not "
                f"{type(self).__name__!r}"
            )
        if int(state["n_items"]) != self.n_items:
            raise ValueError(
                f"state covers a pool of {state['n_items']} items, but this "
                f"sampler has {self.n_items}"
            )
        if version == 1:
            # v1 snapshots predate the measure axis: they always target
            # the F-measure and record only its alpha weight.
            captured = FMeasure(float(state["alpha"]))
        else:
            captured = measure_from_spec(state["measure"])
        if captured != self.measure:
            raise ValueError(
                f"state was captured for measure {captured.name}, but this "
                f"sampler targets {self.measure.name}"
            )
        self.rng = rng_from_state_dict(state["rng"])
        indices = np.asarray(state["queried_indices"], dtype=np.int64)
        labels = np.asarray(state["queried_label_values"], dtype=np.int64)
        if indices.shape != labels.shape:
            raise ValueError("queried indices and labels must align")
        self.queried_labels = {
            int(i): int(l) for i, l in zip(indices.tolist(), labels.tolist())
        }
        self._label_cache = np.full(self.n_items, -1, dtype=np.int8)
        if indices.size:
            self._label_cache[indices] = labels.astype(np.int8)
        self.history = [float(v) for v in state["history"]]
        self.budget_history = [int(v) for v in state["budget_history"]]
        self.sampled_indices = [int(v) for v in state["sampled_indices"]]
        self._load_extra_state(state)
