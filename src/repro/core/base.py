"""Shared sampler infrastructure (paper Definition 4's setting).

Every evaluation sampler — OASIS and the baselines — shares the same
contract: it holds (predictions, scores, oracle) for a pool, draws
items with replacement, queries the oracle for *new* items only (label
caching: footnote 5 — a repeated draw is free), and maintains an
F-measure estimate whose history is indexed both by iteration and by
distinct labels consumed.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.oracle.base import BaseOracle
from repro.utils import check_in_range, ensure_rng

__all__ = ["BaseEvaluationSampler"]


class BaseEvaluationSampler(abc.ABC):
    """Base class for label-efficient F-measure samplers.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item.
    oracle:
        Labelling oracle queried for ground truth.
    alpha:
        F-measure weight.
    random_state:
        Seed or generator for the sampling randomness.

    Attributes
    ----------
    estimate:
        Current F-measure estimate (NaN while undefined).
    history:
        F estimate after every iteration.
    budget_history:
        Distinct labels consumed after every iteration; plotting
        ``history`` against ``budget_history`` gives the paper's
        label-budget curves.
    queried_labels:
        Cache of oracle labels by pool index.
    """

    def __init__(self, predictions, scores, oracle: BaseOracle, *,
                 alpha: float = 0.5, random_state=None):
        predictions = np.asarray(predictions)
        scores = np.asarray(scores, dtype=float)
        if predictions.shape != scores.shape or predictions.ndim != 1:
            raise ValueError(
                f"predictions {predictions.shape} and scores {scores.shape} "
                "must be aligned 1-D arrays"
            )
        if len(predictions) == 0:
            raise ValueError("pool must be non-empty")
        unique = set(np.unique(predictions).tolist())
        if not unique <= {0, 1}:
            raise ValueError(f"predictions must be binary; found {unique}")
        check_in_range(alpha, 0.0, 1.0, "alpha")

        self.predictions = predictions.astype(np.int8)
        self.scores = scores
        self.oracle = oracle
        self.alpha = alpha
        self.rng = ensure_rng(random_state)

        self.queried_labels: dict[int, int] = {}
        self.history: list[float] = []
        self.budget_history: list[int] = []
        self.sampled_indices: list[int] = []

    @property
    def n_items(self) -> int:
        return len(self.predictions)

    @property
    def labels_consumed(self) -> int:
        """Distinct oracle labels consumed so far (the budget)."""
        return len(self.queried_labels)

    @property
    def estimate(self) -> float:
        if not self.history:
            return float("nan")
        return self.history[-1]

    def _query_label(self, index: int) -> int:
        """Oracle label for ``index`` with caching (footnote 5)."""
        index = int(index)
        cached = self.queried_labels.get(index)
        if cached is not None:
            return cached
        label = int(self.oracle.label(index))
        if label not in (0, 1):
            raise ValueError(f"oracle returned non-binary label {label}")
        self.queried_labels[index] = label
        return label

    @abc.abstractmethod
    def _step(self) -> None:
        """Perform one sampling iteration, appending to the histories."""

    def sample(self, n_iterations: int) -> float:
        """Run ``n_iterations`` sampling steps; return the estimate."""
        if n_iterations < 0:
            raise ValueError(f"n_iterations must be non-negative; got {n_iterations}")
        for __ in range(n_iterations):
            self._step()
        return self.estimate

    def sample_until_budget(self, budget: int, *, max_iterations: int | None = None) -> float:
        """Sample until ``budget`` distinct labels have been consumed.

        ``max_iterations`` bounds the loop for safety; it defaults to
        50x the budget (re-draws of cached items consume iterations but
        not budget).
        """
        if budget <= 0:
            raise ValueError(f"budget must be positive; got {budget}")
        budget = min(budget, self.n_items)
        if max_iterations is None:
            max_iterations = 50 * budget
        iterations = 0
        while self.labels_consumed < budget and iterations < max_iterations:
            self._step()
            iterations += 1
        return self.estimate

    def sample_distinct(self, n_labels: int, **kwargs) -> float:
        """Alias for :meth:`sample_until_budget`.

        Matches the naming of the original author implementation, where
        ``sample_distinct(n)`` consumes exactly ``n`` distinct oracle
        labels.
        """
        return self.sample_until_budget(n_labels, **kwargs)

    def estimate_at_budgets(self, budgets) -> np.ndarray:
        """Estimates recorded at given distinct-label budgets.

        For each requested budget b, returns the latest estimate at the
        last iteration where ``labels_consumed <= b`` (NaN if the run
        never reached that point or the estimate was undefined).
        """
        budgets = np.asarray(budgets, dtype=int)
        consumed = np.asarray(self.budget_history, dtype=int)
        history = np.asarray(self.history, dtype=float)
        out = np.full(len(budgets), np.nan)
        if len(consumed) == 0:
            return out
        positions = np.searchsorted(consumed, budgets, side="right") - 1
        valid = positions >= 0
        out[valid] = history[positions[valid]]
        return out
