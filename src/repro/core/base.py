"""Shared sampler infrastructure (paper Definition 4's setting).

Every evaluation sampler — OASIS and the baselines — shares the same
contract: it holds (predictions, scores, oracle) for a pool, draws
items with replacement, queries the oracle for *new* items only (label
caching: footnote 5 — a repeated draw is free), and maintains an
F-measure estimate whose history is indexed both by iteration and by
distinct labels consumed.

Two execution paths share that contract:

* the sequential path (:meth:`BaseEvaluationSampler.sample`), one
  oracle query per iteration, exactly as the paper specifies; and
* the batched path (:meth:`BaseEvaluationSampler.sample_batch`), which
  freezes the sampler's proposal for a block of ``B`` draws and
  amortises the per-iteration Python overhead across the block.
  Holding the instrumental distribution fixed over a block is the
  standard adaptive-importance-sampling relaxation (Delyon & Portier):
  the weights stay unbiased because each draw's weight uses the
  proposal it was actually drawn from.  ``sample_batch`` with
  ``batch_size=1`` is bit-identical to one sequential step under the
  same random state.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.oracle.base import BaseOracle
from repro.utils import check_in_range, ensure_rng

__all__ = ["BaseEvaluationSampler"]


class BaseEvaluationSampler(abc.ABC):
    """Base class for label-efficient F-measure samplers.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item.
    oracle:
        Labelling oracle queried for ground truth.
    alpha:
        F-measure weight.
    random_state:
        Seed or generator for the sampling randomness.

    Attributes
    ----------
    estimate:
        Current F-measure estimate (NaN while undefined).
    history:
        F estimate after every iteration.
    budget_history:
        Distinct labels consumed after every iteration; plotting
        ``history`` against ``budget_history`` gives the paper's
        label-budget curves.
    queried_labels:
        Cache of oracle labels by pool index.
    """

    def __init__(self, predictions, scores, oracle: BaseOracle, *,
                 alpha: float = 0.5, random_state=None):
        predictions = np.asarray(predictions)
        scores = np.asarray(scores, dtype=float)
        if predictions.shape != scores.shape or predictions.ndim != 1:
            raise ValueError(
                f"predictions {predictions.shape} and scores {scores.shape} "
                "must be aligned 1-D arrays"
            )
        if len(predictions) == 0:
            raise ValueError("pool must be non-empty")
        unique = set(np.unique(predictions).tolist())
        if not unique <= {0, 1}:
            raise ValueError(f"predictions must be binary; found {unique}")
        check_in_range(alpha, 0.0, 1.0, "alpha")

        self.predictions = predictions.astype(np.int8)
        self.scores = scores
        self.oracle = oracle
        self.alpha = alpha
        self.rng = ensure_rng(random_state)

        self.queried_labels: dict[int, int] = {}
        # Array mirror of ``queried_labels`` (-1 = unqueried) so the
        # batched path can resolve cache hits with one gather instead
        # of a Python dict probe per draw.
        self._label_cache = np.full(len(predictions), -1, dtype=np.int8)
        self.history: list[float] = []
        self.budget_history: list[int] = []
        self.sampled_indices: list[int] = []

    @property
    def n_items(self) -> int:
        return len(self.predictions)

    @property
    def labels_consumed(self) -> int:
        """Distinct oracle labels consumed so far (the budget)."""
        return len(self.queried_labels)

    @property
    def estimate(self) -> float:
        if not self.history:
            return float("nan")
        return self.history[-1]

    def _query_label(self, index: int) -> int:
        """Oracle label for ``index`` with caching (footnote 5)."""
        index = int(index)
        cached = self.queried_labels.get(index)
        if cached is not None:
            return cached
        label = int(self.oracle.label(index))
        if label not in (0, 1):
            raise ValueError(f"oracle returned non-binary label {label}")
        self.queried_labels[index] = label
        self._label_cache[index] = label
        return label

    def _query_labels(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """Bulk cached oracle lookup for a batch of draws.

        Cache hits are resolved with one vectorised gather; the
        remaining distinct indices are forwarded to the oracle's
        :meth:`~repro.oracle.base.BaseOracle.query_many` in
        first-occurrence order, so randomised oracles consume their
        randomness exactly as the sequential path would.

        Returns
        -------
        labels:
            int64 label array aligned with ``indices``.
        new_mask:
            Boolean array marking the positions that consumed a fresh
            distinct label (the first occurrence of each
            previously-unqueried index); its cumulative sum is the
            intra-batch label-budget trajectory.
        """
        indices = np.asarray(indices, dtype=np.int64)
        labels = self._label_cache[indices].astype(np.int64)
        new_mask = np.zeros(len(indices), dtype=bool)
        unknown = labels < 0
        if np.any(unknown):
            unknown_pos = np.flatnonzero(unknown)
            unknown_values = indices[unknown_pos]
            unique, first_pos = np.unique(unknown_values, return_index=True)
            order = np.argsort(first_pos)  # first-occurrence order
            fresh = unique[order]
            # ``query_many`` validates its own backend, but an oracle
            # may override it wholesale — the sampler re-checks shape
            # and label range at its trust boundary, mirroring what
            # ``_query_label`` does for ``label``.
            fresh_labels = np.asarray(self.oracle.query_many(fresh), dtype=np.int64)
            if fresh_labels.shape != fresh.shape:
                raise ValueError(
                    f"oracle returned {fresh_labels.shape} labels for "
                    f"{fresh.shape} queries"
                )
            if np.any((fresh_labels != 0) & (fresh_labels != 1)):
                bad = fresh_labels[(fresh_labels != 0) & (fresh_labels != 1)][0]
                raise ValueError(f"oracle returned non-binary label {bad}")
            self._label_cache[fresh] = fresh_labels
            for index, label in zip(fresh.tolist(), fresh_labels.tolist()):
                self.queried_labels[index] = int(label)
            labels[unknown_pos] = self._label_cache[unknown_values]
            new_mask[unknown_pos[first_pos[order]]] = True
        return labels, new_mask

    @abc.abstractmethod
    def _step(self) -> None:
        """Perform one sampling iteration, appending to the histories."""

    def _step_batch(self, batch_size: int) -> None:
        """Perform one batched iteration of ``batch_size`` draws.

        The fallback loops :meth:`_step`, preserving exact sequential
        semantics for samplers without a vectorised path; subclasses
        override it to freeze their proposal over the block and update
        model, estimator and histories in bulk.
        """
        for __ in range(batch_size):
            self._step()

    def sample_batch(self, batch_size: int) -> float:
        """Draw ``batch_size`` items under one frozen proposal.

        The batched counterpart of a single :meth:`_step`: one proposal
        computation is amortised over the whole block, the oracle is
        queried once via :meth:`~repro.oracle.base.BaseOracle.query_many`
        (with cache-aware deduplication), and the model/estimator
        updates are vectorised.  Histories still gain one entry per
        draw, so budget-indexed post-processing is unaffected.

        ``sample_batch(1)`` is bit-identical to one sequential step
        under the same random state.  Returns the updated estimate.
        """
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1; got {batch_size}")
        self._step_batch(batch_size)
        return self.estimate

    def sample(self, n_iterations: int, *, batch_size: int = 1) -> float:
        """Run ``n_iterations`` sampling draws; return the estimate.

        With ``batch_size > 1`` the draws are executed in blocks of
        (at most) ``batch_size`` via :meth:`sample_batch`; the proposal
        is refreshed between blocks instead of between draws.
        """
        if n_iterations < 0:
            raise ValueError(f"n_iterations must be non-negative; got {n_iterations}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1; got {batch_size}")
        if batch_size == 1:
            for __ in range(n_iterations):
                self._step()
        else:
            remaining = n_iterations
            while remaining > 0:
                block = min(batch_size, remaining)
                self._step_batch(block)
                remaining -= block
        return self.estimate

    def sample_until_budget(self, budget: int, *, batch_size: int = 1,
                            max_iterations: int | None = None) -> float:
        """Sample until ``budget`` distinct labels have been consumed.

        ``max_iterations`` bounds the loop for safety; it defaults to
        50x the budget (re-draws of cached items consume iterations but
        not budget).  The budget is exact for every ``batch_size``: a
        draw consumes at most one distinct label, so each block is
        capped at the remaining budget and the run stops with
        ``labels_consumed == budget`` labels billed to the oracle
        (unless ``max_iterations`` or the pool size intervenes).
        """
        if budget <= 0:
            raise ValueError(f"budget must be positive; got {budget}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1; got {batch_size}")
        budget = min(budget, self.n_items)
        if max_iterations is None:
            max_iterations = 50 * budget
        iterations = 0
        while self.labels_consumed < budget and iterations < max_iterations:
            if batch_size == 1:
                self._step()
                iterations += 1
            else:
                block = min(
                    batch_size,
                    budget - self.labels_consumed,
                    max_iterations - iterations,
                )
                self._step_batch(block)
                iterations += block
        return self.estimate

    def sample_distinct(self, n_labels: int, **kwargs) -> float:
        """Alias for :meth:`sample_until_budget`.

        Matches the naming of the original author implementation, where
        ``sample_distinct(n)`` consumes exactly ``n`` distinct oracle
        labels.
        """
        return self.sample_until_budget(n_labels, **kwargs)

    def estimate_at_budgets(self, budgets) -> np.ndarray:
        """Estimates recorded at given distinct-label budgets.

        For each requested budget b, returns the latest estimate at the
        last iteration where ``labels_consumed <= b`` (NaN if the run
        never reached that point or the estimate was undefined).
        """
        budgets = np.asarray(budgets, dtype=int)
        consumed = np.asarray(self.budget_history, dtype=int)
        history = np.asarray(self.history, dtype=float)
        out = np.full(len(budgets), np.nan)
        if len(consumed) == 0:
            return out
        positions = np.searchsorted(consumed, budgets, side="right") - 1
        valid = positions >= 0
        out[valid] = history[positions[valid]]
        return out
