"""Stratified Beta-Bernoulli model of the oracle (paper section 4.2.2).

Each stratum k has a latent match probability pi_k with a Beta prior;
oracle labels observed from that stratum update the conjugate posterior
(Eqn 10), and the point estimate is the posterior mean (Eqn 11).
Remark 4's practical modification — retroactively down-weighting the
prior by 1/n_k as labels accumulate — is available via
``decaying_prior=True``.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive

__all__ = ["BetaBernoulliModel"]


class BetaBernoulliModel:
    """Independent Beta-Bernoulli posteriors, one per stratum.

    Hyperparameters follow the paper's layout: a 2 x K matrix ``gamma``
    whose row 0 tracks matches (label 1) and row 1 non-matches
    (label 0), so the posterior mean is ``gamma[0] / gamma.sum(axis=0)``.

    Parameters
    ----------
    prior_gamma:
        2 x K array of prior hyperparameters Gamma^(0); both entries of
        every column must be positive for a proper Beta prior.
    decaying_prior:
        Enable Remark 4: each column's *prior* contribution is divided
        by the number of labels n_k observed in that stratum, shrinking
        the influence of a misspecified prior as data arrives.
    """

    def __init__(self, prior_gamma, *, decaying_prior: bool = False):
        prior = np.array(prior_gamma, dtype=float)
        if prior.ndim != 2 or prior.shape[0] != 2:
            raise ValueError(f"prior_gamma must have shape (2, K); got {prior.shape}")
        if np.any(prior <= 0):
            raise ValueError("prior hyperparameters must be strictly positive")
        self._prior = prior
        self._counts = np.zeros_like(prior)  # observed label counts
        self.decaying_prior = decaying_prior

    @property
    def n_strata(self) -> int:
        return self._prior.shape[1]

    @property
    def labels_per_stratum(self) -> np.ndarray:
        """n_k: number of oracle labels observed from each stratum."""
        return self._counts.sum(axis=0)

    @property
    def gamma(self) -> np.ndarray:
        """Current posterior hyperparameters Gamma^(t) (2 x K).

        With the decaying prior, the prior columns are scaled by
        1 / max(n_k, 1) before adding the observed counts (Remark 4).
        """
        if self.decaying_prior:
            scale = 1.0 / np.maximum(self.labels_per_stratum, 1.0)
            return self._prior * scale + self._counts
        return self._prior + self._counts

    def update(self, stratum: int, label: int) -> None:
        """Record one oracle label from ``stratum`` (Eqn 10)."""
        if not 0 <= stratum < self.n_strata:
            raise IndexError(f"stratum {stratum} out of range [0, {self.n_strata})")
        if label not in (0, 1):
            raise ValueError(f"label must be 0 or 1; got {label}")
        row = 0 if label == 1 else 1
        self._counts[row, stratum] += 1.0

    def update_batch(self, strata, labels) -> None:
        """Record a batch of oracle labels in one vectorised update.

        Equivalent to calling :meth:`update` once per ``(stratum,
        label)`` pair: the conjugate posterior depends only on the
        per-stratum label counts, which are accumulated here with two
        ``np.bincount`` calls instead of a Python loop.
        """
        strata = np.asarray(strata, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if strata.shape != labels.shape or strata.ndim != 1:
            raise ValueError(
                f"strata {strata.shape} and labels {labels.shape} must be "
                "aligned 1-D arrays"
            )
        if len(strata) == 0:
            return
        if strata.min() < 0 or strata.max() >= self.n_strata:
            raise IndexError(
                f"stratum indices must lie in [0, {self.n_strata})"
            )
        if np.any((labels != 0) & (labels != 1)):
            bad = labels[(labels != 0) & (labels != 1)][0]
            raise ValueError(f"label must be 0 or 1; got {bad}")
        matches = labels == 1
        self._counts[0] += np.bincount(strata[matches], minlength=self.n_strata)
        self._counts[1] += np.bincount(strata[~matches], minlength=self.n_strata)

    def posterior_mean(self) -> np.ndarray:
        """Point estimate pi-hat per stratum: the posterior mean (Eqn 11)."""
        gamma = self.gamma
        return gamma[0] / gamma.sum(axis=0)

    def posterior_variance(self) -> np.ndarray:
        """Posterior variance of pi_k (diagnostic for uncertainty)."""
        gamma = self.gamma
        total = gamma.sum(axis=0)
        return gamma[0] * gamma[1] / (total**2 * (total + 1.0))

    def credible_interval(self, level: float = 0.95) -> np.ndarray:
        """Equal-tailed Beta credible intervals, shape (2, K)."""
        from scipy import stats

        check_positive(level, "level")
        if not level < 1:
            raise ValueError(f"level must be < 1; got {level}")
        gamma = self.gamma
        lower = stats.beta.ppf((1 - level) / 2, gamma[0], gamma[1])
        upper = stats.beta.ppf(1 - (1 - level) / 2, gamma[0], gamma[1])
        return np.vstack([lower, upper])

    def reset(self) -> None:
        """Discard all observed labels, restoring the prior."""
        self._counts[:] = 0.0

    def state_dict(self) -> dict:
        """Versioned snapshot: prior, observed counts, decay flag."""
        return {
            "format_version": 1,
            "prior_gamma": np.array(self._prior, copy=True),
            "counts": np.array(self._counts, copy=True),
            "decaying_prior": self.decaying_prior,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        The prior is restored along with the counts: a snapshot fully
        determines the posterior, regardless of the prior this instance
        was constructed with.
        """
        version = state.get("format_version")
        if version != 1:
            raise ValueError(f"unsupported model state version {version!r}")
        prior = np.asarray(state["prior_gamma"], dtype=float)
        counts = np.asarray(state["counts"], dtype=float)
        if prior.shape != self._prior.shape or counts.shape != prior.shape:
            raise ValueError(
                f"state has {prior.shape[1] if prior.ndim == 2 else '?'} "
                f"strata, but this model has {self.n_strata}"
            )
        self._prior = np.array(prior, copy=True)
        self._counts = np.array(counts, copy=True)
        self.decaying_prior = bool(state["decaying_prior"])
