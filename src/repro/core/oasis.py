"""The OASIS sampler (paper Algorithm 3, section 4.4).

Each iteration: compute the epsilon-greedy stratified instrumental
distribution v^(t) from the current Bayesian model, draw a stratum then
a pair uniformly within it, query the oracle (with label caching),
update the Beta posterior and the importance-weighted estimate of the
target measure.  The paper targets the F-measure; any
:class:`~repro.measures.ratio.RatioMeasure` (precision, recall,
accuracy, ...) can be targeted instead — the instrumental distribution
is derived from the measure's gradient, so the sampling effort
reallocates to wherever *that* measure's variance lives.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import BaseEvaluationSampler
from repro.core.bayes import BetaBernoulliModel
from repro.core.estimators import AISEstimator
from repro.core.initialisation import initialise_from_scores
from repro.core.instrumental import epsilon_greedy, stratified_optimal_instrumental
from repro.core.stratification import Strata, stratify
from repro.oracle.base import BaseOracle
from repro.utils import check_in_range, check_positive

__all__ = ["OASISSampler"]


class OASISSampler(BaseEvaluationSampler):
    """Optimal Asymptotic Sequential Importance Sampling.

    Parameters
    ----------
    predictions:
        Predicted labels (R-hat membership) per pool item.
    scores:
        Similarity scores per pool item (probabilities or margins).
    oracle:
        Labelling oracle.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        The target :class:`~repro.measures.ratio.RatioMeasure` (or kind
        name / spec dict); defaults to ``FMeasure(0.5)``, the paper's
        setting.
    epsilon:
        Greediness 0 < epsilon <= 1 (paper experiments use 1e-3).
        Small epsilon exploits the optimal distribution; epsilon = 1 is
        pure passive sampling.
    n_strata:
        Requested number of CSF strata K-tilde (30-60 recommended).
    prior_strength:
        eta for the prior Gamma^(0) = eta * [pi; 1-pi]; defaults to 2K.
    stratification_method:
        "csf" (Algorithm 1) or "equal_size".
    strata:
        Pre-built :class:`Strata` to reuse (skips stratification).
    decaying_prior:
        Enable the Remark 4 prior decay (default True: the paper
        reports it speeds convergence of pi-hat and adds robustness to
        misspecified priors; disable to recover the plain conjugate
        update).
    scores_are_probabilities:
        Passed to initialisation; None auto-detects from score range.
    threshold:
        Decision threshold tau used in the logit mapping of
        uncalibrated scores.
    score_scale:
        Optional divisor for the margin-to-probability squash in
        initialisation; see
        :func:`repro.core.initialisation.initialise_from_scores`.
        The default (None = raw scores) follows the paper; "auto"
        standardises the margins first, which can sharpen priors for
        small-scale margins considerably.
    record_diagnostics:
        When True, record per-iteration snapshots of pi-hat and v^(t)
        (needed by the Figure 4 convergence experiment; costs memory).
    random_state:
        Seed or generator.
    """

    def __init__(
        self,
        predictions,
        scores,
        oracle: BaseOracle,
        *,
        alpha: float | None = None,
        measure=None,
        epsilon: float = 1e-3,
        n_strata: int = 30,
        prior_strength: float | None = None,
        stratification_method: str = "csf",
        strata: Strata | None = None,
        decaying_prior: bool = True,
        scores_are_probabilities: bool | None = None,
        threshold: float = 0.0,
        score_scale: float | str | None = None,
        record_diagnostics: bool = False,
        random_state=None,
    ):
        super().__init__(predictions, scores, oracle, alpha=alpha,
                         measure=measure, random_state=random_state)
        check_in_range(epsilon, 0.0, 1.0, "epsilon", low_open=True)
        self.epsilon = epsilon

        if strata is not None:
            if strata.n_items != self.n_items:
                raise ValueError(
                    f"strata cover {strata.n_items} items but the pool has "
                    f"{self.n_items}"
                )
            self.strata = strata
        else:
            check_positive(n_strata, "n_strata")
            self.strata = stratify(self.scores, n_strata, stratification_method)

        init = initialise_from_scores(
            self.strata,
            self.predictions,
            measure=self.measure,
            prior_strength=prior_strength,
            scores_are_probabilities=scores_are_probabilities,
            threshold=threshold,
            score_scale=score_scale,
        )
        self._initialisation = init
        self.model = BetaBernoulliModel(init.prior_gamma, decaying_prior=decaying_prior)
        self._estimator = AISEstimator(measure=self.measure,
                                       track_observations=True)
        # G-hat^(0): the score-based guess seeds the instrumental
        # distribution until weighted observations arrive.
        self._current_estimate = init.estimate
        self._mean_predictions = init.mean_predictions
        self._stratum_weights = self.strata.weights

        self.record_diagnostics = record_diagnostics
        self.pi_history: list[np.ndarray] = []
        self.instrumental_history: list[np.ndarray] = []
        self.weight_history: list[float] = []

    @property
    def n_strata(self) -> int:
        return self.strata.n_strata

    @property
    def initial_estimate(self) -> float:
        """The score-based plug-in guess G-hat^(0) from Algorithm 2."""
        return self._initialisation.estimate

    @property
    def initial_f_measure(self) -> float:
        """Historical alias for :attr:`initial_estimate`."""
        return self._initialisation.estimate

    @property
    def pi_estimate(self) -> np.ndarray:
        """Current posterior-mean estimate of the stratum probabilities."""
        return self.model.posterior_mean()

    def instrumental_distribution(self) -> np.ndarray:
        """The epsilon-greedy stratified distribution v^(t) (Eqn 12)."""
        optimal = stratified_optimal_instrumental(
            self._stratum_weights,
            self._mean_predictions,
            self.model.posterior_mean(),
            self._current_estimate,
            measure=self.measure,
        )
        return epsilon_greedy(optimal, self._stratum_weights, self.epsilon)

    def optimal_distribution(self) -> np.ndarray:
        """The un-mixed v*^(t) estimate (diagnostic for Figure 4)."""
        return stratified_optimal_instrumental(
            self._stratum_weights,
            self._mean_predictions,
            self.model.posterior_mean(),
            self._current_estimate,
            measure=self.measure,
        )

    def _step(self) -> None:
        # (3) instrumental distribution from the current model state.
        v = self.instrumental_distribution()
        # (4) draw a stratum, (5) then a pair uniformly within it.
        stratum = int(self.rng.choice(self.n_strata, p=v))
        index = self.strata.sample_in_stratum(stratum, self.rng)
        # (6) importance weight w_t = omega_k / v_k  (p uniform on pool,
        # within-stratum draw uniform, so p(z)/q(z) reduces to this).
        weight = self._stratum_weights[stratum] / v[stratum]
        # (7) oracle label (cached re-draws are free) and (8) prediction.
        label = self._query_label(index)
        prediction = int(self.predictions[index])
        # (9)-(10) posterior update.
        self.model.update(stratum, label)
        # (11) measure-estimate update.
        self._estimator.update(label, prediction, weight)
        estimate = self._estimator.estimate
        if not np.isnan(estimate):
            self._current_estimate = estimate

        self.sampled_indices.append(index)
        self.history.append(estimate)
        self.budget_history.append(self.labels_consumed)
        if self.record_diagnostics:
            # Snapshots must be copies owned by the history: aliasing
            # live model state would let later updates silently rewrite
            # the recorded Figure-4 convergence trajectories.
            self.pi_history.append(np.array(self.model.posterior_mean(), copy=True))
            self.instrumental_history.append(np.array(v, copy=True))
            self.weight_history.append(float(weight))

    def _propose_batch(self, batch_size: int) -> dict:
        """Propose ``batch_size`` draws under a frozen v^(t).

        The instrumental distribution is computed once for the block
        (the Delyon & Portier block-adaptive relaxation of Algorithm
        3); stratum choices, within-stratum draws and the importance
        weights are all vectorised.  No labels are consumed — commit
        happens in :meth:`_commit_batch` once they arrive.
        """
        v = self.instrumental_distribution()
        strata_drawn = self.rng.choice(self.n_strata, p=v, size=batch_size)
        indices = self.strata.sample_in_strata(strata_drawn, self.rng)
        weights = self._stratum_weights[strata_drawn] / v[strata_drawn]
        return {
            "indices": indices,
            "strata": strata_drawn,
            "weights": weights,
            "v": v,
        }

    def _commit_batch(self, context, labels, new_mask) -> None:
        """Fold one proposed batch's labels into model and estimator.

        Histories gain one entry per draw: the estimate trajectory is
        exact (the AIS running sums are replayed cumulatively) while
        the diagnostic snapshots record the post-batch state for every
        draw in the block, since intermediate posteriors are never
        materialised.
        """
        indices = context["indices"]
        strata_drawn = context["strata"]
        weights = context["weights"]
        predictions = self.predictions[indices]

        self.model.update_batch(strata_drawn, labels)
        trajectory = self._estimator.update_batch(labels, predictions, weights)
        estimate = trajectory[-1]
        if not np.isnan(estimate):
            self._current_estimate = float(estimate)

        self.sampled_indices.extend(int(i) for i in indices)
        self.history.extend(trajectory.tolist())
        consumed = self.labels_consumed
        budgets = consumed - int(new_mask.sum()) + np.cumsum(new_mask)
        self.budget_history.extend(int(b) for b in budgets)
        if self.record_diagnostics:
            pi = np.array(self.model.posterior_mean(), copy=True)
            v_snapshot = np.array(context["v"], copy=True)
            batch_size = len(indices)
            self.pi_history.extend([pi] * batch_size)
            self.instrumental_history.extend([v_snapshot] * batch_size)
            self.weight_history.extend(float(w) for w in weights)

    def _extra_state(self) -> dict:
        state = {
            "epsilon": self.epsilon,
            "strata_checksum": self.strata.checksum(),
            "n_strata": self.n_strata,
            "model": self.model.state_dict(),
            "estimator": self._estimator.state_dict(),
            "current_estimate": self._current_estimate,
            "record_diagnostics": self.record_diagnostics,
        }
        if self.record_diagnostics:
            state["pi_history"] = [np.array(p, copy=True) for p in self.pi_history]
            state["instrumental_history"] = [
                np.array(v, copy=True) for v in self.instrumental_history
            ]
            state["weight_history"] = list(self.weight_history)
        return state

    def _load_extra_state(self, state: dict) -> None:
        if state["strata_checksum"] != self.strata.checksum():
            raise ValueError(
                "state was captured over a different stratification; "
                "rebuild the sampler with the same scores and strata "
                "configuration before restoring"
            )
        if float(state["epsilon"]) != self.epsilon:
            raise ValueError(
                f"state was captured with epsilon={state['epsilon']}, but "
                f"this sampler has epsilon={self.epsilon}"
            )
        self.model.load_state_dict(state["model"])
        self._estimator.load_state_dict(state["estimator"])
        # v1 snapshots stored the running estimate as "current_f".
        current = state.get("current_estimate", state.get("current_f"))
        self._current_estimate = float(current)
        self.record_diagnostics = bool(state["record_diagnostics"])
        if self.record_diagnostics:
            self.pi_history = [
                np.asarray(p, dtype=float) for p in state["pi_history"]
            ]
            self.instrumental_history = [
                np.asarray(v, dtype=float) for v in state["instrumental_history"]
            ]
            self.weight_history = [float(w) for w in state["weight_history"]]
        else:
            self.pi_history = []
            self.instrumental_history = []
            self.weight_history = []

    @property
    def precision_estimate(self) -> float:
        """Importance-weighted precision estimate (alpha = 1)."""
        return self._estimator.precision

    @property
    def recall_estimate(self) -> float:
        """Importance-weighted recall estimate (alpha = 0)."""
        return self._estimator.recall

    def confidence_interval(self, level: float = 0.95) -> tuple:
        """Asymptotic confidence interval for the target-measure estimate.

        Delta-method normal approximation on the importance-weighted
        ratio estimator (an extension beyond the paper; see
        :meth:`repro.core.estimators.AISEstimator.confidence_interval`).
        """
        return self._estimator.confidence_interval(level)
