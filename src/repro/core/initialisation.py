"""Initialisation of the Bayesian model (paper Algorithm 2, section 4.3).

The similarity scores carry enough information to bootstrap OASIS: the
mean score per stratum is a guess for pi_k (with a logit mapping when
scores are not probabilities), the mean prediction per stratum gives
lambda_k, and a plug-in computation yields the initial guess of the
target measure (the paper's line 8 specialises to the F-measure; any
:class:`~repro.measures.ratio.RatioMeasure` evaluates from the same
stratified moments).  The prior hyperparameters follow as
Gamma^(0) = eta * [pi; 1 - pi].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stratification import Strata
from repro.measures.ratio import RatioMeasure, resolve_measure
from repro.utils import check_positive, expit

__all__ = ["Initialisation", "initialise_from_scores"]


@dataclass(frozen=True)
class Initialisation:
    """Output of Algorithm 2 plus the prior construction.

    Attributes
    ----------
    pi:
        Initial per-stratum oracle-probability guesses pi-hat^(0).
    estimate:
        Initial plug-in guess of the target measure (F-hat^(0) on the
        F-measure path).
    prior_gamma:
        2 x K prior hyperparameter matrix Gamma^(0).
    mean_predictions:
        lambda_k per stratum (needed by the instrumental distribution).
    measure:
        The target measure the guess was computed for.
    """

    pi: np.ndarray
    estimate: float
    prior_gamma: np.ndarray
    mean_predictions: np.ndarray
    measure: RatioMeasure

    @property
    def f_measure(self) -> float:
        """Historical alias for :attr:`estimate`."""
        return self.estimate


def initialise_from_scores(
    strata: Strata,
    predictions,
    *,
    alpha: float | None = None,
    measure=None,
    prior_strength: float | None = None,
    scores_are_probabilities: bool | None = None,
    threshold: float = 0.0,
    score_scale: float | str | None = None,
) -> Initialisation:
    """Run Algorithm 2 and build the prior.

    Parameters
    ----------
    strata:
        Stratification of the pool (carries the scores).
    predictions:
        Predicted labels per pool item.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        The target :class:`~repro.measures.ratio.RatioMeasure` (or kind
        name / spec dict); defaults to ``FMeasure(0.5)``.
    prior_strength:
        eta > 0 controlling prior concentration; defaults to ``2 * K``
        (the value used throughout the paper's experiments).
    scores_are_probabilities:
        If None, auto-detect: scores already within [0, 1] are taken as
        probabilities; otherwise they are shifted by ``threshold`` and
        squashed through the logistic function (Algorithm 2 line 4).
    threshold:
        The decision threshold tau for uncalibrated scores.
    score_scale:
        Divisor applied to shifted margins before the logistic squash:
        ``pi = expit((score - threshold) / score_scale)``.  The paper's
        Algorithm 2 uses raw shifted scores (``score_scale = 1``, the
        default here, kept for fidelity); margin scales are classifier-
        specific, so a scale-aware choice can sharpen badly-scaled
        priors considerably — pass ``"auto"`` for ``0.5 * std(scores)``
        or any positive number.  See the score-scale ablation benchmark.

    Returns
    -------
    Initialisation
    """
    measure = resolve_measure(measure, alpha)
    predictions = np.asarray(predictions, dtype=float)
    if predictions.shape != strata.allocations.shape:
        raise ValueError("predictions must align with the stratified pool")
    if prior_strength is None:
        prior_strength = 2.0 * strata.n_strata
    check_positive(prior_strength, "prior_strength")

    scores = strata.scores
    if scores_are_probabilities is None:
        scores_are_probabilities = bool(
            scores.min() >= 0.0 and scores.max() <= 1.0
        )

    mean_scores = strata.mean_scores()
    if scores_are_probabilities:
        pi = np.clip(mean_scores, 0.0, 1.0)
    else:
        if score_scale is None:
            scale = 1.0
        elif score_scale == "auto":
            spread = float(np.std(scores))
            scale = 0.5 * spread if spread > 0 else 1.0
        else:
            scale = float(score_scale)
            if scale <= 0:
                raise ValueError(f"score_scale must be positive; got {scale}")
        pi = expit((mean_scores - threshold) / scale)
        pi = np.asarray(pi, dtype=float)

    # Keep the prior proper: Beta parameters must be positive, so pull
    # pi strictly inside (0, 1).
    pi = np.clip(pi, 1e-6, 1.0 - 1e-6)

    mean_predictions = strata.stratum_means(predictions)
    sizes = strata.sizes.astype(float)

    # Algorithm 2 line 8: plug-in estimate of the target measure from
    # the stratified guesses (the paper's F-measure line generalises to
    # any ratio measure evaluated at the same moments).
    estimated_tp = float(np.sum(sizes * pi * mean_predictions))
    predicted_pos = float(np.sum(sizes * mean_predictions))
    actual_pos = float(np.sum(sizes * pi))
    total = float(np.sum(sizes))
    estimate = measure.value_from_sums(
        estimated_tp, predicted_pos, actual_pos, total, clamp=False
    )

    prior_gamma = prior_strength * np.vstack([pi, 1.0 - pi])
    return Initialisation(
        pi=pi,
        estimate=estimate,
        prior_gamma=prior_gamma,
        mean_predictions=mean_predictions,
        measure=measure,
    )
