"""Score stratification (paper section 4.2.1, Algorithm 1, Figure 1).

Stratification here is a *parameter-reduction* device: the pool's N
oracle probabilities are replaced by K per-stratum probabilities, with
similarity scores serving as the homogeneity proxy.  The cumulative
sqrt(F) (CSF) method of Dalenius & Hodges targets minimal intra-stratum
score variance; an equal-size alternative is provided for the ablation
mentioned alongside [14].
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_positive

__all__ = ["Strata", "csf_stratify", "equal_size_stratify", "stratify"]


class Strata:
    """A partition of pool items into strata, with per-stratum stats.

    Parameters
    ----------
    allocations:
        Integer array mapping each pool item to its stratum index in
        ``[0, K)``.  Stratum indices must be contiguous (no empty
        strata) — the factory functions below guarantee this.
    scores:
        Similarity scores per pool item (kept for initialisation).
    """

    def __init__(self, allocations, scores):
        allocations = np.asarray(allocations, dtype=np.int64)
        scores = np.asarray(scores, dtype=float)
        if allocations.shape != scores.shape:
            raise ValueError(
                f"allocations {allocations.shape} and scores {scores.shape} "
                "must align"
            )
        if len(allocations) == 0:
            raise ValueError("cannot stratify an empty pool")
        n_strata = int(allocations.max()) + 1
        counts = np.bincount(allocations, minlength=n_strata)
        if np.any(counts == 0):
            raise ValueError("stratum indices must be contiguous (no empty strata)")
        self.allocations = allocations
        self.scores = scores
        self.n_strata = n_strata
        self.sizes = counts
        # Pool items grouped by stratum for O(1) within-stratum draws.
        order = np.argsort(allocations, kind="stable")
        boundaries = np.cumsum(counts)[:-1]
        self._members = np.split(order, boundaries)
        # Flat layout of the same grouping for vectorised batch draws:
        # stratum k occupies order[starts[k] : starts[k] + sizes[k]].
        self._order = order
        self._starts = np.concatenate([[0], boundaries])

    def __len__(self) -> int:
        return self.n_strata

    @property
    def n_items(self) -> int:
        return len(self.allocations)

    @property
    def weights(self) -> np.ndarray:
        """Stratum weights omega_k = |P_k| / N."""
        return self.sizes / self.n_items

    def members(self, k: int) -> np.ndarray:
        """Pool indices of the items in stratum ``k``."""
        return self._members[k]

    def mean_scores(self) -> np.ndarray:
        """Mean similarity score per stratum (Algorithm 2, line 2)."""
        sums = np.bincount(self.allocations, weights=self.scores, minlength=self.n_strata)
        return sums / self.sizes

    def stratum_means(self, values) -> np.ndarray:
        """Mean of an arbitrary per-item array within each stratum."""
        values = np.asarray(values, dtype=float)
        if values.shape != self.allocations.shape:
            raise ValueError("values must align with the pool")
        sums = np.bincount(self.allocations, weights=values, minlength=self.n_strata)
        return sums / self.sizes

    def sample_in_stratum(self, k: int, rng) -> int:
        """Draw one pool index uniformly from stratum ``k``."""
        members = self._members[k]
        return int(members[rng.integers(len(members))])

    def checksum(self) -> str:
        """Content fingerprint of the partition (allocations only).

        Samplers embed this in their :meth:`state_dict` snapshots so a
        restore onto a differently-stratified pool fails loudly instead
        of silently mixing stratum statistics.
        """
        import hashlib

        return hashlib.sha256(
            np.ascontiguousarray(self.allocations).tobytes()
        ).hexdigest()[:16]

    def state_dict(self) -> dict:
        """Versioned snapshot from which the partition can be rebuilt."""
        return {
            "format_version": 1,
            "allocations": np.array(self.allocations, copy=True),
            "scores": np.array(self.scores, copy=True),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "Strata":
        """Rebuild a :class:`Strata` from a :meth:`state_dict` snapshot.

        Construction from (allocations, scores) is deterministic — the
        member layout is a stable argsort — so the rebuilt partition
        draws bit-identically to the one snapshotted.
        """
        version = state.get("format_version")
        if version != 1:
            raise ValueError(f"unsupported strata state version {version!r}")
        return cls(state["allocations"], state["scores"])

    def sample_in_strata(self, strata, rng) -> np.ndarray:
        """Vectorised within-stratum draws, one per entry of ``strata``.

        Equivalent to calling :meth:`sample_in_stratum` once per entry
        but with a single bounded-integer RNG call and a single gather;
        for one entry it consumes the random stream identically to the
        scalar method.
        """
        strata = np.asarray(strata, dtype=np.int64)
        if strata.ndim != 1:
            raise ValueError(f"strata must be 1-D; got shape {strata.shape}")
        if len(strata) == 0:
            return np.zeros(0, dtype=np.int64)
        if strata.min() < 0 or strata.max() >= self.n_strata:
            raise IndexError(
                f"stratum indices must lie in [0, {self.n_strata})"
            )
        positions = rng.integers(0, self.sizes[strata])
        return self._order[self._starts[strata] + positions]


def _allocations_from_edges(scores: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin scores by right-open edges, then compact away empty strata."""
    # searchsorted over interior edges: item falls in stratum i when
    # edges[i] <= score < edges[i+1]; the last bin is right-closed.
    allocations = np.searchsorted(edges[1:-1], scores, side="right")
    # Remove empty strata, renumbering contiguously (Algorithm 1 line 19).
    used, compact = np.unique(allocations, return_inverse=True)
    return compact


def csf_stratify(
    scores,
    n_strata: int = 30,
    *,
    n_bins: int | None = None,
) -> Strata:
    """Cumulative sqrt(F) stratification (Algorithm 1).

    Builds a histogram of the scores with ``n_bins`` bins, computes the
    cumulative sum of sqrt(bin counts), and cuts it into ``n_strata``
    equal-width intervals on that scale.  Bins are then mapped back to
    score thresholds.  The returned number of strata may be smaller
    than requested (empty strata are dropped) — exactly as the paper's
    Algorithm 1 notes ("not guaranteed K = K-tilde").

    Parameters
    ----------
    scores:
        Pool similarity scores.
    n_strata:
        Desired number of strata K-tilde.
    n_bins:
        Histogram resolution M; defaults to ``max(10 * n_strata, 100)``.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or len(scores) == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    n_strata = int(check_positive(n_strata, "n_strata"))
    if n_bins is None:
        n_bins = max(10 * n_strata, 100)
    n_bins = int(check_positive(n_bins, "n_bins"))

    if np.ptp(scores) == 0:
        # All scores identical: a single stratum is the only option.
        return Strata(np.zeros(len(scores), dtype=np.int64), scores)

    try:
        counts, bin_edges = np.histogram(scores, bins=n_bins)
    except ValueError:
        # A nonzero but degenerate spread (subnormal range, or a range
        # whose bin width underflows) leaves numpy unable to form
        # finite bins; the scores are indistinguishable at any usable
        # resolution, so fall back to a single stratum.
        return Strata(np.zeros(len(scores), dtype=np.int64), scores)
    csf = np.cumsum(np.sqrt(counts))
    width = csf[-1] / n_strata

    # Walk the histogram, cutting a stratum whenever the cumulative
    # sqrt(F) crosses the next multiple of ``width`` (Alg. 1 lines 8-18).
    edges = [bin_edges[0]]
    next_cut = width
    for j in range(n_bins - 1):
        if len(edges) - 1 >= n_strata - 1:
            break
        if csf[j] >= next_cut:
            edges.append(bin_edges[j + 1])
            next_cut = (len(edges) - 1 + 1) * width
    edges.append(bin_edges[-1])
    allocations = _allocations_from_edges(scores, np.asarray(edges))
    return Strata(allocations, scores)


def equal_size_stratify(scores, n_strata: int = 30) -> Strata:
    """Equal-size stratification: quantile cuts of the score ranking.

    The alternative mentioned in section 4.2.1 (cf. the equal-size
    method of [14]): each stratum receives ~N/K items, ties broken by
    stable sort order.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or len(scores) == 0:
        raise ValueError("scores must be a non-empty 1-D array")
    n_strata = int(check_positive(n_strata, "n_strata"))
    n_strata = min(n_strata, len(scores))
    order = np.argsort(scores, kind="stable")
    allocations = np.empty(len(scores), dtype=np.int64)
    # Spread items as evenly as possible across strata.
    splits = np.array_split(order, n_strata)
    for k, chunk in enumerate(splits):
        allocations[chunk] = k
    # Guard against empty chunks when K ~ N.
    used, compact = np.unique(allocations, return_inverse=True)
    return Strata(compact, scores)


def stratify(scores, n_strata: int = 30, method: str = "csf") -> Strata:
    """Dispatch to a stratification method by name ("csf" or "equal_size")."""
    if method == "csf":
        return csf_stratify(scores, n_strata)
    if method == "equal_size":
        return equal_size_stratify(scores, n_strata)
    raise ValueError(f"unknown stratification method {method!r}")
