"""The paper's primary contribution: the OASIS sampler and its parts.

Components map to the paper as follows:

* :mod:`repro.core.stratification` — Algorithm 1 (CSF stratification).
* :mod:`repro.core.bayes` — section 4.2.2 Beta-Bernoulli latent model.
* :mod:`repro.core.instrumental` — Eqns (5), (6), (12).
* :mod:`repro.core.initialisation` — Algorithm 2.
* :mod:`repro.core.estimators` — Eqn (3) AIS F-measure estimator.
* :mod:`repro.core.oasis` — Algorithm 3, tying everything together.
"""

from repro.core.bayes import BetaBernoulliModel
from repro.core.estimators import (
    AISEstimator,
    sample_f_measure_history,
    sample_measure_history,
)
from repro.core.initialisation import initialise_from_scores
from repro.core.instrumental import (
    epsilon_greedy,
    optimal_instrumental_pointwise,
    stratified_optimal_instrumental,
)
from repro.core.oasis import OASISSampler
from repro.core.stratification import Strata, csf_stratify, equal_size_stratify, stratify

__all__ = [
    "BetaBernoulliModel",
    "AISEstimator",
    "sample_f_measure_history",
    "sample_measure_history",
    "initialise_from_scores",
    "epsilon_greedy",
    "optimal_instrumental_pointwise",
    "stratified_optimal_instrumental",
    "OASISSampler",
    "Strata",
    "csf_stratify",
    "equal_size_stratify",
    "stratify",
]
