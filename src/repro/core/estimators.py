"""Importance-weighted F-measure estimation (paper Eqn 3, section 5.2).

The AIS estimator is a ratio of importance-weighted sample sums:

    F-hat = sum_t w_t l_t lhat_t
            -------------------------------------------------
            alpha sum_t w_t lhat_t + (1-alpha) sum_t w_t l_t

where w_t = p(z_t) / q_t(z_t).  :class:`AISEstimator` maintains those
running sums incrementally (numerator, weighted predicted positives,
weighted actual positives) and can report F, precision and recall at
every iteration.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_in_range

__all__ = ["AISEstimator", "sample_f_measure_history"]


class AISEstimator:
    """Online ratio-of-sums estimator for F-measure, precision, recall.

    Parameters
    ----------
    alpha:
        F-measure weight (0.5 balanced; 1 precision; 0 recall).
    track_observations:
        Keep the per-observation (weight, label, prediction) triples so
        delta-method confidence intervals can be computed on demand
        (:meth:`confidence_interval`).  Costs three floats per update.
    """

    def __init__(self, alpha: float = 0.5, *, track_observations: bool = False):
        check_in_range(alpha, 0.0, 1.0, "alpha")
        self.alpha = alpha
        self.track_observations = track_observations
        self._weighted_tp = 0.0  # sum w * l * lhat
        self._weighted_pred = 0.0  # sum w * lhat
        self._weighted_true = 0.0  # sum w * l
        self.n_observations = 0
        self._observations: list[tuple[float, float, float]] = []

    def update(self, label: int, prediction: int, weight: float = 1.0) -> None:
        """Fold in one observation (l_t, lhat_t) with weight w_t."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative; got {weight}")
        label = float(label)
        prediction = float(prediction)
        self._weighted_tp += weight * label * prediction
        self._weighted_pred += weight * prediction
        self._weighted_true += weight * label
        self.n_observations += 1
        if self.track_observations:
            self._observations.append((weight, label, prediction))

    def update_batch(self, labels, predictions, weights=None) -> np.ndarray:
        """Fold in a batch of observations with one vectorised update.

        Equivalent to calling :meth:`update` per observation in order.
        The running sums advance by cumulative sums computed in the
        same left-to-right order as the sequential path, so the
        post-batch state matches a sequential replay of the same
        observations and a batch of one is bit-identical to a single
        :meth:`update`.

        Returns the per-observation estimate trajectory (the value
        :attr:`estimate` would have reported after each observation;
        NaN where undefined) so batched samplers can keep per-draw
        histories without materialising intermediate states.
        """
        labels = np.asarray(labels, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        if labels.shape != predictions.shape or labels.ndim != 1:
            raise ValueError(
                f"labels {labels.shape} and predictions {predictions.shape} "
                "must be aligned 1-D arrays"
            )
        if weights is None:
            weights = np.ones_like(labels)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != labels.shape:
                raise ValueError(
                    f"weights {weights.shape} must align with labels "
                    f"{labels.shape}"
                )
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
        if len(labels) == 0:
            return np.zeros(0)

        # Cumulate with the running sum as the first term so additions
        # happen in exactly the sequential left-to-right order — the
        # post-batch state is bit-identical to a sequential replay.
        def running(start, contributions):
            return np.cumsum(np.concatenate([[start], contributions]))[1:]

        tp_cum = running(self._weighted_tp, weights * labels * predictions)
        pred_cum = running(self._weighted_pred, weights * predictions)
        true_cum = running(self._weighted_true, weights * labels)
        denominator = self.alpha * pred_cum + (1.0 - self.alpha) * true_cum
        with np.errstate(invalid="ignore", divide="ignore"):
            trajectory = np.where(
                denominator > 0,
                np.minimum(1.0, tp_cum / denominator),
                np.nan,
            )

        self._weighted_tp = float(tp_cum[-1])
        self._weighted_pred = float(pred_cum[-1])
        self._weighted_true = float(true_cum[-1])
        self.n_observations += len(labels)
        if self.track_observations:
            self._observations.extend(
                zip(weights.tolist(), labels.tolist(), predictions.tolist())
            )
        return trajectory

    def f_measure(self, alpha: float | None = None) -> float:
        """Current F_alpha estimate; NaN while undefined."""
        if alpha is None:
            alpha = self.alpha
        else:
            check_in_range(alpha, 0.0, 1.0, "alpha")
        denominator = alpha * self._weighted_pred + (1.0 - alpha) * self._weighted_true
        if denominator <= 0:
            return float("nan")
        # The ratio is <= 1 mathematically (w l lhat <= w (a lhat + (1-a) l)
        # termwise) but roundoff in the denominator can nudge it past 1
        # when every observation is a true positive.
        return min(1.0, self._weighted_tp / denominator)

    @property
    def estimate(self) -> float:
        return self.f_measure()

    @property
    def precision(self) -> float:
        return self.f_measure(alpha=1.0)

    @property
    def recall(self) -> float:
        return self.f_measure(alpha=0.0)

    def variance_estimate(self, alpha: float | None = None) -> float:
        """Delta-method variance of the ratio estimator.

        Writing the estimate as F = A/B with A the weighted TP mean and
        B the weighted denominator mean, the first-order expansion
        gives  Var(F) ~ mean[(w (f_num - F f_den))^2] / (T B^2).
        Requires ``track_observations=True``; NaN while the estimate is
        undefined.
        """
        if not self.track_observations:
            raise RuntimeError(
                "variance_estimate requires track_observations=True"
            )
        if alpha is None:
            alpha = self.alpha
        f_hat = self.f_measure(alpha)
        if np.isnan(f_hat) or self.n_observations == 0:
            return float("nan")
        obs = np.asarray(self._observations)
        weights, labels, preds = obs[:, 0], obs[:, 1], obs[:, 2]
        f_num = labels * preds
        f_den = alpha * preds + (1.0 - alpha) * labels
        t = self.n_observations
        b_bar = float(np.sum(weights * f_den)) / t
        if b_bar <= 0:
            return float("nan")
        influence = weights * (f_num - f_hat * f_den)
        return float(np.mean(influence**2) / (t * b_bar**2))

    def confidence_interval(self, level: float = 0.95,
                            alpha: float | None = None) -> tuple:
        """Normal-approximation confidence interval for the estimate.

        Based on the asymptotic normality of the importance-weighted
        ratio estimator; clipped to [0, 1].  Returns (NaN, NaN) while
        the estimate is undefined.
        """
        from scipy import stats

        check_in_range(level, 0.0, 1.0, "level", low_open=True, high_open=True)
        f_hat = self.f_measure(alpha)
        variance = self.variance_estimate(alpha)
        if np.isnan(f_hat) or np.isnan(variance):
            return (float("nan"), float("nan"))
        z = float(stats.norm.ppf(0.5 + level / 2.0))
        half = z * np.sqrt(variance)
        return (max(0.0, f_hat - half), min(1.0, f_hat + half))

    def state(self) -> dict:
        """Snapshot of the running sums (for checkpoint/diagnostics)."""
        return {
            "weighted_tp": self._weighted_tp,
            "weighted_pred": self._weighted_pred,
            "weighted_true": self._weighted_true,
            "n_observations": self.n_observations,
        }

    def state_dict(self) -> dict:
        """Versioned snapshot capturing the estimator exactly.

        Together with :meth:`load_state_dict` this is the
        snapshot-restore contract of the serving layer: restoring the
        returned dict into a fresh estimator reproduces every future
        estimate bit for bit, including the delta-method confidence
        intervals (the tracked observations ride along).
        """
        state = dict(self.state())
        state["format_version"] = 1
        state["alpha"] = self.alpha
        state["track_observations"] = self.track_observations
        state["observations"] = (
            np.asarray(self._observations, dtype=float).reshape(-1, 3)
            if self.track_observations
            else np.zeros((0, 3))
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place."""
        version = state.get("format_version")
        if version != 1:
            raise ValueError(f"unsupported estimator state version {version!r}")
        if float(state["alpha"]) != self.alpha:
            raise ValueError(
                f"state was captured with alpha={state['alpha']}, but this "
                f"estimator has alpha={self.alpha}"
            )
        self._weighted_tp = float(state["weighted_tp"])
        self._weighted_pred = float(state["weighted_pred"])
        self._weighted_true = float(state["weighted_true"])
        self.n_observations = int(state["n_observations"])
        self.track_observations = bool(state["track_observations"])
        observations = np.asarray(state["observations"], dtype=float).reshape(-1, 3)
        self._observations = [tuple(row) for row in observations.tolist()]

    def reset(self) -> None:
        self._weighted_tp = 0.0
        self._weighted_pred = 0.0
        self._weighted_true = 0.0
        self.n_observations = 0
        self._observations.clear()


def sample_f_measure_history(labels, predictions, weights=None, alpha: float = 0.5):
    """Vectorised trajectory of the AIS estimate after each observation.

    Equivalent to feeding the sequence through :class:`AISEstimator`
    and recording the estimate at every step — used to post-process
    recorded sampling runs without re-simulation.

    Returns an array of length T with NaN where the estimate is
    undefined.
    """
    check_in_range(alpha, 0.0, 1.0, "alpha")
    labels = np.asarray(labels, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    if weights is None:
        weights = np.ones_like(labels)
    else:
        weights = np.asarray(weights, dtype=float)
    if not (len(labels) == len(predictions) == len(weights)):
        raise ValueError("labels, predictions and weights must share length")

    tp = np.cumsum(weights * labels * predictions)
    pred = np.cumsum(weights * predictions)
    true = np.cumsum(weights * labels)
    denominator = alpha * pred + (1.0 - alpha) * true
    with np.errstate(invalid="ignore", divide="ignore"):
        history = np.where(
            denominator > 0, np.minimum(1.0, tp / denominator), np.nan
        )
    return history
