"""Importance-weighted ratio-measure estimation (paper Eqn 3, section 5.2).

The AIS estimator generalises the paper's F-measure estimator to any
:class:`~repro.measures.ratio.RatioMeasure`.  It maintains the four
weighted moment sums

    (sum_t w_t l_t lhat_t,  sum_t w_t lhat_t,  sum_t w_t l_t,  sum_t w_t)

— a linear bijection of the weighted confusion masses (TP, FP, FN, TN)
— and evaluates the configured measure (or any other measure, since the
moments are measure-independent) at every iteration.  For
``FMeasure(alpha)`` this is exactly the paper's ratio of
importance-weighted sums

    F-hat = sum_t w_t l_t lhat_t
            -------------------------------------------------
            alpha sum_t w_t lhat_t + (1-alpha) sum_t w_t l_t

with w_t = p(z_t) / q_t(z_t), evaluated through the identical
floating-point expression tree as the historical alpha-only
implementation.  ``alpha=`` and the ``f_measure()`` / ``precision`` /
``recall`` accessors are kept as thin shims over the measure API.
"""

from __future__ import annotations

import numpy as np

from repro.measures.ratio import (
    FMeasure,
    LinearRatioMeasure,
    measure_from_spec,
    resolve_measure,
)
from repro.utils import check_in_range

__all__ = [
    "AISEstimator",
    "sample_f_measure_history",
    "sample_measure_history",
]


class AISEstimator:
    """Online ratio-of-sums estimator for any ratio measure.

    Parameters
    ----------
    alpha:
        Deprecated F-measure shim: ``alpha=a`` is ``measure=FMeasure(a)``
        (0.5 balanced; 1 precision; 0 recall).  Mutually exclusive with
        ``measure``.
    measure:
        The target :class:`~repro.measures.ratio.RatioMeasure` (or a
        kind name / spec dict); defaults to ``FMeasure(0.5)``.
    track_observations:
        Keep the per-observation (weight, label, prediction) triples so
        delta-method confidence intervals can be computed on demand
        (:meth:`confidence_interval`).  Costs three floats per update.
    """

    def __init__(self, alpha: float | None = None, *, measure=None,
                 track_observations: bool = False):
        self.measure = resolve_measure(measure, alpha)
        self.track_observations = track_observations
        self._weighted_tp = 0.0  # sum w * l * lhat
        self._weighted_pred = 0.0  # sum w * lhat
        self._weighted_true = 0.0  # sum w * l
        self._weighted_count = 0.0  # sum w
        self.n_observations = 0
        self._observations: list[tuple[float, float, float]] = []

    @property
    def alpha(self):
        """The F-family weight, or None for non-F measures (deprecated)."""
        return getattr(self.measure, "alpha", None)

    def update(self, label: int, prediction: int, weight: float = 1.0) -> None:
        """Fold in one observation (l_t, lhat_t) with weight w_t."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative; got {weight}")
        label = float(label)
        prediction = float(prediction)
        self._weighted_tp += weight * label * prediction
        self._weighted_pred += weight * prediction
        self._weighted_true += weight * label
        self._weighted_count += weight
        self.n_observations += 1
        if self.track_observations:
            self._observations.append((weight, label, prediction))

    def update_batch(self, labels, predictions, weights=None) -> np.ndarray:
        """Fold in a batch of observations with one vectorised update.

        Equivalent to calling :meth:`update` per observation in order.
        The running sums advance by cumulative sums computed in the
        same left-to-right order as the sequential path, so the
        post-batch state matches a sequential replay of the same
        observations and a batch of one is bit-identical to a single
        :meth:`update`.

        Returns the per-observation estimate trajectory (the value
        :attr:`estimate` would have reported after each observation;
        NaN where undefined) so batched samplers can keep per-draw
        histories without materialising intermediate states.
        """
        labels = np.asarray(labels, dtype=float)
        predictions = np.asarray(predictions, dtype=float)
        if labels.shape != predictions.shape or labels.ndim != 1:
            raise ValueError(
                f"labels {labels.shape} and predictions {predictions.shape} "
                "must be aligned 1-D arrays"
            )
        if weights is None:
            weights = np.ones_like(labels)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != labels.shape:
                raise ValueError(
                    f"weights {weights.shape} must align with labels "
                    f"{labels.shape}"
                )
            if np.any(weights < 0):
                raise ValueError("weights must be non-negative")
        if len(labels) == 0:
            return np.zeros(0)

        # Cumulate with the running sum as the first term so additions
        # happen in exactly the sequential left-to-right order — the
        # post-batch state is bit-identical to a sequential replay.
        def running(start, contributions):
            return np.cumsum(np.concatenate([[start], contributions]))[1:]

        tp_cum = running(self._weighted_tp, weights * labels * predictions)
        pred_cum = running(self._weighted_pred, weights * predictions)
        true_cum = running(self._weighted_true, weights * labels)
        count_cum = running(self._weighted_count, weights)
        trajectory = np.asarray(
            self.measure.value_from_moments(
                tp_cum, pred_cum, true_cum, count_cum
            ),
            dtype=float,
        )

        self._weighted_tp = float(tp_cum[-1])
        self._weighted_pred = float(pred_cum[-1])
        self._weighted_true = float(true_cum[-1])
        self._weighted_count = float(count_cum[-1])
        self.n_observations += len(labels)
        if self.track_observations:
            self._observations.extend(
                zip(weights.tolist(), labels.tolist(), predictions.tolist())
            )
        return trajectory

    def measure_value(self, measure=None) -> float:
        """Evaluate any ratio measure at the current moment sums.

        The moments are measure-independent, so a single sampling run
        can be read out under every measure; ``measure=None`` evaluates
        the configured target.
        """
        measure = self.measure if measure is None else measure_from_spec(measure)
        return measure.value_from_sums(
            self._weighted_tp,
            self._weighted_pred,
            self._weighted_true,
            self._weighted_count,
        )

    def f_measure(self, alpha: float | None = None) -> float:
        """Current F_alpha estimate; NaN while undefined.

        With ``alpha=None`` and a non-F configured measure, evaluates
        that measure instead (the method predates the measure API and
        is kept as its F-parametrised shim).
        """
        if alpha is None:
            return self.measure_value()
        check_in_range(alpha, 0.0, 1.0, "alpha")
        return self.measure_value(FMeasure(alpha))

    @property
    def estimate(self) -> float:
        return self.measure_value()

    @property
    def precision(self) -> float:
        return self.f_measure(alpha=1.0)

    @property
    def recall(self) -> float:
        return self.f_measure(alpha=0.0)

    def _resolve(self, alpha, measure):
        if alpha is not None and measure is not None:
            raise ValueError("pass either measure= or alpha=, not both")
        if alpha is not None:
            check_in_range(alpha, 0.0, 1.0, "alpha")
            return FMeasure(alpha)
        if measure is not None:
            return measure_from_spec(measure)
        return self.measure

    def variance_estimate(self, alpha: float | None = None, *,
                          measure=None) -> float:
        """Delta-method variance of the ratio estimator.

        For a linear ratio G = A/B (A, B importance-weighted moment
        means) the first-order expansion gives
        ``Var(G) ~ mean[(w (g_num - G g_den))^2] / (T B^2)``; for
        non-linear measures the full gradient form
        ``mean[(grad . (w x - s))^2] / T`` is used.  Requires
        ``track_observations=True``; returns NaN while the estimate is
        undefined or the measure's denominator mass is zero (degenerate
        pools never raise).
        """
        if not self.track_observations:
            raise RuntimeError(
                "variance_estimate requires track_observations=True"
            )
        measure = self._resolve(alpha, measure)
        g_hat = self.measure_value(measure)
        if np.isnan(g_hat) or self.n_observations == 0:
            return float("nan")
        obs = np.asarray(self._observations)
        weights, labels, preds = obs[:, 0], obs[:, 1], obs[:, 2]
        t = self.n_observations
        if isinstance(measure, LinearRatioMeasure):
            g_num, g_den = measure.observation_statistics(labels, preds)
            b_bar = float(np.sum(weights * g_den)) / t
            if b_bar <= 0:
                return float("nan")
            influence = weights * (g_num - g_hat * g_den)
            return float(np.mean(influence**2) / (t * b_bar**2))
        moments = measure.observation_moments(labels, preds, weights)
        mean_moments = moments.sum(axis=0) / t
        gradient = np.asarray(
            measure.moment_gradient(*mean_moments), dtype=float
        )
        if not np.all(np.isfinite(gradient)):
            return float("nan")
        influence = moments @ gradient - float(mean_moments @ gradient)
        return float(np.mean(influence**2) / t)

    def confidence_interval(self, level: float = 0.95,
                            alpha: float | None = None, *,
                            measure=None) -> tuple:
        """Normal-approximation confidence interval for the estimate.

        Based on the asymptotic normality of the importance-weighted
        ratio estimator; clipped symmetrically into the measure's
        bounds ([0, 1] for the F family).  Returns (NaN, NaN) while the
        estimate or its variance is undefined.
        """
        from scipy import stats

        check_in_range(level, 0.0, 1.0, "level", low_open=True, high_open=True)
        measure = self._resolve(alpha, measure)
        g_hat = self.measure_value(measure)
        variance = self.variance_estimate(measure=measure)
        if np.isnan(g_hat) or np.isnan(variance):
            return (float("nan"), float("nan"))
        z = float(stats.norm.ppf(0.5 + level / 2.0))
        half = z * np.sqrt(variance)
        low, high = measure.bounds
        return (max(low, g_hat - half), min(high, g_hat + half))

    def weight_ess(self) -> float:
        """Kish effective sample size of the importance weights.

        ``(sum w)^2 / sum w^2`` — equals the observation count when the
        instrumental distribution matches the target exactly and decays
        toward 1 as the weights degenerate, making it a direct
        convergence signal for the sampling policy (the observability
        layer exports it per session).  Requires
        ``track_observations=True``; 0.0 before any observation.
        """
        if not self.track_observations:
            raise RuntimeError("weight_ess requires track_observations=True")
        if not self._observations:
            return 0.0
        weights = np.asarray(
            [observation[0] for observation in self._observations],
            dtype=float)
        square_sum = float(np.sum(weights**2))
        if square_sum <= 0.0:
            return 0.0
        total = float(np.sum(weights))
        return total * total / square_sum

    def state(self) -> dict:
        """Snapshot of the running sums (for checkpoint/diagnostics)."""
        return {
            "weighted_tp": self._weighted_tp,
            "weighted_pred": self._weighted_pred,
            "weighted_true": self._weighted_true,
            "weighted_count": self._weighted_count,
            "n_observations": self.n_observations,
        }

    def state_dict(self) -> dict:
        """Versioned snapshot capturing the estimator exactly.

        Together with :meth:`load_state_dict` this is the
        snapshot-restore contract of the serving layer: restoring the
        returned dict into a fresh estimator reproduces every future
        estimate bit for bit, including the delta-method confidence
        intervals (the tracked observations ride along).

        Format version 2 records the measure spec and the total-weight
        moment; version 1 (alpha-only) snapshots are still loadable —
        see :meth:`load_state_dict`.
        """
        state = dict(self.state())
        state["format_version"] = 2
        state["measure"] = self.measure.spec()
        state["track_observations"] = self.track_observations
        state["observations"] = (
            np.asarray(self._observations, dtype=float).reshape(-1, 3)
            if self.track_observations
            else np.zeros((0, 3))
        )
        return state

    def _check_measure(self, captured) -> None:
        if captured != self.measure:
            raise ValueError(
                f"state was captured for measure {captured.name}, but this "
                f"estimator targets {self.measure.name}"
            )

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot in place.

        Version-1 (alpha-only) snapshots migrate transparently: the
        measure is reconstructed as ``FMeasure(alpha)`` and the missing
        total-weight moment is rebuilt from the tracked observations
        when present (by the same sequential accumulation the live
        estimator performed, so the restore stays bit-identical) or
        marked NaN otherwise — in which case measures that need the
        total moment (accuracy, specificity, ...) read NaN until reset,
        while the F family is unaffected.
        """
        version = state.get("format_version")
        if version == 1:
            captured = FMeasure(float(state["alpha"]))
        elif version == 2:
            captured = measure_from_spec(state["measure"])
        else:
            raise ValueError(f"unsupported estimator state version {version!r}")
        self._check_measure(captured)
        self._weighted_tp = float(state["weighted_tp"])
        self._weighted_pred = float(state["weighted_pred"])
        self._weighted_true = float(state["weighted_true"])
        self.n_observations = int(state["n_observations"])
        self.track_observations = bool(state["track_observations"])
        observations = np.asarray(state["observations"], dtype=float).reshape(-1, 3)
        self._observations = [tuple(row) for row in observations.tolist()]
        if version >= 2:
            self._weighted_count = float(state["weighted_count"])
        elif self.track_observations and len(self._observations) == self.n_observations:
            total = 0.0
            for row in self._observations:
                total += row[0]
            self._weighted_count = total
        elif self.n_observations == 0:
            self._weighted_count = 0.0
        else:
            self._weighted_count = float("nan")

    def reset(self) -> None:
        self._weighted_tp = 0.0
        self._weighted_pred = 0.0
        self._weighted_true = 0.0
        self._weighted_count = 0.0
        self.n_observations = 0
        self._observations.clear()


def sample_measure_history(labels, predictions, weights=None, *,
                           measure=None, alpha=None):
    """Vectorised trajectory of the AIS estimate after each observation.

    Equivalent to feeding the sequence through :class:`AISEstimator`
    configured with the same measure and recording the estimate at
    every step — used to post-process recorded sampling runs without
    re-simulation.

    Returns an array of length T with NaN where the estimate is
    undefined.
    """
    measure = resolve_measure(measure, alpha)
    labels = np.asarray(labels, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    if weights is None:
        weights = np.ones_like(labels)
    else:
        weights = np.asarray(weights, dtype=float)
    if not (len(labels) == len(predictions) == len(weights)):
        raise ValueError("labels, predictions and weights must share length")

    tp = np.cumsum(weights * labels * predictions)
    pred = np.cumsum(weights * predictions)
    true = np.cumsum(weights * labels)
    count = np.cumsum(weights)
    return np.asarray(
        measure.value_from_moments(tp, pred, true, count), dtype=float
    )


def sample_f_measure_history(labels, predictions, weights=None,
                             alpha: float = 0.5):
    """F-measure shim over :func:`sample_measure_history`."""
    check_in_range(alpha, 0.0, 1.0, "alpha")
    return sample_measure_history(
        labels, predictions, weights, measure=FMeasure(alpha)
    )
