"""Instrumental distributions (paper Eqns 5, 6 and 12).

The asymptotically optimal instrumental distribution concentrates
sampling effort where items contribute most to the variance of the
F-measure estimator.  It depends on the unknown F-measure and oracle
probabilities, so OASIS plugs in running estimates; mixing with the
underlying distribution (epsilon-greedy, Eqn 6) keeps every item
reachable, which is what the consistency proof requires (Remark 5).
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_in_range, normalise

__all__ = [
    "optimal_instrumental_pointwise",
    "stratified_optimal_instrumental",
    "epsilon_greedy",
]


def optimal_instrumental_pointwise(
    underlying,
    predictions,
    oracle_probabilities,
    f_measure: float,
    alpha: float = 0.5,
) -> np.ndarray:
    """Per-item asymptotically optimal instrumental distribution (Eqn 5).

    Parameters
    ----------
    underlying:
        The target distribution p(z) over pool items (usually uniform).
    predictions:
        Predicted labels per item (l-hat).
    oracle_probabilities:
        True or estimated oracle probabilities p(1|z) per item.
    f_measure:
        The (estimated) F-measure the distribution is optimal for.
    alpha:
        F-measure weight.

    Returns
    -------
    Probability vector over pool items.
    """
    check_in_range(alpha, 0.0, 1.0, "alpha")
    p = np.asarray(underlying, dtype=float)
    pred = np.asarray(predictions, dtype=float)
    prob = np.clip(np.asarray(oracle_probabilities, dtype=float), 0.0, 1.0)
    if np.isnan(f_measure):
        # No information about F yet: fall back to the underlying
        # distribution, the only choice that is always valid.
        return normalise(p)
    f = float(np.clip(f_measure, 0.0, 1.0))

    negative_term = (1.0 - alpha) * (1.0 - pred) * f * np.sqrt(prob)
    positive_term = pred * np.sqrt(
        (alpha * f) ** 2 * (1.0 - prob) + (1.0 - f) ** 2 * prob
    )
    weights = p * (negative_term + positive_term)
    return normalise(weights)


def stratified_optimal_instrumental(
    stratum_weights,
    mean_predictions,
    pi,
    f_measure: float,
    alpha: float = 0.5,
) -> np.ndarray:
    """Stratified optimal instrumental distribution v* (section 4.2.3).

    The per-item Eqn (5) with the pool quantities replaced by their
    stratified counterparts: omega_k for p(z), lambda_k for l-hat and
    pi_k for p(1|z).

    Parameters
    ----------
    stratum_weights:
        omega_k = |P_k| / N.
    mean_predictions:
        lambda_k: mean predicted label within each stratum.
    pi:
        Estimated (or true) per-stratum match probabilities.
    f_measure:
        Current F-measure estimate F-hat.
    alpha:
        F-measure weight.

    Returns
    -------
    Probability vector over strata.
    """
    check_in_range(alpha, 0.0, 1.0, "alpha")
    omega = np.asarray(stratum_weights, dtype=float)
    lam = np.clip(np.asarray(mean_predictions, dtype=float), 0.0, 1.0)
    pi = np.clip(np.asarray(pi, dtype=float), 0.0, 1.0)
    if np.isnan(f_measure):
        return normalise(omega)
    f = float(np.clip(f_measure, 0.0, 1.0))

    negative_term = (1.0 - alpha) * (1.0 - lam) * f * np.sqrt(pi)
    positive_term = lam * np.sqrt(
        (alpha * f) ** 2 * (1.0 - pi) + (1.0 - f) ** 2 * pi
    )
    weights = omega * (negative_term + positive_term)
    return normalise(weights)


def epsilon_greedy(optimal, underlying, epsilon: float) -> np.ndarray:
    """Mix the optimal distribution with the underlying one (Eqn 6/12).

    ``q = epsilon * p + (1 - epsilon) * q*`` with ``0 < epsilon <= 1``;
    guarantees q(z) >= epsilon * p(z) > 0 wherever p(z) > 0, the
    condition Theorem 1 needs (Remark 5).
    """
    check_in_range(epsilon, 0.0, 1.0, "epsilon", low_open=True)
    optimal = np.asarray(optimal, dtype=float)
    underlying = np.asarray(underlying, dtype=float)
    if optimal.shape != underlying.shape:
        raise ValueError(
            f"shape mismatch: optimal {optimal.shape} vs underlying {underlying.shape}"
        )
    return epsilon * underlying + (1.0 - epsilon) * optimal
