"""Instrumental distributions (paper Eqns 5, 6 and 12, generalised).

The asymptotically optimal instrumental distribution concentrates
sampling effort where items contribute most to the variance of the
ratio-measure estimator.  For a measure with (mass-space) gradient
scores ``r = (r_tp, r_fp, r_fn, r_tn)`` at the current estimate, an
item ``z`` with prediction lhat and oracle probability ``p(1|z)``
receives mass proportional to

    p(z) * sqrt( E_{l | z} [ r(l, lhat)^2 ] )

— the first-order influence of labelling ``z``.  For the F-measure
this reduces exactly to the paper's closed form (Eqn 5); the algebra
lives in :meth:`repro.measures.ratio.FMeasure.instrumental_weights` and
the generic gradient-based derivation in
:meth:`repro.measures.ratio.RatioMeasure.instrumental_weights`.

The optimal distribution depends on the unknown measure value and
oracle probabilities, so OASIS plugs in running estimates; mixing with
the underlying distribution (epsilon-greedy, Eqn 6) keeps every item
reachable, which is what the consistency proof requires (Remark 5).
"""

from __future__ import annotations

import numpy as np

from repro.measures.ratio import resolve_measure
from repro.utils import check_in_range, normalise

__all__ = [
    "optimal_instrumental_pointwise",
    "stratified_optimal_instrumental",
    "epsilon_greedy",
]


def _optimal_weights(base, predictions, probabilities, estimate,
                     measure) -> np.ndarray:
    """Shared core of the pointwise and stratified optimal designs."""
    if np.isnan(estimate):
        # No information about the target yet: fall back to the
        # underlying distribution, the only choice always valid.
        return normalise(base)
    low, high = measure.bounds
    clipped = float(np.clip(estimate, low, high))
    weights = measure.instrumental_weights(
        base, predictions, probabilities, clipped
    )
    return normalise(weights)


def optimal_instrumental_pointwise(
    underlying,
    predictions,
    oracle_probabilities,
    f_measure: float,
    alpha: float | None = None,
    *,
    measure=None,
) -> np.ndarray:
    """Per-item asymptotically optimal instrumental distribution (Eqn 5).

    Parameters
    ----------
    underlying:
        The target distribution p(z) over pool items (usually uniform).
    predictions:
        Predicted labels per item (l-hat).
    oracle_probabilities:
        True or estimated oracle probabilities p(1|z) per item.
    f_measure:
        The (estimated) value of the target measure the distribution is
        optimal for (the parameter keeps its historical name; it is the
        estimate of whatever ``measure`` targets).
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        The target :class:`~repro.measures.ratio.RatioMeasure` (or kind
        name / spec dict); defaults to ``FMeasure(0.5)``.

    Returns
    -------
    Probability vector over pool items.
    """
    measure = resolve_measure(measure, alpha)
    p = np.asarray(underlying, dtype=float)
    pred = np.asarray(predictions, dtype=float)
    prob = np.clip(np.asarray(oracle_probabilities, dtype=float), 0.0, 1.0)
    return _optimal_weights(p, pred, prob, f_measure, measure)


def stratified_optimal_instrumental(
    stratum_weights,
    mean_predictions,
    pi,
    f_measure: float,
    alpha: float | None = None,
    *,
    measure=None,
) -> np.ndarray:
    """Stratified optimal instrumental distribution v* (section 4.2.3).

    The per-item Eqn (5) with the pool quantities replaced by their
    stratified counterparts: omega_k for p(z), lambda_k for l-hat and
    pi_k for p(1|z).

    Parameters
    ----------
    stratum_weights:
        omega_k = |P_k| / N.
    mean_predictions:
        lambda_k: mean predicted label within each stratum.
    pi:
        Estimated (or true) per-stratum match probabilities.
    f_measure:
        Current estimate of the target measure.
    alpha:
        Deprecated F-measure shim: ``alpha=a`` targets ``FMeasure(a)``.
    measure:
        The target measure; defaults to ``FMeasure(0.5)``.

    Returns
    -------
    Probability vector over strata.
    """
    measure = resolve_measure(measure, alpha)
    omega = np.asarray(stratum_weights, dtype=float)
    lam = np.clip(np.asarray(mean_predictions, dtype=float), 0.0, 1.0)
    pi = np.clip(np.asarray(pi, dtype=float), 0.0, 1.0)
    return _optimal_weights(omega, lam, pi, f_measure, measure)


def epsilon_greedy(optimal, underlying, epsilon: float) -> np.ndarray:
    """Mix the optimal distribution with the underlying one (Eqn 6/12).

    ``q = epsilon * p + (1 - epsilon) * q*`` with ``0 < epsilon <= 1``;
    guarantees q(z) >= epsilon * p(z) > 0 wherever p(z) > 0, the
    condition Theorem 1 needs (Remark 5).
    """
    check_in_range(epsilon, 0.0, 1.0, "epsilon", low_open=True)
    optimal = np.asarray(optimal, dtype=float)
    underlying = np.asarray(underlying, dtype=float)
    if optimal.shape != underlying.shape:
        raise ValueError(
            f"shape mismatch: optimal {optimal.shape} vs underlying {underlying.shape}"
        )
    return epsilon * underlying + (1.0 - epsilon) * optimal
