"""Model-convergence diagnostics (paper Figure 4).

Tracks, along a single OASIS run: (a) the absolute error of the
F-measure estimate, (b) the mean absolute error of the stratum
probability estimates pi-hat, (c) the mean absolute error of the
estimated optimal instrumental distribution v*-hat, and (d) the KL
divergence from the true optimum v* to the estimate.  The true optimum
is computed from ground truth (true per-stratum match rates and the
true pool F-measure) — quantities a real evaluation never sees, used
here purely as the yardstick.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instrumental import stratified_optimal_instrumental
from repro.core.oasis import OASISSampler
from repro.measures.divergence import kl_divergence

__all__ = ["ConvergenceDiagnostics", "run_convergence_experiment"]


@dataclass
class ConvergenceDiagnostics:
    """Per-iteration diagnostics of one OASIS run (Figure 4's series).

    All arrays are indexed by iteration; ``budgets`` gives the distinct
    labels consumed at each iteration for plotting on the budget axis.
    """

    budgets: np.ndarray
    f_abs_error: np.ndarray
    pi_abs_error: np.ndarray
    v_abs_error: np.ndarray
    kl_from_optimal: np.ndarray
    true_pi: np.ndarray
    true_v: np.ndarray

    def budget_to_reach_pi(self, tolerance: float) -> float:
        """First label budget where the pi error falls below tolerance."""
        ok = np.where(self.pi_abs_error <= tolerance)[0]
        if len(ok) == 0:
            return float("nan")
        return float(self.budgets[ok[0]])

    def budget_to_reach_kl(self, tolerance: float) -> float:
        """First label budget where the KL divergence falls below tolerance."""
        ok = np.where(self.kl_from_optimal <= tolerance)[0]
        if len(ok) == 0:
            return float("nan")
        return float(self.budgets[ok[0]])


def true_stratum_probabilities(strata, true_labels) -> np.ndarray:
    """Ground-truth pi_k: the match rate within each stratum."""
    return strata.stratum_means(np.asarray(true_labels, dtype=float))


def run_convergence_experiment(
    sampler: OASISSampler,
    true_labels,
    true_f_measure: float,
    *,
    n_iterations: int,
    batch_size: int = 1,
) -> ConvergenceDiagnostics:
    """Run ``sampler`` and compare its model against ground truth.

    ``true_f_measure`` is the ground-truth value of the sampler's
    *target measure* (the parameter keeps its historical name): the
    diagnostics generalise to any ratio measure, with the true optimal
    v* computed from the same measure's gradient.

    The sampler must have been constructed with
    ``record_diagnostics=True`` so pi-hat and v^(t) snapshots exist.
    With ``batch_size > 1`` the run goes through the batched engine;
    snapshots are still recorded per draw (the proposal is simply
    constant within each block), so every series keeps one entry per
    iteration.
    """
    if not sampler.record_diagnostics:
        raise ValueError("sampler must be built with record_diagnostics=True")
    sampler.sample(n_iterations, batch_size=batch_size)

    strata = sampler.strata
    true_pi = true_stratum_probabilities(strata, true_labels)
    mean_predictions = strata.stratum_means(sampler.predictions)
    true_v = stratified_optimal_instrumental(
        strata.weights,
        mean_predictions,
        true_pi,
        true_f_measure,
        measure=sampler.measure,
    )

    history_f = np.asarray(sampler.history, dtype=float)
    pi_history = np.asarray(sampler.pi_history, dtype=float)
    f_abs_error = np.abs(history_f - true_f_measure)

    pi_abs_error = np.abs(pi_history - true_pi).mean(axis=1)

    n_steps = len(pi_history)
    v_abs_error = np.empty(n_steps)
    kl = np.empty(n_steps)
    for t in range(n_steps):
        v_estimate = stratified_optimal_instrumental(
            strata.weights,
            mean_predictions,
            pi_history[t],
            history_f[t] if not np.isnan(history_f[t]) else sampler.initial_estimate,
            measure=sampler.measure,
        )
        v_abs_error[t] = np.abs(v_estimate - true_v).mean()
        kl[t] = kl_divergence(true_v, v_estimate)

    return ConvergenceDiagnostics(
        budgets=np.asarray(sampler.budget_history, dtype=int),
        f_abs_error=f_abs_error,
        pi_abs_error=pi_abs_error,
        v_abs_error=v_abs_error,
        kl_from_optimal=kl,
        true_pi=true_pi,
        true_v=true_v,
    )
