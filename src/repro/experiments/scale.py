"""Scale-ladder runner: memory-bounded end-to-end rung execution.

One rung = generate a :mod:`repro.datasets.scale` pool (chunked on
disk), block it with MinHash-LSH, train and apply the pair classifier
chunk-wise under a memory budget, then evaluate the predicted
resolution's F-measure two ways: exactly (ground truth over the
candidate pool) and with an :class:`~repro.core.oasis.OASISSampler`
consuming a small label budget — the paper's estimator running on top
of the out-of-core pipeline it was built for.

Per-phase wall time, candidate/scoring throughput, peak RSS (when
measurable; see :mod:`repro.utils.memory`) and blocking recall against
ground truth are reported per rung, giving ``BENCH_pipeline.json`` its
scale *trajectory*.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.classifiers.calibration import PlattCalibrator
from repro.classifiers.linear_svm import LinearSVM
from repro.core.oasis import OASISSampler
from repro.datasets.scale import DATASET_SPECS, ScaleSpec, generate_scale_sources
from repro.measures.fmeasure import pool_performance
from repro.oracle.deterministic import DeterministicOracle
from repro.pipeline.blocking import minhash_lsh_pairs, token_blocking_pairs
from repro.pipeline.features import FieldSpec, PairFeatureExtractor
from repro.pipeline.matching import ERPipeline
from repro.utils.memory import PeakRssTracker, rss_supported

__all__ = ["run_scale_rung", "run_scale_ladder", "DEFAULT_MEMORY_BUDGET"]

# Transient-memory target for scoring kernels; deliberately far below
# what the eager pair space of the large rungs would need.
DEFAULT_MEMORY_BUDGET = 128 * 1024 * 1024

_FIELD_SPECS = (
    FieldSpec("name", "short_text"),
    FieldSpec("description", "long_text"),
    FieldSpec("price", "numeric"),
)
_SCORE_CHUNK_PAIRS = 65_536


def _encode(pairs: np.ndarray, n_b: int) -> np.ndarray:
    return pairs[:, 0] * n_b + pairs[:, 1]


def _training_pairs(
    candidates: np.ndarray,
    true_keys: np.ndarray,
    n_b: int,
    rng: np.random.Generator,
    train_size: int,
):
    """A labelled, non-representative training subset (paper 2.1.1).

    Half the budget comes from candidate pairs that are true matches,
    half from candidate non-matches, sampled uniformly from each side.
    """
    keys = _encode(candidates, n_b)
    is_match = np.isin(keys, true_keys)
    match_rows = np.flatnonzero(is_match)
    other_rows = np.flatnonzero(~is_match)
    take_m = min(len(match_rows), train_size // 2)
    take_o = min(len(other_rows), train_size - take_m)
    rows = np.concatenate(
        [
            rng.choice(match_rows, size=take_m, replace=False),
            rng.choice(other_rows, size=take_o, replace=False),
        ]
    )
    rng.shuffle(rows)
    return candidates[rows], is_match[rows].astype(np.int8), is_match


def run_scale_rung(
    spec: ScaleSpec | str,
    *,
    seed: int = 0,
    directory=None,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    bands: int = 32,
    rows: int = 4,
    ngram_size: int | None = 3,
    train_size: int = 1_000,
    label_budget: int = 600,
    oracle_recall_check: bool | None = None,
    rss_interval: float = 0.02,
) -> dict:
    """Run one ladder rung end-to-end and return its metrics dict.

    Phases: stream-generate the pool into chunked stores (under
    ``directory`` or a temporary directory), MinHash-LSH block, fit the
    extractor + linear SVM on a small labelled subset, score every
    candidate chunk-wise under ``memory_budget``, threshold into a
    predicted resolution, then estimate the F-measure with OASIS
    against the ground-truth oracle.

    ``oracle_recall_check`` additionally runs exact token blocking as
    the recall oracle (defaults to on for pools up to the ``small``
    rung's size, where the exact scheme comfortably fits in memory).
    """
    if isinstance(spec, str):
        spec = DATASET_SPECS[spec]
    rng = np.random.default_rng(seed + 7)
    if oracle_recall_check is None:
        oracle_recall_check = spec.n_records <= DATASET_SPECS["small"].n_records

    metrics: dict = {
        "rung": spec.name,
        "n_records": spec.n_records,
        "n_records_a": spec.n_records_a,
        "n_records_b": spec.n_records_b,
        "exact_pair_space": spec.exact_pair_space,
        "exact_pair_bytes": spec.exact_pair_space * 2 * 8,
        "memory_budget": int(memory_budget),
        "bands": bands,
        "rows": rows,
        "ngram_size": ngram_size,
        "rss_supported": rss_supported(),
    }

    with tempfile.TemporaryDirectory() as tmp:
        workdir = directory if directory is not None else tmp
        tracker = PeakRssTracker(interval=rss_interval)
        with tracker:
            t0 = time.perf_counter()
            sources = generate_scale_sources(spec, seed=seed, directory=workdir)
            t1 = time.perf_counter()

            candidates = minhash_lsh_pairs(
                sources.store_a,
                sources.store_b,
                "name",
                bands=bands,
                rows=rows,
                seed=seed,
                ngram_size=ngram_size,
            )
            t2 = time.perf_counter()

            n_b = len(sources.store_b)
            true_pairs = sources.true_match_pairs()
            true_keys = _encode(true_pairs, n_b)
            candidate_keys = _encode(candidates, n_b)
            lsh_hits = int(np.isin(true_keys, candidate_keys).sum())
            metrics["n_true_matches"] = len(true_pairs)
            metrics["n_candidates"] = len(candidates)
            metrics["lsh_recall_truth"] = (
                lsh_hits / len(true_pairs) if len(true_pairs) else 1.0
            )

            train_pairs, train_labels, is_match = _training_pairs(
                candidates, true_keys, n_b, rng, train_size
            )
            extractor = PairFeatureExtractor(
                list(_FIELD_SPECS), memory_budget=memory_budget
            )
            classifier = PlattCalibrator(LinearSVM(random_state=seed))
            pipeline = ERPipeline(
                extractor,
                classifier,
                threshold=0.5,
                use_probabilities=True,
                memory_budget=memory_budget,
            )
            pipeline.fit(
                sources.store_a, sources.store_b, train_pairs, train_labels
            )
            t3 = time.perf_counter()

            # Chunk-wise scoring of the whole candidate pool: only the
            # compact score/prediction vectors accumulate.
            score_blocks: list[np.ndarray] = []
            pair_blocks = (
                candidates[start : start + _SCORE_CHUNK_PAIRS]
                for start in range(0, len(candidates), _SCORE_CHUNK_PAIRS)
            )
            for block in pipeline.score_pairs_iter(pair_blocks):
                score_blocks.append(block)
            scores = (
                np.concatenate(score_blocks)
                if score_blocks
                else np.empty(0, dtype=float)
            )
            predictions = (scores >= pipeline.threshold).astype(np.int8)
            t4 = time.perf_counter()

            true_labels = is_match.astype(np.int8)
            performance = dict(pool_performance(true_labels, predictions))
            counts = performance.pop("counts")
            performance["counts"] = {
                k: float(getattr(counts, k)) for k in ("tp", "fp", "fn", "tn")
            }
            metrics["pool_performance"] = performance
            oracle = DeterministicOracle(true_labels)
            sampler = OASISSampler(
                predictions,
                scores,
                oracle,
                threshold=pipeline.threshold,
                scores_are_probabilities=True,
                random_state=seed,
            )
            budget = min(label_budget, len(true_labels))
            sampler.sample_until_budget(budget, batch_size=50)
            metrics["oasis"] = {
                "estimate": float(sampler.estimate),
                "true_f_measure": metrics["pool_performance"]["f_measure"],
                "labels_consumed": int(sampler.labels_consumed),
                "pool_size": int(len(true_labels)),
            }
            t5 = time.perf_counter()

            if oracle_recall_check:
                exact = token_blocking_pairs(
                    sources.store_a, sources.store_b, "name"
                )
                exact_keys = _encode(exact, n_b)
                true_in_exact = np.isin(true_keys, exact_keys)
                denom = int(true_in_exact.sum())
                hits = int(
                    np.isin(true_keys[true_in_exact], candidate_keys).sum()
                )
                metrics["oracle"] = {
                    "n_exact_candidates": int(len(exact)),
                    "lsh_recall_vs_exact": hits / denom if denom else 1.0,
                }

        metrics["peak_rss_bytes"] = tracker.peak_bytes
        metrics["timings"] = {
            "generate_s": t1 - t0,
            "block_s": t2 - t1,
            "fit_s": t3 - t2,
            "score_s": t4 - t3,
            "evaluate_s": t5 - t4,
            "total_s": t5 - t0,
        }
        metrics["throughput"] = {
            "records_per_s_generate": spec.n_records / max(t1 - t0, 1e-9),
            "pairs_per_s_score": len(candidates) / max(t4 - t3, 1e-9),
        }
    return metrics


def run_scale_ladder(
    rungs=("small", "medium", "large"),
    *,
    seed: int = 0,
    memory_budget: int = DEFAULT_MEMORY_BUDGET,
    **rung_kwargs,
) -> list[dict]:
    """Run several rungs in sequence; returns one metrics dict each."""
    return [
        run_scale_rung(
            rung, seed=seed, memory_budget=memory_budget, **rung_kwargs
        )
        for rung in rungs
    ]
