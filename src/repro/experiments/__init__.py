"""Experiment harness: repeated trials, aggregation and diagnostics.

Drives the comparisons of paper section 6: run each sampler many times
on a fixed pool, align the estimate trajectories on the distinct-label
budget axis, and aggregate into the expected-absolute-error and
standard-deviation curves of Figures 2-3, the convergence diagnostics
of Figure 4, and the per-classifier errors of Figure 5.

Repeats fan out over a process pool (``run_trials(..., n_workers=N)``)
with bit-identical results for any worker count, stream per-repeat
checkpoints to disk (:class:`~repro.experiments.persistence.TrialStore`)
for interrupt/resume, and scale to declarative scenario grids —
dataset x oracle x batch size x sampler configuration — via
:func:`~repro.experiments.sweep.run_sweep`.
"""

from repro.experiments.aggregate import (
    TrajectoryStats,
    aggregate_all,
    aggregate_trajectories,
)
from repro.experiments.convergence import ConvergenceDiagnostics, run_convergence_experiment
from repro.experiments.persistence import (
    TrialStore,
    load_results,
    save_results,
    stats_from_dict,
    stats_to_dict,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import SamplerSpec, TrialResult, run_trials
from repro.experiments.scale import (
    DEFAULT_MEMORY_BUDGET,
    run_scale_ladder,
    run_scale_rung,
)
from repro.experiments.specs import (
    OracleFactory,
    SamplerFactory,
    make_oracle_factory,
    make_sampler_spec,
)
from repro.experiments.sweep import SweepConfig, SweepJob, expand_grid, run_sweep

__all__ = [
    "TrajectoryStats",
    "aggregate_all",
    "aggregate_trajectories",
    "ConvergenceDiagnostics",
    "run_convergence_experiment",
    "TrialStore",
    "load_results",
    "save_results",
    "stats_from_dict",
    "stats_to_dict",
    "format_series",
    "format_table",
    "SamplerSpec",
    "TrialResult",
    "run_trials",
    "DEFAULT_MEMORY_BUDGET",
    "run_scale_ladder",
    "run_scale_rung",
    "OracleFactory",
    "SamplerFactory",
    "make_oracle_factory",
    "make_sampler_spec",
    "SweepConfig",
    "SweepJob",
    "expand_grid",
    "run_sweep",
]
