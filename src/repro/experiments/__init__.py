"""Experiment harness: repeated trials, aggregation and diagnostics.

Drives the comparisons of paper section 6: run each sampler many times
on a fixed pool, align the estimate trajectories on the distinct-label
budget axis, and aggregate into the expected-absolute-error and
standard-deviation curves of Figures 2-3, the convergence diagnostics
of Figure 4, and the per-classifier errors of Figure 5.
"""

from repro.experiments.aggregate import TrajectoryStats, aggregate_trajectories
from repro.experiments.convergence import ConvergenceDiagnostics, run_convergence_experiment
from repro.experiments.persistence import (
    load_results,
    save_results,
    stats_from_dict,
    stats_to_dict,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import SamplerSpec, run_trials

__all__ = [
    "TrajectoryStats",
    "aggregate_trajectories",
    "ConvergenceDiagnostics",
    "run_convergence_experiment",
    "load_results",
    "save_results",
    "stats_from_dict",
    "stats_to_dict",
    "format_series",
    "format_table",
    "SamplerSpec",
    "run_trials",
]
