"""Saving, loading and checkpointing experiment results.

Long sweeps (Figure 2 takes minutes per dataset) should be run once and
analysed many times.  These helpers serialise
:class:`~repro.experiments.runner.TrialResult` collections and
:class:`~repro.experiments.aggregate.TrajectoryStats` to plain JSON —
no pickle, so results are portable and diffable.

:class:`TrialStore` adds streaming checkpoint/resume on top: a run
directory holds one JSON shard per completed (spec, repeat) task plus a
``manifest.json`` recording the run's identity (pool fingerprint,
budget grid, batch size, seed, oracle, spec list).  Shards are written
atomically as repeats finish, so an interrupted run keeps everything
completed so far; re-invoking the same configuration loads the shards
on disk and computes only what is missing.  Deleting a shard file is
enough to force recomputation of exactly that repeat.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np

from repro.experiments.aggregate import TrajectoryStats
from repro.experiments.runner import TrialResult
from repro.utils import atomic_write_text

__all__ = [
    "save_results",
    "load_results",
    "stats_to_dict",
    "stats_from_dict",
    "TrialStore",
]


def _encode_array(array: np.ndarray) -> list:
    """JSON-encode an array, mapping NaN to None."""
    out = []
    for value in np.asarray(array, dtype=float).ravel().tolist():
        out.append(None if np.isnan(value) else value)
    return out


def _decode_array(values, shape=None) -> np.ndarray:
    array = np.array(
        [np.nan if v is None else float(v) for v in values], dtype=float
    )
    if shape is not None:
        array = array.reshape(shape)
    return array


def save_results(results: dict, path) -> None:
    """Serialise a ``{name: TrialResult}`` mapping to a JSON file."""
    payload = {}
    for name, result in results.items():
        payload[name] = {
            "name": result.name,
            "budgets": [int(b) for b in result.budgets],
            "estimates": _encode_array(result.estimates),
            "estimates_shape": list(result.estimates.shape),
            "true_value": float(result.true_value),
        }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))


def load_results(path) -> dict:
    """Load a ``{name: TrialResult}`` mapping saved by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    results = {}
    for name, entry in payload.items():
        results[name] = TrialResult(
            name=entry["name"],
            budgets=np.asarray(entry["budgets"], dtype=int),
            estimates=_decode_array(
                entry["estimates"], shape=tuple(entry["estimates_shape"])
            ),
            true_value=entry["true_value"],
        )
    return results


def _slug(text: str) -> str:
    """Filesystem-safe shard-name fragment."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-") or "x"


class TrialStore:
    """Streaming checkpoint directory for one ``run_trials`` call.

    Layout::

        <directory>/
            manifest.json            # run identity (config dict)
            shards/
                s00-OASIS-30__r0007.json   # one completed repeat

    A shard is self-describing JSON: the spec name, repeat index,
    budget grid and the NaN-encoded estimate row.  The set of completed
    tasks is exactly the set of shard files on disk — deleting a file
    (or losing it to an interrupt; writes are atomic) marks that repeat
    as pending again.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory):
        self.directory = Path(directory)
        self.shard_dir = self.directory / "shards"
        self.shard_dir.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.directory / self.MANIFEST

    def read_manifest(self) -> dict | None:
        """The stored run configuration, or None before the first run."""
        if not self.manifest_path.is_file():
            return None
        return json.loads(self.manifest_path.read_text())

    def ensure_config(self, config: dict, *, overwrite: bool = False) -> None:
        """Record ``config`` as this run's identity, or validate a match.

        A resumed run must be the *same* run: same pool content, budget
        grid, batch size, seed and spec list.  Any mismatch raises
        instead of silently mixing incompatible shards.  With
        ``overwrite`` the stored manifest is replaced and every
        existing shard is deleted — a new configuration invalidates the
        old run wholesale, so no stale shard can leak into a later
        resume.
        """
        existing = self.read_manifest()
        if existing is not None and not overwrite:
            mismatched = [
                key
                for key in sorted(set(existing) | set(config))
                if existing.get(key) != config.get(key)
            ]
            if mismatched:
                raise ValueError(
                    f"checkpoint at {self.directory} was created by a "
                    f"different run configuration (mismatched keys: "
                    f"{', '.join(mismatched)}); point the run at a fresh "
                    "directory or delete the old one"
                )
            return
        if existing is not None and existing != config:
            for shard in self.shard_dir.glob("*.json"):
                shard.unlink()
        atomic_write_text(
            self.manifest_path, json.dumps(config, indent=1, sort_keys=True)
        )

    def shard_path(self, spec_index: int, spec_name: str, repeat: int) -> Path:
        return self.shard_dir / (
            f"s{spec_index:02d}-{_slug(spec_name)}__r{repeat:04d}.json"
        )

    def completed(self) -> list[str]:
        """Names of the shard files currently on disk (sorted)."""
        return sorted(p.name for p in self.shard_dir.glob("*.json"))

    def load_shard(self, spec_index: int, spec_name: str, repeat: int,
                   budgets=None) -> np.ndarray | None:
        """The stored estimate row, or None if the shard is missing.

        With ``budgets`` given, a shard recorded on a different budget
        grid is treated as absent (defence in depth on top of the
        manifest check — its estimate row would silently mean the wrong
        columns).
        """
        path = self.shard_path(spec_index, spec_name, repeat)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            # A torn or hand-mangled shard is treated as absent; the
            # repeat simply reruns.
            return None
        if budgets is not None:
            stored = payload.get("budgets")
            if stored is None or list(stored) != [int(b) for b in np.asarray(budgets)]:
                return None
        return _decode_array(payload["estimates"])

    def save_shard(self, spec_index: int, spec_name: str, repeat: int,
                   budgets, estimates_row) -> Path:
        """Atomically persist one completed repeat."""
        path = self.shard_path(spec_index, spec_name, repeat)
        payload = {
            "spec": spec_name,
            "spec_index": int(spec_index),
            "repeat": int(repeat),
            "budgets": [int(b) for b in np.asarray(budgets)],
            "estimates": _encode_array(estimates_row),
        }
        atomic_write_text(path, json.dumps(payload))
        return path


def stats_to_dict(stats: TrajectoryStats) -> dict:
    """JSON-ready dict of one aggregated error curve."""
    return {
        "name": stats.name,
        "budgets": [int(b) for b in stats.budgets],
        "abs_error": _encode_array(stats.abs_error),
        "std_dev": _encode_array(stats.std_dev),
        "bias": _encode_array(stats.bias),
        "defined_fraction": _encode_array(stats.defined_fraction),
    }


def stats_from_dict(payload: dict) -> TrajectoryStats:
    """Inverse of :func:`stats_to_dict`."""
    return TrajectoryStats(
        name=payload["name"],
        budgets=np.asarray(payload["budgets"], dtype=int),
        abs_error=_decode_array(payload["abs_error"]),
        std_dev=_decode_array(payload["std_dev"]),
        bias=_decode_array(payload["bias"]),
        defined_fraction=_decode_array(payload["defined_fraction"]),
    )
