"""Saving and loading experiment results.

Long sweeps (Figure 2 takes minutes per dataset) should be run once and
analysed many times.  These helpers serialise
:class:`~repro.experiments.runner.TrialResult` collections and
:class:`~repro.experiments.aggregate.TrajectoryStats` to plain JSON —
no pickle, so results are portable and diffable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.experiments.aggregate import TrajectoryStats
from repro.experiments.runner import TrialResult

__all__ = ["save_results", "load_results", "stats_to_dict", "stats_from_dict"]


def _encode_array(array: np.ndarray) -> list:
    """JSON-encode an array, mapping NaN to None."""
    out = []
    for value in np.asarray(array, dtype=float).ravel().tolist():
        out.append(None if np.isnan(value) else value)
    return out


def _decode_array(values, shape=None) -> np.ndarray:
    array = np.array(
        [np.nan if v is None else float(v) for v in values], dtype=float
    )
    if shape is not None:
        array = array.reshape(shape)
    return array


def save_results(results: dict, path) -> None:
    """Serialise a ``{name: TrialResult}`` mapping to a JSON file."""
    payload = {}
    for name, result in results.items():
        payload[name] = {
            "name": result.name,
            "budgets": [int(b) for b in result.budgets],
            "estimates": _encode_array(result.estimates),
            "estimates_shape": list(result.estimates.shape),
            "true_value": float(result.true_value),
        }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1))


def load_results(path) -> dict:
    """Load a ``{name: TrialResult}`` mapping saved by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    results = {}
    for name, entry in payload.items():
        results[name] = TrialResult(
            name=entry["name"],
            budgets=np.asarray(entry["budgets"], dtype=int),
            estimates=_decode_array(
                entry["estimates"], shape=tuple(entry["estimates_shape"])
            ),
            true_value=entry["true_value"],
        )
    return results


def stats_to_dict(stats: TrajectoryStats) -> dict:
    """JSON-ready dict of one aggregated error curve."""
    return {
        "name": stats.name,
        "budgets": [int(b) for b in stats.budgets],
        "abs_error": _encode_array(stats.abs_error),
        "std_dev": _encode_array(stats.std_dev),
        "bias": _encode_array(stats.bias),
        "defined_fraction": _encode_array(stats.defined_fraction),
    }


def stats_from_dict(payload: dict) -> TrajectoryStats:
    """Inverse of :func:`stats_to_dict`."""
    return TrajectoryStats(
        name=payload["name"],
        budgets=np.asarray(payload["budgets"], dtype=int),
        abs_error=_decode_array(payload["abs_error"]),
        std_dev=_decode_array(payload["std_dev"]),
        bias=_decode_array(payload["bias"]),
        defined_fraction=_decode_array(payload["defined_fraction"]),
    )
