"""Rendering of experiment results: ASCII tables and convergence reports.

Every benchmark prints the rows/series the corresponding paper table
or figure reports; the ``format_*`` helpers keep that output
consistent and readable in test logs.

The second half of this module is the **convergence report
generator** behind ``python -m repro.experiments report``: it collects
estimate-vs-budget trajectories either from journalled trial stores
(a sweep root or a single checkpoint directory, see
:class:`~repro.experiments.persistence.TrialStore`) or from a live
service (``GET /sessions/{id}/history``), and renders them as a
self-contained HTML page (inline SVG, zero external assets) and a
markdown digest.  Both renderings embed the numeric series verbatim in
a JSON data island, so downstream tooling can recover the exact floats
without scraping markup, and both are **deterministic**: the same
input bytes render the same output bytes — no timestamps, no
environment leakage — which is what makes golden tests possible.
"""

from __future__ import annotations

import html as _html
import json
import math
from pathlib import Path

__all__ = [
    "format_table",
    "format_series",
    "collect_series_from_store",
    "collect_series_from_server",
    "render_report_html",
    "render_report_markdown",
    "write_report",
]


def _cell(value, width: int) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            text = "nan"
        elif abs(value) >= 1000 or (abs(value) < 1e-3 and value != 0):
            text = f"{value:.3e}"
        else:
            text = f"{value:.4f}".rstrip("0").rstrip(".")
    else:
        text = str(value)
    return text.rjust(width)


def format_table(headers, rows, title: str | None = None) -> str:
    """Render a list-of-rows table with right-aligned columns."""
    columns = list(zip(*([headers] + [list(map(str, _stringify(r))) for r in rows]))) \
        if rows else [(h,) for h in headers]
    widths = [max(len(str(cell)) for cell in column) for column in columns]

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(_cell(v, w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def _stringify(row):
    out = []
    for value in row:
        if isinstance(value, float):
            out.append(f"{value:.4f}")
        else:
            out.append(value)
    return out


def format_series(name: str, xs, ys, *, x_label: str = "budget",
                  y_label: str = "value", max_points: int = 12) -> str:
    """Render an (x, y) series as a compact two-row table.

    Long series are subsampled to ``max_points`` evenly-spaced points —
    enough to read off the curve's shape in a log.
    """
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) > max_points:
        step = max(len(xs) // max_points, 1)
        keep = list(range(0, len(xs), step))
        if keep[-1] != len(xs) - 1:
            keep.append(len(xs) - 1)
        xs = [xs[i] for i in keep]
        ys = [ys[i] for i in keep]

    def fmt(value):
        if isinstance(value, float):
            if math.isnan(value):
                return "nan"
            return f"{value:.4g}"
        return str(value)

    x_cells = [fmt(x) for x in xs]
    y_cells = [fmt(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    label_width = max(len(x_label), len(y_label))
    x_row = "  ".join(c.rjust(w) for c, w in zip(x_cells, widths))
    y_row = "  ".join(c.rjust(w) for c, w in zip(y_cells, widths))
    return (
        f"{name}\n"
        f"{x_label.ljust(label_width)}  {x_row}\n"
        f"{y_label.ljust(label_width)}  {y_row}"
    )


# ---------------------------------------------------------------------------
# convergence reports
# ---------------------------------------------------------------------------

#: Normal quantile for a two-sided 95% interval over repeats.
_Z95 = 1.959963984540054


def _build_series(name: str, source: str, budgets, rows,
                  true_value=None, final=None) -> dict:
    """Assemble one report series from raw per-repeat estimate rows.

    ``rows`` is a list of equal-length estimate trajectories (``None``
    marks an undefined estimate, e.g. precision before any positive
    draw).  The per-budget mean/std/CI are computed in plain Python so
    the emitted floats depend only on the input bytes — the data
    island must round-trip bitwise for golden tests.
    """
    budgets = [int(b) for b in budgets]
    rows = [list(row) for row in rows]
    for row in rows:
        if len(row) != len(budgets):
            raise ValueError(
                f"series {name!r}: row length {len(row)} != "
                f"{len(budgets)} budgets")
    mean, std, count, ci_low, ci_high = [], [], [], [], []
    for column in range(len(budgets)):
        values = [row[column] for row in rows
                  if row[column] is not None
                  and not math.isnan(row[column])]
        count.append(len(values))
        if not values:
            mean.append(None)
            std.append(None)
            ci_low.append(None)
            ci_high.append(None)
            continue
        m = sum(values) / len(values)
        mean.append(m)
        if len(values) > 1:
            variance = sum((v - m) ** 2 for v in values) / (len(values) - 1)
            s = math.sqrt(variance)
            half = _Z95 * s / math.sqrt(len(values))
            std.append(s)
            ci_low.append(m - half)
            ci_high.append(m + half)
        else:
            std.append(None)
            ci_low.append(None)
            ci_high.append(None)
    return {
        "name": name,
        "source": source,
        "budgets": budgets,
        "n_repeats": len(rows),
        "rows": rows,
        "mean": mean,
        "std": std,
        "count": count,
        "ci_low": ci_low,
        "ci_high": ci_high,
        "true_value": (None if true_value is None
                       or (isinstance(true_value, float)
                           and math.isnan(true_value))
                       else float(true_value)),
        "final": dict(final) if final else {},
    }


def _series_from_run_dir(directory, prefix: str) -> list[dict]:
    """Series for one ``run_trials`` checkpoint directory.

    Prefers the aggregated ``results.json`` (carries the true value);
    falls back to reading the raw shards of an interrupted run.
    """
    directory = Path(directory)
    results_path = directory / "results.json"
    series = []
    if results_path.is_file():
        payload = json.loads(results_path.read_text())
        for spec_name in sorted(payload):
            entry = payload[spec_name]
            n_repeats, n_budgets = entry["estimates_shape"]
            flat = entry["estimates"]
            rows = [flat[i * n_budgets:(i + 1) * n_budgets]
                    for i in range(n_repeats)]
            series.append(_build_series(
                f"{prefix}/{spec_name}", "store", entry["budgets"], rows,
                true_value=entry.get("true_value")))
        return series
    shard_dir = directory / "shards"
    if not shard_dir.is_dir():
        return []
    by_spec: dict[str, dict] = {}
    for path in sorted(shard_dir.glob("*.json")):
        try:
            shard = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue  # torn shard: the run would recompute it too
        spec = by_spec.setdefault(
            shard["spec"], {"budgets": shard["budgets"], "rows": {}})
        if shard["budgets"] != spec["budgets"]:
            continue  # stale grid: TrialStore.load_shard skips it too
        spec["rows"][int(shard["repeat"])] = shard["estimates"]
    for spec_name in sorted(by_spec):
        spec = by_spec[spec_name]
        rows = [spec["rows"][r] for r in sorted(spec["rows"])]
        series.append(_build_series(
            f"{prefix}/{spec_name}", "store", spec["budgets"], rows))
    return series


def collect_series_from_store(root) -> list[dict]:
    """Collect convergence series from a journalled trial store.

    ``root`` may be a **sweep root** (holds ``sweep.json`` plus one
    subdirectory per job) or a single **checkpoint directory** (holds
    ``manifest.json``/``shards/`` and optionally ``results.json``).
    """
    root = Path(root)
    if not root.is_dir():
        raise FileNotFoundError(f"no trial store at {root}")
    if (root / "sweep.json").is_file():
        series = []
        for job_dir in sorted(p for p in root.iterdir() if p.is_dir()):
            series.extend(_series_from_run_dir(job_dir, prefix=job_dir.name))
        return series
    return _series_from_run_dir(root, prefix=root.name)


def collect_series_from_server(base_url: str, *, session_ids=None,
                               client=None) -> list[dict]:
    """Collect one series per live session via ``GET .../history``.

    A live session is a single trajectory (one repeat), so the mean
    *is* the trajectory and the CI columns stay empty; the session's
    own estimator telemetry (CI at the current budget, weight-ESS)
    lands in the series' ``final`` block instead.
    """
    from repro.service.client import EvaluationClient

    owns_client = client is None
    if owns_client:
        client = EvaluationClient(base_url)
    try:
        if session_ids is None:
            session_ids = sorted(
                entry["session_id"] for entry in client.list_sessions())
        series = []
        for session_id in session_ids:
            payload = client.history(session_id)
            final = {
                key: payload.get(key)
                for key in ("estimate", "ci", "ci_width", "weight_ess",
                            "sampler", "measure", "labels_consumed")
                if payload.get(key) is not None
            }
            series.append(_build_series(
                str(session_id), "server",
                payload.get("budget_history", []),
                [payload.get("history", [])],
                final=final))
        return series
    finally:
        if owns_client:
            client.close()


def _fmt(value, digits: int = 6) -> str:
    """Human-facing number for tables; the data island keeps the
    exact floats."""
    if value is None:
        return "—"
    if isinstance(value, float) and math.isnan(value):
        return "nan"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _report_payload(series: list[dict], title: str) -> str:
    """The canonical JSON embedded in both renderings.

    ``json.dumps`` prints floats with ``repr`` (shortest round-trip),
    so parsing the island recovers bitwise-identical values.
    """
    return json.dumps({"title": title, "series": series},
                      sort_keys=True, separators=(",", ":"))


def _svg_chart(entry: dict, *, width: int = 640, height: int = 300) -> str:
    """Inline SVG: CI band, mean polyline, true-value rule, axes."""
    pad_left, pad_right, pad_top, pad_bottom = 56, 16, 12, 32
    budgets = entry["budgets"]
    points = [(b, m) for b, m in zip(budgets, entry["mean"])
              if m is not None]
    if not points:
        return ('<svg width="%d" height="%d" role="img">'
                '<text x="16" y="24">no defined estimates</text></svg>'
                % (width, height))
    ys = [m for _, m in points]
    for low, high in zip(entry["ci_low"], entry["ci_high"]):
        if low is not None:
            ys.append(low)
        if high is not None:
            ys.append(high)
    if entry["true_value"] is not None:
        ys.append(entry["true_value"])
    x_min, x_max = min(budgets), max(budgets)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        span = abs(y_min) or 1.0
        y_min, y_max = y_min - 0.05 * span, y_max + 0.05 * span
    else:
        margin = 0.05 * (y_max - y_min)
        y_min, y_max = y_min - margin, y_max + margin

    def sx(value):
        frac = (value - x_min) / (x_max - x_min)
        return pad_left + frac * (width - pad_left - pad_right)

    def sy(value):
        frac = (value - y_min) / (y_max - y_min)
        return height - pad_bottom - frac * (height - pad_top - pad_bottom)

    def coords(pairs):
        return " ".join(f"{sx(x):.2f},{sy(y):.2f}" for x, y in pairs)

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'viewBox="0 0 {width} {height}">'
    ]
    band_upper = [(b, h) for b, h in zip(budgets, entry["ci_high"])
                  if h is not None]
    band_lower = [(b, l) for b, l in zip(budgets, entry["ci_low"])
                  if l is not None]
    if band_upper and len(band_upper) == len(band_lower):
        parts.append(
            f'<polygon points="{coords(band_upper + band_lower[::-1])}" '
            'fill="#9ecae1" fill-opacity="0.45" stroke="none"/>')
    if entry["true_value"] is not None:
        y = sy(entry["true_value"])
        parts.append(
            f'<line x1="{pad_left}" y1="{y:.2f}" '
            f'x2="{width - pad_right}" y2="{y:.2f}" '
            'stroke="#d62728" stroke-dasharray="6 4" stroke-width="1.5"/>')
    parts.append(
        f'<polyline points="{coords(points)}" fill="none" '
        'stroke="#1f77b4" stroke-width="2"/>')
    for x, y in points:
        parts.append(
            f'<circle cx="{sx(x):.2f}" cy="{sy(y):.2f}" r="2.5" '
            'fill="#1f77b4"/>')
    axis_y = height - pad_bottom
    parts.append(
        f'<line x1="{pad_left}" y1="{axis_y}" x2="{width - pad_right}" '
        f'y2="{axis_y}" stroke="#333" stroke-width="1"/>')
    parts.append(
        f'<line x1="{pad_left}" y1="{pad_top}" x2="{pad_left}" '
        f'y2="{axis_y}" stroke="#333" stroke-width="1"/>')
    parts.append(
        f'<text x="{pad_left}" y="{height - 8}" font-size="11" '
        f'text-anchor="middle">{_fmt(x_min)}</text>')
    parts.append(
        f'<text x="{width - pad_right}" y="{height - 8}" font-size="11" '
        f'text-anchor="middle">{_fmt(x_max)}</text>')
    parts.append(
        f'<text x="{pad_left - 6}" y="{axis_y}" font-size="11" '
        f'text-anchor="end">{_fmt(y_min, 4)}</text>')
    parts.append(
        f'<text x="{pad_left - 6}" y="{pad_top + 10}" font-size="11" '
        f'text-anchor="end">{_fmt(y_max, 4)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _final_defined(entry: dict, key: str):
    """Last non-None value of a per-budget column."""
    for value in reversed(entry[key]):
        if value is not None:
            return value
    return None


def render_report_html(series: list[dict],
                       title: str = "Convergence report") -> str:
    """Self-contained HTML: summary table, one SVG chart + numeric
    table per series, and a machine-readable JSON data island under
    ``<script type="application/json" id="report-data">``."""
    esc = _html.escape
    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        "<style>",
        "body{font-family:system-ui,sans-serif;margin:2rem auto;"
        "max-width:60rem;color:#1a1a1a;}",
        "table{border-collapse:collapse;margin:0.75rem 0;}",
        "th,td{border:1px solid #ccc;padding:0.25rem 0.6rem;"
        "text-align:right;font-variant-numeric:tabular-nums;}",
        "th:first-child,td:first-child{text-align:left;}",
        "section{margin-bottom:2.5rem;}",
        "h2{border-bottom:1px solid #ddd;padding-bottom:0.2rem;}",
        ".legend{color:#555;font-size:0.85rem;}",
        "</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        '<p class="legend">Solid line: mean estimate over repeats. '
        "Shaded band: 95% CI of the mean. Dashed rule: true value "
        "(when known).</p>",
        "<table><tr><th>series</th><th>source</th><th>repeats</th>"
        "<th>budgets</th><th>final estimate</th><th>true value</th>"
        "</tr>",
    ]
    for entry in series:
        out.append(
            "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td>"
            "<td>%s</td><td>%s</td></tr>" % (
                esc(entry["name"]), esc(entry["source"]),
                entry["n_repeats"], len(entry["budgets"]),
                _fmt(_final_defined(entry, "mean")),
                _fmt(entry["true_value"])))
    out.append("</table>")
    for entry in series:
        out.append(f'<section><h2>{esc(entry["name"])}</h2>')
        out.append(_svg_chart(entry))
        if entry["final"]:
            bits = ", ".join(
                f"{esc(str(key))}={esc(_fmt(entry['final'][key]))}"
                if not isinstance(entry["final"][key], list)
                else f"{esc(str(key))}=[%s]" % ", ".join(
                    _fmt(v) for v in entry["final"][key])
                for key in sorted(entry["final"]))
            out.append(f'<p class="legend">session telemetry: {bits}</p>')
        out.append(
            "<table><tr><th>budget</th><th>mean</th><th>std</th>"
            "<th>n</th><th>ci low</th><th>ci high</th></tr>")
        for i, budget in enumerate(entry["budgets"]):
            out.append(
                "<tr><td>%d</td><td>%s</td><td>%s</td><td>%d</td>"
                "<td>%s</td><td>%s</td></tr>" % (
                    budget, _fmt(entry["mean"][i]), _fmt(entry["std"][i]),
                    entry["count"][i], _fmt(entry["ci_low"][i]),
                    _fmt(entry["ci_high"][i])))
        out.append("</table></section>")
    island = _report_payload(series, title).replace("</", "<\\/")
    out.append(
        f'<script type="application/json" id="report-data">{island}'
        "</script>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def render_report_markdown(series: list[dict],
                           title: str = "Convergence report") -> str:
    """Markdown digest with the same JSON payload in a fenced block."""
    out = [f"# {title}", ""]
    for entry in series:
        out.append(f"## {entry['name']}")
        out.append("")
        out.append(f"- source: {entry['source']}")
        out.append(f"- repeats: {entry['n_repeats']}")
        if entry["true_value"] is not None:
            out.append(f"- true value: {_fmt(entry['true_value'])}")
        for key in sorted(entry["final"]):
            value = entry["final"][key]
            if isinstance(value, list):
                value = "[%s]" % ", ".join(_fmt(v) for v in value)
            else:
                value = _fmt(value)
            out.append(f"- {key}: {value}")
        out.append("")
        out.append("| budget | mean | std | n | ci low | ci high |")
        out.append("| ---: | ---: | ---: | ---: | ---: | ---: |")
        for i, budget in enumerate(entry["budgets"]):
            out.append("| %d | %s | %s | %d | %s | %s |" % (
                budget, _fmt(entry["mean"][i]), _fmt(entry["std"][i]),
                entry["count"][i], _fmt(entry["ci_low"][i]),
                _fmt(entry["ci_high"][i])))
        out.append("")
    out.append("## Data")
    out.append("")
    out.append("```json")
    out.append(_report_payload(series, title))
    out.append("```")
    out.append("")
    return "\n".join(out)


def write_report(series: list[dict], out_dir, *,
                 formats=("html", "md"),
                 title: str = "Convergence report") -> list[Path]:
    """Render ``series`` into ``out_dir``; returns the written paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    renderers = {"html": ("report.html", render_report_html),
                 "md": ("report.md", render_report_markdown)}
    paths = []
    for kind in formats:
        if kind not in renderers:
            raise ValueError(f"unknown report format {kind!r}; "
                             f"expected one of {sorted(renderers)}")
        filename, renderer = renderers[kind]
        path = out_dir / filename
        path.write_text(renderer(series, title), encoding="utf-8")
        paths.append(path)
    return paths
