"""ASCII rendering of experiment results.

Every benchmark prints the rows/series the corresponding paper table
or figure reports; these helpers keep that output consistent and
readable in test logs.
"""

from __future__ import annotations

import math

__all__ = ["format_table", "format_series"]


def _cell(value, width: int) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            text = "nan"
        elif abs(value) >= 1000 or (abs(value) < 1e-3 and value != 0):
            text = f"{value:.3e}"
        else:
            text = f"{value:.4f}".rstrip("0").rstrip(".")
    else:
        text = str(value)
    return text.rjust(width)


def format_table(headers, rows, title: str | None = None) -> str:
    """Render a list-of-rows table with right-aligned columns."""
    columns = list(zip(*([headers] + [list(map(str, _stringify(r))) for r in rows]))) \
        if rows else [(h,) for h in headers]
    widths = [max(len(str(cell)) for cell in column) for column in columns]

    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(_cell(v, w) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def _stringify(row):
    out = []
    for value in row:
        if isinstance(value, float):
            out.append(f"{value:.4f}")
        else:
            out.append(value)
    return out


def format_series(name: str, xs, ys, *, x_label: str = "budget",
                  y_label: str = "value", max_points: int = 12) -> str:
    """Render an (x, y) series as a compact two-row table.

    Long series are subsampled to ``max_points`` evenly-spaced points —
    enough to read off the curve's shape in a log.
    """
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError(f"series length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) > max_points:
        step = max(len(xs) // max_points, 1)
        keep = list(range(0, len(xs), step))
        if keep[-1] != len(xs) - 1:
            keep.append(len(xs) - 1)
        xs = [xs[i] for i in keep]
        ys = [ys[i] for i in keep]

    def fmt(value):
        if isinstance(value, float):
            if math.isnan(value):
                return "nan"
            return f"{value:.4g}"
        return str(value)

    x_cells = [fmt(x) for x in xs]
    y_cells = [fmt(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    label_width = max(len(x_label), len(y_label))
    x_row = "  ".join(c.rjust(w) for c, w in zip(x_cells, widths))
    y_row = "  ".join(c.rjust(w) for c, w in zip(y_cells, widths))
    return (
        f"{name}\n"
        f"{x_label.ljust(label_width)}  {x_row}\n"
        f"{y_label.ljust(label_width)}  {y_row}"
    )
