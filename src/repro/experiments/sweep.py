"""Declarative scenario sweeps: grid configs expanded into jobs.

The paper evaluates every sampler on one pool/oracle scenario at a
time; query-driven evaluation wants the full grid — dataset x oracle
type x batch size x sampler configuration (``n_strata``, ``epsilon``,
...).  A :class:`SweepConfig` declares that grid as plain data (JSON-
friendly, so the CLI can load it from a file), :func:`expand_grid`
expands it into one :class:`SweepJob` per (dataset, oracle, batch_size)
cell, and :func:`run_sweep` drives every job through
:func:`~repro.experiments.runner.run_trials` — parallel over a worker
pool and resumable from its on-disk run directory.

Seeding is hierarchical: the sweep's root seed spawns one
``SeedSequence`` per job (by fixed grid position), and each job spawns
one per (spec, repeat) task.  Streams therefore depend only on the
config, never on execution order — the whole sweep is bit-identical
for any worker count and across interrupt/resume cycles.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.datasets.benchmark import BENCHMARK_NAMES, load_benchmark
from repro.experiments.persistence import _slug, save_results
from repro.experiments.runner import SamplerSpec, TrialResult, run_trials
from repro.experiments.specs import (
    ORACLE_KINDS,
    SAMPLER_KINDS,
    OracleFactory,
    format_kwargs,
    make_oracle_factory,
    make_sampler_spec,
)
from repro.measures.ratio import measure_from_spec
from repro.utils import check_count, spawn_seed_sequences

__all__ = ["SweepConfig", "SweepJob", "expand_grid", "run_sweep"]


@dataclass
class SweepConfig:
    """A declarative experiment grid.

    Attributes
    ----------
    datasets:
        Benchmark names (see :data:`repro.datasets.BENCHMARK_NAMES`).
    budgets:
        Distinct-label budget grid shared by every job.
    samplers:
        Sampler cells: each a dict with a ``kind`` key (one of
        :data:`~repro.experiments.specs.SAMPLER_KINDS`) plus
        constructor keywords — ``{"kind": "oasis", "n_strata": 30,
        "epsilon": 1e-3}``.  Optional keys ``name`` and
        ``use_calibrated_scores`` pass through to the spec.
    oracles:
        Oracle cells: dicts with ``kind`` (one of
        :data:`~repro.experiments.specs.ORACLE_KINDS`) plus keywords,
        e.g. ``{"kind": "noisy", "flip_prob": 0.05}``.
    batch_sizes:
        Draws per proposal refresh, one job per value.
    measures:
        Target-measure cells, one job per entry: each ``None`` (the
        historical F-measure path), a measure kind name (``"recall"``)
        or a spec dict (``{"kind": "fmeasure", "alpha": 0.25}``).
        Defaults to ``[None]``, which keeps job ids and seed streams of
        pre-measure sweeps unchanged.
    n_repeats:
        Independent repetitions per (job, sampler).
    seed:
        Root seed of the sweep's hierarchical stream tree.
    scale:
        Benchmark scale ("tiny" or "small").
    """

    datasets: list = field(default_factory=lambda: ["abt_buy"])
    budgets: list = field(default_factory=lambda: [50, 100, 200])
    samplers: list = field(default_factory=lambda: [
        {"kind": "oasis", "n_strata": 30},
        {"kind": "passive"},
    ])
    oracles: list = field(default_factory=lambda: [{"kind": "deterministic"}])
    batch_sizes: list = field(default_factory=lambda: [1])
    measures: list = field(default_factory=lambda: [None])
    n_repeats: int = 10
    seed: int = 42
    scale: str = "tiny"

    def __post_init__(self):
        if not self.datasets:
            raise ValueError("datasets must be non-empty")
        unknown = [d for d in self.datasets if d not in BENCHMARK_NAMES]
        if unknown:
            raise ValueError(
                f"unknown datasets {unknown}; choose from {BENCHMARK_NAMES}"
            )
        if self.scale not in ("tiny", "small"):
            raise ValueError(f"scale must be 'tiny' or 'small'; got {self.scale!r}")
        if not self.samplers:
            raise ValueError("samplers must be non-empty")
        for cell in self.samplers:
            kind = cell.get("kind")
            if kind not in SAMPLER_KINDS:
                raise ValueError(
                    f"sampler cell {cell!r} needs a 'kind' in "
                    f"{sorted(SAMPLER_KINDS)}"
                )
        for cell in self.oracles:
            if cell.get("kind") not in ORACLE_KINDS:
                raise ValueError(
                    f"oracle cell {cell!r} needs a 'kind' in "
                    f"{sorted(ORACLE_KINDS)}"
                )
        if not self.batch_sizes or any(int(b) < 1 for b in self.batch_sizes):
            raise ValueError("batch_sizes must be non-empty positive integers")
        if not self.measures:
            raise ValueError("measures must be non-empty (use [None] for "
                             "the default F-measure path)")
        # Canonicalise every measure cell to its spec dict (None stays
        # None) so job ids and the stored sweep.json are stable however
        # the cell was written.
        self.measures = [
            None if cell is None else measure_from_spec(cell).spec()
            for cell in self.measures
        ]
        check_count(self.n_repeats, "n_repeats")

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown sweep config keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**payload)

    @classmethod
    def from_json(cls, path) -> "SweepConfig":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict:
        out = {
            "datasets": list(self.datasets),
            "budgets": [int(b) for b in self.budgets],
            "samplers": [dict(c) for c in self.samplers],
            "oracles": [dict(c) for c in self.oracles],
            "batch_sizes": [int(b) for b in self.batch_sizes],
            "n_repeats": int(self.n_repeats),
            "seed": int(self.seed),
            "scale": self.scale,
        }
        if self.measures != [None]:
            # Omitted on the default path so sweep directories written
            # before the measure axis existed still pass the stored-
            # config equality check on resume.
            out["measures"] = [
                None if cell is None else dict(cell) for cell in self.measures
            ]
        return out


@dataclass
class SweepJob:
    """One grid cell: a dataset/oracle/batch-size/measure scenario.

    ``index`` is the job's fixed position in grid order — the key that
    ties it to its seed stream and its run subdirectory, stable across
    invocations of the same config.  ``measure`` is a canonical spec
    dict, or None for the historical F-measure path (in which case the
    job id carries no measure fragment, keeping pre-measure run
    directories resumable).
    """

    index: int
    dataset: str
    scale: str
    oracle: OracleFactory
    batch_size: int
    measure: dict | None = None

    @property
    def job_id(self) -> str:
        base = f"{self.dataset}__{_slug(self.oracle.name)}__b{self.batch_size}"
        if self.measure is None:
            return base
        return f"{base}__m-{_slug(measure_from_spec(self.measure).name)}"


def expand_grid(config: SweepConfig) -> list[SweepJob]:
    """Expand a config into jobs, in fixed dataset-major grid order.

    The measure axis varies fastest, after batch size; with the default
    ``measures=[None]`` the expansion (indexes, ids and therefore seed
    streams) is identical to the pre-measure grid.
    """
    jobs = []
    for dataset in config.datasets:
        for oracle_cell in config.oracles:
            cell = dict(oracle_cell)
            oracle = make_oracle_factory(cell.pop("kind"), **cell)
            for batch_size in config.batch_sizes:
                for measure in config.measures:
                    jobs.append(SweepJob(
                        index=len(jobs),
                        dataset=dataset,
                        scale=config.scale,
                        oracle=oracle,
                        batch_size=int(batch_size),
                        measure=measure,
                    ))
    return jobs


def build_specs(config: SweepConfig, pool) -> list[SamplerSpec]:
    """Instantiate the config's sampler cells against one pool.

    Score-threshold samplers (importance, OASIS) that run on
    uncalibrated margins default to the pool's own decision threshold
    when the cell does not pin one — the pipeline's actual operating
    point, matching what the paper's experiments feed them.
    """
    specs = []
    for cell in config.samplers:
        cell = dict(cell)
        kind = cell.pop("kind")
        name = cell.pop("name", None)
        use_calibrated = bool(cell.pop("use_calibrated_scores", False))
        if (
            kind in ("importance", "oasis")
            and not use_calibrated
            and "threshold" not in cell
        ):
            cell["threshold"] = float(pool.threshold)
        if name is None:
            shown = {k: v for k, v in cell.items() if k != "threshold"}
            name = format_kwargs(kind, shown)
            if use_calibrated:
                name += "+cal"
        specs.append(make_sampler_spec(
            kind, name=name, use_calibrated_scores=use_calibrated, **cell
        ))
    names = [spec.name for spec in specs]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"sampler cells produce duplicate names {duplicates}; "
            "give the clashing cells explicit distinct 'name' keys"
        )
    return specs


def run_sweep(
    config: SweepConfig,
    *,
    workers: int = 1,
    out_dir=None,
    resume: bool = True,
    progress=None,
) -> dict[str, dict[str, TrialResult]]:
    """Run every job of a sweep; returns ``{job_id: {spec: TrialResult}}``.

    Parameters
    ----------
    config:
        The declarative grid.
    workers:
        Worker-process count handed to each job's
        :func:`~repro.experiments.runner.run_trials`; estimates are
        bit-identical for every value.
    out_dir:
        Optional sweep directory.  Each job checkpoints into its own
        subdirectory (``<out_dir>/<job_id>/``) as repeats complete, and
        the sweep config plus each job's aggregated ``results.json``
        are written alongside; re-invoking the same sweep resumes from
        whatever shards exist.
    resume:
        When False, recompute every shard even if present.
    progress:
        Optional callable ``(job, results) -> None`` invoked as each
        job finishes (the CLI uses it for incremental reporting).
    """
    workers = check_count(workers, "workers")
    jobs = expand_grid(config)
    job_seqs = spawn_seed_sequences(config.seed, len(jobs))

    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        config_path = out_dir / "sweep.json"
        if config_path.is_file():
            # n_repeats may grow (or shrink) between invocations — task
            # streams don't depend on it, so extending a finished sweep
            # in place is supported; every other key must match.
            stored = json.loads(config_path.read_text())
            current = config.to_dict()
            mismatched = [
                key
                for key in sorted(set(stored) | set(current))
                if key != "n_repeats" and stored.get(key) != current.get(key)
            ]
            if mismatched:
                raise ValueError(
                    f"sweep directory {out_dir} holds a different sweep "
                    f"config (mismatched keys: {', '.join(mismatched)}); "
                    "point the sweep at a fresh directory"
                )
        config_path.write_text(
            json.dumps(config.to_dict(), indent=1, sort_keys=True)
        )

    pools: dict[str, object] = {}
    results: dict[str, dict[str, TrialResult]] = {}
    for job in jobs:
        if job.dataset not in pools:
            pools[job.dataset] = load_benchmark(
                job.dataset, scale=config.scale, random_state=config.seed
            )
        pool = pools[job.dataset]
        specs = build_specs(config, pool)
        checkpoint_dir = None if out_dir is None else out_dir / job.job_id
        job_results = run_trials(
            pool,
            specs,
            budgets=config.budgets,
            n_repeats=config.n_repeats,
            batch_size=job.batch_size,
            oracle_factory=job.oracle,
            measure=job.measure,
            random_state=job_seqs[job.index],
            n_workers=workers,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        results[job.job_id] = job_results
        if out_dir is not None:
            save_results(job_results, out_dir / job.job_id / "results.json")
        if progress is not None:
            progress(job, job_results)
    return results
