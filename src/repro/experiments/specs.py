"""Picklable sampler and oracle factories for parallel experiments.

``run_trials`` accepts arbitrary callables as factories, which is
convenient interactively but breaks process-parallel execution: a
lambda closed over local state cannot be pickled into a worker.  This
module provides declarative, picklable equivalents — a factory is a
plain dataclass naming a sampler/oracle *kind* plus keyword arguments,
so it serialises as data and rebuilds the object inside the worker.

The same declarative form doubles as the JSON-friendly vocabulary of
the scenario-sweep layer (:mod:`repro.experiments.sweep`): a sweep
config names sampler and oracle kinds exactly as these factories do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.oasis import OASISSampler
from repro.experiments.runner import SamplerSpec
from repro.measures.ratio import measure_from_spec, resolve_measure
from repro.oracle.deterministic import DeterministicOracle
from repro.oracle.noisy import NoisyOracle
from repro.samplers.importance import ImportanceSampler
from repro.samplers.oss import OSSSampler
from repro.samplers.passive import PassiveSampler
from repro.samplers.stratified import StratifiedSampler

__all__ = [
    "SAMPLER_KINDS",
    "ORACLE_KINDS",
    "SamplerFactory",
    "OracleFactory",
    "format_kwargs",
    "make_sampler_spec",
    "make_oracle_factory",
]


def format_kwargs(kind: str, kwargs: dict) -> str:
    """Canonical display name ``kind(key=value,...)`` for a factory."""
    if not kwargs:
        return kind
    inner = ",".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
    return f"{kind}({inner})"

SAMPLER_KINDS = {
    "passive": PassiveSampler,
    "stratified": StratifiedSampler,
    "importance": ImportanceSampler,
    "oasis": OASISSampler,
    "oss": OSSSampler,
}

ORACLE_KINDS = {
    "deterministic": DeterministicOracle,
    "noisy": NoisyOracle,
}


@dataclass
class SamplerFactory:
    """Picklable ``(predictions, scores, oracle, rng) -> sampler``.

    Parameters
    ----------
    kind:
        One of :data:`SAMPLER_KINDS`.
    kwargs:
        Extra keyword arguments forwarded to the sampler constructor
        (``n_strata``, ``epsilon``, ``threshold``, ...).
    """

    kind: str
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in SAMPLER_KINDS:
            raise ValueError(
                f"unknown sampler kind {self.kind!r}; "
                f"choose from {sorted(SAMPLER_KINDS)}"
            )

    def __call__(self, predictions, scores, oracle, random_state,
                 measure=None):
        cls = SAMPLER_KINDS[self.kind]
        kwargs = dict(self.kwargs)
        if measure is not None:
            # A run-level target measure (the sweep's measure axis)
            # applies to every cell.  A cell pinning its own target is
            # only allowed when it agrees with the run's — otherwise
            # the reported true_value (computed from the run's measure)
            # would silently mismatch what the sampler estimates.
            target = measure_from_spec(measure)
            if "measure" in kwargs or "alpha" in kwargs:
                pinned = resolve_measure(
                    kwargs.get("measure"), kwargs.get("alpha")
                )
                if pinned != target:
                    raise ValueError(
                        f"sampler cell "
                        f"{format_kwargs(self.kind, self.kwargs)} pins "
                        f"target {pinned.name}, but the run targets "
                        f"{target.name}; drop the cell's alpha/measure "
                        "keys or align them with the run's measure axis"
                    )
            else:
                kwargs["measure"] = target
        return cls(
            predictions, scores, oracle,
            random_state=random_state, **kwargs,
        )


@dataclass
class OracleFactory:
    """Picklable ``(true_labels, rng) -> oracle``.

    Parameters
    ----------
    kind:
        One of :data:`ORACLE_KINDS`.
    kwargs:
        Extra keyword arguments for the oracle constructor (e.g.
        ``flip_prob`` for the noisy oracle).
    """

    kind: str
    kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ORACLE_KINDS:
            raise ValueError(
                f"unknown oracle kind {self.kind!r}; "
                f"choose from {sorted(ORACLE_KINDS)}"
            )

    def __call__(self, true_labels, random_state):
        if self.kind == "deterministic":
            return DeterministicOracle(true_labels, **self.kwargs)
        return NoisyOracle(
            true_labels=true_labels, random_state=random_state, **self.kwargs
        )

    @property
    def name(self) -> str:
        """Compact display/shard name, e.g. ``noisy(flip_prob=0.05)``."""
        return format_kwargs(self.kind, self.kwargs)


def make_sampler_spec(
    kind: str,
    *,
    name: str | None = None,
    use_calibrated_scores: bool = False,
    **kwargs,
) -> SamplerSpec:
    """Build a :class:`~repro.experiments.runner.SamplerSpec` that can
    cross process boundaries.

    Parameters
    ----------
    kind:
        One of :data:`SAMPLER_KINDS`.
    name:
        Display name; defaults to the kind plus any keyword arguments.
    use_calibrated_scores:
        Feed the pool's calibrated probabilities instead of margins.
    kwargs:
        Forwarded to the sampler constructor.
    """
    factory = SamplerFactory(kind, dict(kwargs))
    if name is None:
        name = format_kwargs(kind, kwargs)
    return SamplerSpec(
        name=name,
        factory=factory,
        use_calibrated_scores=use_calibrated_scores,
    )


def make_oracle_factory(kind: str, **kwargs) -> OracleFactory:
    """Build a picklable oracle factory for :func:`run_trials`."""
    return OracleFactory(kind, dict(kwargs))
