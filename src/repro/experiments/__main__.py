"""Entry point: ``python -m repro.experiments <command>``.

Subcommands: ``datasets``, ``compare``, ``convergence``,
``calibration`` and ``sweep`` (parallel, resumable scenario grids —
see ``--workers`` / ``--out`` / ``--resume``).
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
