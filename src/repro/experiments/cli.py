"""Command-line experiment runner.

Regenerates the paper's experiments without writing code::

    python -m repro.experiments datasets
    python -m repro.experiments compare --dataset abt_buy --budget 2000
    python -m repro.experiments convergence --dataset abt_buy
    python -m repro.experiments calibration --dataset abt_buy
    python -m repro.experiments sweep --config sweep.json --workers 4 \
        --out runs/sweep --resume
    python -m repro.experiments pipeline --rungs small medium large \
        --out BENCH_pipeline_ladder.json
    python -m repro.experiments serve --port 8765 --root runs/service

Each experiment subcommand prints the corresponding table/series in the
same format as the benchmark suite.  ``compare``, ``calibration`` and
``sweep`` accept ``--workers`` to fan repeated trials out over a
process pool (estimates are bit-identical for any worker count);
``sweep`` additionally checkpoints each completed repeat under
``--out`` and ``--resume`` skips whatever already finished.

``serve`` runs the evaluation service (:mod:`repro.service`): a
JSON-over-HTTP front-end where clients create sessions, fetch pair
batches to label (``propose``) and return labels as they arrive
(``ingest``), with every session journalled under ``--root`` so a
killed server resumes each session exactly where it stopped.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import OASISSampler
from repro.datasets import BENCHMARK_NAMES, dataset_summary, load_benchmark
from repro.datasets.scale import DATASET_SPECS
from repro.experiments.aggregate import aggregate_all
from repro.experiments.convergence import run_convergence_experiment
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import run_trials
from repro.experiments.scale import DEFAULT_MEMORY_BUDGET, run_scale_rung
from repro.experiments.specs import make_sampler_spec
from repro.experiments.sweep import SweepConfig, run_sweep
from repro.measures.ratio import MEASURE_KINDS, FMeasure, measure_from_spec
from repro.oracle import DeterministicOracle
from repro.utils import check_count

__all__ = ["main", "build_parser"]


def _add_measure_flags(parser) -> None:
    """The target-measure flags shared by the experiment subcommands."""
    parser.add_argument(
        "--measure", default=None, choices=sorted(MEASURE_KINDS),
        help="target measure to estimate (default: the paper's "
        "F-measure); the reported true value tracks this choice",
    )
    parser.add_argument(
        "--alpha", type=float, default=None,
        help="F-measure weight in the alpha parametrisation "
        "(only with --measure fmeasure or no --measure; default 0.5)",
    )


def _measure_from_args(args):
    """Resolve (--measure, --alpha) into a measure, or None for legacy F.

    Returns None when neither flag was given, which keeps the exact
    historical default path (F-measure at alpha 0.5).
    """
    if args.measure is None and args.alpha is None:
        return None
    if args.measure in (None, "fmeasure"):
        return FMeasure(0.5 if args.alpha is None else args.alpha)
    if args.alpha is not None:
        raise SystemExit(
            f"--alpha only parametrises the F-measure, not {args.measure}"
        )
    return measure_from_spec(args.measure)


def _true_value(pool, measure) -> tuple:
    """(display name, ground-truth value) of the targeted measure."""
    if measure is None:
        return "F", pool.performance["f_measure"]
    return measure.name, measure.value(pool.true_labels, pool.predictions)


def _positive_int(text: str):
    """argparse type: a positive integer, via the shared validator."""

    def parse(value):
        try:
            return check_count(int(value), text)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None

    return parse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the OASIS paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print Tables 1-2")
    datasets.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    datasets.add_argument("--seed", type=int, default=42)

    compare = sub.add_parser("compare", help="Figure 2 style comparison")
    compare.add_argument("--dataset", default="abt_buy", choices=BENCHMARK_NAMES)
    compare.add_argument("--scale", default="small", choices=["tiny", "small"])
    compare.add_argument("--budget", type=_positive_int("budget"), default=2000)
    compare.add_argument("--repeats", type=_positive_int("repeats"), default=10)
    compare.add_argument("--n-strata", type=_positive_int("n_strata"), default=30)
    compare.add_argument("--seed", type=int, default=42)
    compare.add_argument(
        "--calibrated", action="store_true",
        help="use calibrated probabilities instead of margins",
    )
    compare.add_argument(
        "--batch-size", type=_positive_int("batch_size"), default=1,
        help="draws per proposal refresh (1 = sequential paper protocol)",
    )
    compare.add_argument(
        "--include-oss", action="store_true",
        help="add the OSS (adaptive Neyman) extension baseline",
    )
    compare.add_argument(
        "--workers", type=_positive_int("workers"), default=1,
        help="process-pool width for the repeated trials",
    )
    _add_measure_flags(compare)

    convergence = sub.add_parser("convergence", help="Figure 4 diagnostics")
    convergence.add_argument("--dataset", default="abt_buy", choices=BENCHMARK_NAMES)
    convergence.add_argument("--scale", default="small", choices=["tiny", "small"])
    convergence.add_argument("--iterations", type=_positive_int("iterations"), default=10_000)
    convergence.add_argument("--n-strata", type=_positive_int("n_strata"), default=30)
    convergence.add_argument("--seed", type=int, default=42)
    convergence.add_argument(
        "--batch-size", type=_positive_int("batch_size"), default=1,
        help="draws per proposal refresh during the diagnostic run",
    )
    _add_measure_flags(convergence)

    calibration = sub.add_parser("calibration", help="Figure 3 comparison")
    calibration.add_argument("--dataset", default="abt_buy", choices=BENCHMARK_NAMES)
    calibration.add_argument("--scale", default="small", choices=["tiny", "small"])
    calibration.add_argument("--budget", type=_positive_int("budget"), default=2000)
    calibration.add_argument("--repeats", type=_positive_int("repeats"), default=10)
    calibration.add_argument("--seed", type=int, default=42)
    calibration.add_argument(
        "--workers", type=_positive_int("workers"), default=1,
        help="process-pool width for the repeated trials",
    )

    sweep = sub.add_parser(
        "sweep",
        help="declarative scenario grid: dataset x oracle x batch size",
    )
    sweep.add_argument(
        "--config", default=None,
        help="JSON sweep config (see repro.experiments.sweep.SweepConfig); "
        "overrides the inline grid flags below",
    )
    sweep.add_argument(
        "--datasets", nargs="+", default=["abt_buy"], choices=BENCHMARK_NAMES,
        metavar="DATASET",
    )
    sweep.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    sweep.add_argument("--budgets", nargs="+", type=_positive_int("budgets"), default=[50, 100, 200])
    sweep.add_argument("--batch-sizes", nargs="+", type=_positive_int("batch_sizes"), default=[1])
    sweep.add_argument("--repeats", type=_positive_int("repeats"), default=10)
    sweep.add_argument("--n-strata", type=_positive_int("n_strata"), default=30)
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument(
        "--flip-prob", type=float, default=None,
        help="also sweep a noisy oracle with this symmetric error rate",
    )
    sweep.add_argument(
        "--measures", nargs="+", default=None, choices=sorted(MEASURE_KINDS),
        metavar="MEASURE",
        help="target-measure grid axis, one job per measure "
        "(default: the F-measure path)",
    )
    sweep.add_argument(
        "--workers", type=_positive_int("workers"), default=1,
        help="process-pool width per job (results identical for any value)",
    )
    sweep.add_argument(
        "--out", default=None,
        help="run directory: shards stream here as repeats complete",
    )
    resume = sweep.add_mutually_exclusive_group()
    resume.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help="skip shards already completed in --out (default)",
    )
    resume.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="recompute every shard even if present",
    )

    pipeline = sub.add_parser(
        "pipeline",
        help="out-of-core scale ladder: chunked stores + MinHash-LSH",
    )
    pipeline.add_argument(
        "--rungs", nargs="+", default=["small", "medium", "large"],
        choices=sorted(DATASET_SPECS), metavar="RUNG",
        help="ladder rungs to run in sequence (see repro.datasets.scale)",
    )
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.add_argument(
        "--memory-budget", type=_positive_int("memory_budget"),
        default=DEFAULT_MEMORY_BUDGET,
        help="target bytes of transient scoring memory per chunk "
        f"(default {DEFAULT_MEMORY_BUDGET // (1024 * 1024)} MiB)",
    )
    pipeline.add_argument(
        "--bands", type=_positive_int("bands"), default=32,
        help="MinHash-LSH bands (more bands = higher recall, more pairs)",
    )
    pipeline.add_argument(
        "--rows", type=_positive_int("rows"), default=4,
        help="MinHash rows per band (more rows = stricter buckets)",
    )
    pipeline.add_argument(
        "--label-budget", type=_positive_int("label_budget"), default=600,
        help="oracle labels the OASIS estimator may consume per rung",
    )
    pipeline.add_argument(
        "--directory", default=None,
        help="persist the chunked stores here instead of a temp dir",
    )
    pipeline.add_argument(
        "--out", default=None,
        help="write the ladder metrics to this JSON file",
    )

    serve = sub.add_parser(
        "serve",
        help="run the evaluation service (JSON-over-HTTP sessions)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="listening port (0 picks a free one)",
    )
    serve.add_argument(
        "--root", default=None,
        help="service root directory: one journalled session per "
        "subdirectory; omit for a memory-only (non-durable) service",
    )
    serve.add_argument(
        "--capacity", type=_positive_int("capacity"), default=None,
        help="max resident sessions; LRU idle sessions evict to --root",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None,
        help="evict journalled sessions idle longer than this many "
        "seconds (they restore transparently on next access; "
        "in-process mode only)",
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help="run the sharded multi-process tier with this many shard "
        "worker processes (requires --root); 0 serves in-process",
    )
    serve.add_argument(
        "--flush-interval", type=float, default=0.0,
        help="sharded mode: seconds each shard waits after the first "
        "queued request for a commit group to form (0 = commit "
        "whatever is queued)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="sharded mode: max requests per shard commit window",
    )
    serve.add_argument(
        "--max-queue", type=int, default=128,
        help="sharded mode: per-shard inbox bound; beyond it requests "
        "get 503 + Retry-After",
    )
    serve.add_argument(
        "--codec", choices=("json", "binary"), default="json",
        help="sharded mode: WAL shard serialisation",
    )
    serve.add_argument(
        "--rpc-timeout", type=float, default=None,
        help="sharded mode: seconds the router waits for a shard's "
        "answer before returning 504 (default 120; clients can lower "
        "it per request with the X-Request-Timeout header)",
    )
    serve.add_argument(
        "--log-format", choices=("json", "text"), default="text",
        help="structured-log rendering: one JSON object per line, or "
        "human-readable key=value text",
    )
    serve.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        default="info",
        help="minimum severity emitted to stderr",
    )

    report = sub.add_parser(
        "report",
        help="render a convergence report (HTML + markdown) from "
        "journalled trial stores or a live server",
    )
    source = report.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--store", default=None,
        help="trial-store directory (a sweep root or a single "
        "checkpoint dir with trials.jsonl shards)",
    )
    source.add_argument(
        "--server", default=None,
        help="base URL of a live service (http://host:port); sessions "
        "are read via GET /sessions/{id}/history",
    )
    report.add_argument(
        "--sessions", nargs="*", default=None,
        help="with --server: restrict to these session ids "
        "(default: every listed session)",
    )
    report.add_argument(
        "--out", default="report",
        help="output directory for report.html / report.md",
    )
    report.add_argument(
        "--formats", nargs="+", choices=("html", "md"),
        default=["html", "md"],
        help="which renderings to write",
    )
    report.add_argument(
        "--title", default="Convergence report",
        help="heading used in the rendered report",
    )
    return parser


def _budget_grid(budget: int) -> list[int]:
    grid = [50, 100, 250, 500, 1000, 2000, 4000, 8000, 16000]
    out = [b for b in grid if b < budget]
    out.append(budget)
    return out


def _cmd_datasets(args) -> None:
    rows = []
    for name in BENCHMARK_NAMES:
        pool = load_benchmark(name, scale=args.scale, random_state=args.seed)
        row = dataset_summary(pool)
        rows.append([
            row["dataset"], row["size"], row["imbalance_ratio"],
            row["n_matches"], row["precision"], row["recall"],
            row["f_measure"],
        ])
    print(format_table(
        ["dataset", "size", "imb_ratio", "matches", "P", "R", "F"],
        rows,
        title=f"Tables 1-2 (scale={args.scale})",
    ))


def _print_abs_errors(results) -> None:
    for name, stats in aggregate_all(results).items():
        print(format_series(f"{name} abs_err", stats.budgets, stats.abs_error))


def _cmd_compare(args) -> None:
    pool = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    measure = _measure_from_args(args)
    threshold = pool.threshold
    k = args.n_strata
    calibrated = args.calibrated
    specs = [
        make_sampler_spec(
            "passive", name="Passive", use_calibrated_scores=calibrated),
        make_sampler_spec(
            "stratified", name="Stratified", n_strata=k,
            use_calibrated_scores=calibrated),
        make_sampler_spec(
            "importance", name="IS", threshold=threshold,
            use_calibrated_scores=calibrated),
        make_sampler_spec(
            "oasis", name=f"OASIS {k}", n_strata=k, threshold=threshold,
            use_calibrated_scores=calibrated),
    ]
    if args.include_oss:
        specs.append(make_sampler_spec(
            "oss", name="OSS", n_strata=k, use_calibrated_scores=calibrated))

    name, true_value = _true_value(pool, measure)
    print(f"pool {args.dataset}: {len(pool)} items, "
          f"true {name} = {true_value:.4f}")
    results = run_trials(
        pool, specs, budgets=_budget_grid(args.budget),
        n_repeats=args.repeats, batch_size=args.batch_size,
        measure=measure,
        random_state=args.seed, n_workers=args.workers,
    )
    _print_abs_errors(results)


def _cmd_convergence(args) -> None:
    pool = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    measure = _measure_from_args(args)
    sampler = OASISSampler(
        pool.predictions,
        pool.scores_calibrated,
        DeterministicOracle(pool.true_labels),
        n_strata=args.n_strata,
        measure=measure,
        record_diagnostics=True,
        random_state=args.seed,
    )
    name, true_value = _true_value(pool, measure)
    diag = run_convergence_experiment(
        sampler, pool.true_labels, true_value,
        n_iterations=args.iterations, batch_size=args.batch_size,
    )
    checkpoints = np.linspace(0, args.iterations - 1, 10).astype(int)
    print(f"convergence on {args.dataset} (K={args.n_strata}, "
          f"{args.iterations} iterations, true {name} = {true_value:.4f})")
    print(format_series(f"|G_hat - {name}|", diag.budgets[checkpoints],
                        diag.f_abs_error[checkpoints]))
    print(format_series("mean |pi err|", diag.budgets[checkpoints],
                        diag.pi_abs_error[checkpoints]))
    print(format_series("KL(v*||v_hat)", diag.budgets[checkpoints],
                        diag.kl_from_optimal[checkpoints]))


def _cmd_calibration(args) -> None:
    pool = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    threshold = pool.threshold
    specs = [
        make_sampler_spec("importance", name="IS uncal", threshold=threshold),
        make_sampler_spec(
            "importance", name="IS cal", use_calibrated_scores=True),
        make_sampler_spec(
            "oasis", name="OASIS uncal", n_strata=60, threshold=threshold),
        make_sampler_spec(
            "oasis", name="OASIS cal", n_strata=60, use_calibrated_scores=True),
    ]
    print(f"pool {args.dataset}: true F = {pool.performance['f_measure']:.4f}")
    results = run_trials(
        pool, specs, budgets=_budget_grid(args.budget),
        n_repeats=args.repeats, random_state=args.seed,
        n_workers=args.workers,
    )
    _print_abs_errors(results)


def _cmd_sweep(args) -> None:
    if args.config is not None:
        config = SweepConfig.from_json(args.config)
    else:
        oracles = [{"kind": "deterministic"}]
        if args.flip_prob is not None:
            oracles.append({"kind": "noisy", "flip_prob": args.flip_prob})
        config = SweepConfig(
            datasets=list(args.datasets),
            budgets=list(args.budgets),
            samplers=[
                {"kind": "oasis", "n_strata": args.n_strata},
                {"kind": "passive"},
            ],
            oracles=oracles,
            batch_sizes=list(args.batch_sizes),
            measures=(list(args.measures) if args.measures else [None]),
            n_repeats=args.repeats,
            seed=args.seed,
            scale=args.scale,
        )

    def report(job, results):
        print(f"[{job.index + 1}] {job.job_id}")
        _print_abs_errors(results)

    run_sweep(
        config,
        workers=args.workers,
        out_dir=args.out,
        resume=args.resume,
        progress=report,
    )


def _cmd_pipeline(args) -> None:
    import json

    results = []
    for rung in args.rungs:
        metrics = run_scale_rung(
            rung,
            seed=args.seed,
            directory=args.directory,
            memory_budget=args.memory_budget,
            bands=args.bands,
            rows=args.rows,
            label_budget=args.label_budget,
        )
        results.append(metrics)
        rss = metrics["peak_rss_bytes"]
        rss_mb = f"{rss / 2**20:8.1f}" if rss is not None else "     n/a"
        print(
            f"{metrics['rung']:>8}: {metrics['n_records']:>9,} records  "
            f"{metrics['n_candidates']:>10,} candidates  "
            f"recall {metrics['lsh_recall_truth']:.3f}  "
            f"OASIS {metrics['oasis']['estimate']:.4f} "
            f"(true {metrics['oasis']['true_f_measure']:.4f}, "
            f"{metrics['oasis']['labels_consumed']} labels)  "
            f"peak RSS{rss_mb} MiB  "
            f"{metrics['timings']['total_s']:7.1f}s"
        )
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
        print(f"wrote {args.out}")


def _cmd_serve(args) -> None:
    # Deferred import: the service layer is not needed by the
    # experiment subcommands.
    from repro.service import SessionManager
    from repro.service.http import make_sharded_backend, serve

    if args.shards > 0:
        if args.root is None:
            raise SystemExit("--shards requires --root (journals live there)")
        backend = make_sharded_backend(
            args.root, args.shards, codec=args.codec,
            flush_interval=args.flush_interval, max_batch=args.max_batch,
            max_queue=args.max_queue, capacity=args.capacity,
            rpc_timeout=args.rpc_timeout,
            log_format=args.log_format, log_level=args.log_level,
        )
        serve(backend, host=args.host, port=args.port,
              log_format=args.log_format, log_level=args.log_level)
        return
    manager = SessionManager(args.root, capacity=args.capacity)
    serve(manager, host=args.host, port=args.port,
          idle_timeout=args.idle_timeout,
          log_format=args.log_format, log_level=args.log_level)


def _cmd_report(args) -> None:
    # Deferred import: report generation pulls in the service client
    # only when --server is used.
    from repro.experiments.report import (
        collect_series_from_server,
        collect_series_from_store,
        write_report,
    )

    if args.store is not None:
        series = collect_series_from_store(args.store)
    else:
        series = collect_series_from_server(
            args.server, session_ids=args.sessions)
    if not series:
        raise SystemExit("no convergence series found to report on")
    paths = write_report(series, args.out, formats=tuple(args.formats),
                         title=args.title)
    for path in paths:
        print(f"wrote {path}")


_COMMANDS = {
    "datasets": _cmd_datasets,
    "compare": _cmd_compare,
    "convergence": _cmd_convergence,
    "calibration": _cmd_calibration,
    "sweep": _cmd_sweep,
    "pipeline": _cmd_pipeline,
    "serve": _cmd_serve,
    "report": _cmd_report,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0
