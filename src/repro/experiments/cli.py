"""Command-line experiment runner.

Regenerates the paper's experiments without writing code::

    python -m repro.experiments datasets
    python -m repro.experiments compare --dataset abt_buy --budget 2000
    python -m repro.experiments convergence --dataset abt_buy
    python -m repro.experiments calibration --dataset abt_buy

Each subcommand prints the corresponding table/series in the same
format as the benchmark suite.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import OASISSampler
from repro.datasets import BENCHMARK_NAMES, dataset_summary, load_benchmark
from repro.experiments.aggregate import aggregate_trajectories
from repro.experiments.convergence import run_convergence_experiment
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import SamplerSpec, run_trials
from repro.oracle import DeterministicOracle
from repro.samplers import (
    ImportanceSampler,
    OSSSampler,
    PassiveSampler,
    StratifiedSampler,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the OASIS paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="print Tables 1-2")
    datasets.add_argument("--scale", default="tiny", choices=["tiny", "small"])
    datasets.add_argument("--seed", type=int, default=42)

    compare = sub.add_parser("compare", help="Figure 2 style comparison")
    compare.add_argument("--dataset", default="abt_buy", choices=BENCHMARK_NAMES)
    compare.add_argument("--scale", default="small", choices=["tiny", "small"])
    compare.add_argument("--budget", type=int, default=2000)
    compare.add_argument("--repeats", type=int, default=10)
    compare.add_argument("--n-strata", type=int, default=30)
    compare.add_argument("--seed", type=int, default=42)
    compare.add_argument(
        "--calibrated", action="store_true",
        help="use calibrated probabilities instead of margins",
    )
    compare.add_argument(
        "--batch-size", type=int, default=1,
        help="draws per proposal refresh (1 = sequential paper protocol)",
    )
    compare.add_argument(
        "--include-oss", action="store_true",
        help="add the OSS (adaptive Neyman) extension baseline",
    )

    convergence = sub.add_parser("convergence", help="Figure 4 diagnostics")
    convergence.add_argument("--dataset", default="abt_buy", choices=BENCHMARK_NAMES)
    convergence.add_argument("--scale", default="small", choices=["tiny", "small"])
    convergence.add_argument("--iterations", type=int, default=10_000)
    convergence.add_argument("--n-strata", type=int, default=30)
    convergence.add_argument("--seed", type=int, default=42)

    calibration = sub.add_parser("calibration", help="Figure 3 comparison")
    calibration.add_argument("--dataset", default="abt_buy", choices=BENCHMARK_NAMES)
    calibration.add_argument("--scale", default="small", choices=["tiny", "small"])
    calibration.add_argument("--budget", type=int, default=2000)
    calibration.add_argument("--repeats", type=int, default=10)
    calibration.add_argument("--seed", type=int, default=42)
    return parser


def _budget_grid(budget: int) -> list[int]:
    grid = [50, 100, 250, 500, 1000, 2000, 4000, 8000, 16000]
    out = [b for b in grid if b < budget]
    out.append(budget)
    return out


def _cmd_datasets(args) -> None:
    rows = []
    for name in BENCHMARK_NAMES:
        pool = load_benchmark(name, scale=args.scale, random_state=args.seed)
        row = dataset_summary(pool)
        rows.append([
            row["dataset"], row["size"], row["imbalance_ratio"],
            row["n_matches"], row["precision"], row["recall"],
            row["f_measure"],
        ])
    print(format_table(
        ["dataset", "size", "imb_ratio", "matches", "P", "R", "F"],
        rows,
        title=f"Tables 1-2 (scale={args.scale})",
    ))


def _cmd_compare(args) -> None:
    pool = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    threshold = pool.threshold
    k = args.n_strata
    specs = [
        SamplerSpec("Passive", lambda p, s, o, r: PassiveSampler(
            p, s, o, random_state=r), use_calibrated_scores=args.calibrated),
        SamplerSpec("Stratified", lambda p, s, o, r: StratifiedSampler(
            p, s, o, n_strata=k, random_state=r),
            use_calibrated_scores=args.calibrated),
        SamplerSpec("IS", lambda p, s, o, r: ImportanceSampler(
            p, s, o, threshold=threshold, random_state=r),
            use_calibrated_scores=args.calibrated),
        SamplerSpec(f"OASIS {k}", lambda p, s, o, r: OASISSampler(
            p, s, o, n_strata=k, threshold=threshold, random_state=r),
            use_calibrated_scores=args.calibrated),
    ]
    if args.include_oss:
        specs.append(SamplerSpec("OSS", lambda p, s, o, r: OSSSampler(
            p, s, o, n_strata=k, random_state=r),
            use_calibrated_scores=args.calibrated))

    print(f"pool {args.dataset}: {len(pool)} items, "
          f"true F = {pool.performance['f_measure']:.4f}")
    results = run_trials(
        pool, specs, budgets=_budget_grid(args.budget),
        n_repeats=args.repeats, batch_size=args.batch_size,
        random_state=args.seed,
    )
    for name, result in results.items():
        stats = aggregate_trajectories(result)
        print(format_series(f"{name} abs_err", stats.budgets, stats.abs_error))


def _cmd_convergence(args) -> None:
    pool = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    sampler = OASISSampler(
        pool.predictions,
        pool.scores_calibrated,
        DeterministicOracle(pool.true_labels),
        n_strata=args.n_strata,
        record_diagnostics=True,
        random_state=args.seed,
    )
    diag = run_convergence_experiment(
        sampler, pool.true_labels, pool.performance["f_measure"],
        n_iterations=args.iterations,
    )
    checkpoints = np.linspace(0, args.iterations - 1, 10).astype(int)
    print(f"convergence on {args.dataset} (K={args.n_strata}, "
          f"{args.iterations} iterations)")
    print(format_series("|F_hat - F|", diag.budgets[checkpoints],
                        diag.f_abs_error[checkpoints]))
    print(format_series("mean |pi err|", diag.budgets[checkpoints],
                        diag.pi_abs_error[checkpoints]))
    print(format_series("KL(v*||v_hat)", diag.budgets[checkpoints],
                        diag.kl_from_optimal[checkpoints]))


def _cmd_calibration(args) -> None:
    pool = load_benchmark(args.dataset, scale=args.scale, random_state=args.seed)
    threshold = pool.threshold
    specs = [
        SamplerSpec("IS uncal", lambda p, s, o, r: ImportanceSampler(
            p, s, o, threshold=threshold, random_state=r)),
        SamplerSpec("IS cal", lambda p, s, o, r: ImportanceSampler(
            p, s, o, random_state=r), use_calibrated_scores=True),
        SamplerSpec("OASIS uncal", lambda p, s, o, r: OASISSampler(
            p, s, o, n_strata=60, threshold=threshold, random_state=r)),
        SamplerSpec("OASIS cal", lambda p, s, o, r: OASISSampler(
            p, s, o, n_strata=60, random_state=r), use_calibrated_scores=True),
    ]
    print(f"pool {args.dataset}: true F = {pool.performance['f_measure']:.4f}")
    results = run_trials(
        pool, specs, budgets=_budget_grid(args.budget),
        n_repeats=args.repeats, random_state=args.seed,
    )
    for name, result in results.items():
        stats = aggregate_trajectories(result)
        print(format_series(f"{name} abs_err", stats.budgets, stats.abs_error))


_COMMANDS = {
    "datasets": _cmd_datasets,
    "compare": _cmd_compare,
    "convergence": _cmd_convergence,
    "calibration": _cmd_calibration,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0
