"""Repeated randomised sampler trials on a fixed pool.

The paper's methodology (section 6.3): fix the pool, run each
estimation method many times with independent randomness, and study
the estimate trajectories statistically.  ``run_trials`` executes that
loop, recording each run's F estimate at a grid of label budgets.

Repeats are embarrassingly parallel: the block-adaptive relaxation
keeps every run's weights unbiased on its own, and each (spec, repeat)
task owns an independent ``SeedSequence``-derived random stream, so
``run_trials`` can fan the tasks out over a ``concurrent.futures``
process pool.  Task streams depend only on the root seed and the task's
(spec, repeat) position — never on scheduling — which makes a parallel
run bit-identical to the serial one.

Every task spawns *two* child generators from its seed sequence: one
for the oracle's noise, one for the sampler's draws.  Keeping the
streams separate means a noisy oracle cannot perturb the sampler's draw
sequence (and vice versa), so estimates are comparable across oracle
types and batch sizes at the same seed.

With ``checkpoint_dir`` set, each completed repeat is streamed to an
on-disk shard (see :class:`~repro.experiments.persistence.TrialStore`);
re-invoking the same run skips completed shards and resumes the rest.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.benchmark import BenchmarkPool
from repro.measures.confusion import confusion_counts
from repro.measures.ratio import measure_from_spec
from repro.oracle.deterministic import DeterministicOracle
from repro.utils import check_count

__all__ = ["SamplerSpec", "TrialResult", "run_trials"]


@dataclass
class SamplerSpec:
    """A sampler configuration entered in a comparison.

    Attributes
    ----------
    name:
        Display name ("OASIS 30", "Passive", ...).
    factory:
        Callable ``(predictions, scores, oracle, random_state) ->
        sampler``; partial out any other keyword arguments.  Must be
        picklable (e.g. built via
        :func:`repro.experiments.specs.make_sampler_spec`) when
        ``run_trials`` runs with ``n_workers > 1``.
    use_calibrated_scores:
        Feed the pool's calibrated probabilities instead of margins.
    """

    name: str
    factory: object
    use_calibrated_scores: bool = False


@dataclass
class TrialResult:
    """Estimates of one sampler across repeats, on a budget grid.

    ``estimates`` has shape (n_repeats, n_budgets); NaN marks budgets a
    run never reached or where the estimate was undefined.
    """

    name: str
    budgets: np.ndarray
    estimates: np.ndarray
    true_value: float
    extras: dict = field(default_factory=dict)


def _normalise_budgets(budgets) -> np.ndarray:
    """Sorted, deduplicated, validated budget grid.

    Duplicate entries would silently duplicate grid columns (and skew
    any column-wise aggregation), so they are collapsed; positivity is
    validated after deduplication.
    """
    budgets = np.unique(np.asarray(budgets, dtype=int))
    if budgets.size == 0 or budgets[0] <= 0:
        raise ValueError("budgets must be positive and non-empty")
    return budgets


def _run_one_trial(pool, spec, budgets, batch_size, oracle_factory,
                   seed_seq, measure=None) -> np.ndarray:
    """Execute a single (spec, repeat) task; returns the estimate row.

    Pure function of its arguments — the unit of work shipped to worker
    processes.  ``seed_seq`` is split into one oracle stream and one
    sampler stream so the two never interleave.  With ``measure`` set,
    the factory is invoked with a ``measure=`` keyword (the
    :class:`~repro.experiments.specs.SamplerFactory` contract); without
    it the historical call shape is preserved, so arbitrary callables
    keep working on the default F-measure path.
    """
    oracle_seq, sampler_seq = seed_seq.spawn(2)
    oracle_rng = np.random.default_rng(oracle_seq)
    sampler_rng = np.random.default_rng(sampler_seq)
    if oracle_factory is None:
        oracle = DeterministicOracle(pool.true_labels)
    else:
        oracle = oracle_factory(pool.true_labels, oracle_rng)
    scores = pool.scores_calibrated if spec.use_calibrated_scores else pool.scores
    if measure is None:
        sampler = spec.factory(pool.predictions, scores, oracle, sampler_rng)
    else:
        sampler = spec.factory(pool.predictions, scores, oracle, sampler_rng,
                               measure=measure)
    sampler.sample_until_budget(int(budgets[-1]), batch_size=batch_size)
    return sampler.estimate_at_budgets(budgets)


# Worker-process state installed once per worker by the pool
# initializer, so the (potentially large) pool arrays are pickled once
# per worker instead of once per task.
_WORKER_STATE: dict = {}


def _init_worker(pool, specs, budgets, batch_size, oracle_factory,
                 measure) -> None:
    _WORKER_STATE["context"] = (
        pool, specs, budgets, batch_size, oracle_factory, measure
    )


def _worker_trial(spec_index: int, seed_seq) -> np.ndarray:
    pool, specs, budgets, batch_size, oracle_factory, measure = (
        _WORKER_STATE["context"]
    )
    return _run_one_trial(
        pool, specs[spec_index], budgets, batch_size, oracle_factory,
        seed_seq, measure
    )


def _check_picklable(specs, oracle_factory) -> None:
    """Fail fast, with guidance, before a worker pool chokes mid-run."""
    try:
        pickle.dumps((specs, oracle_factory))
    except Exception as exc:
        raise ValueError(
            "n_workers > 1 requires picklable sampler specs and oracle "
            "factory (lambdas and closures cannot cross process "
            "boundaries); build them with "
            "repro.experiments.specs.make_sampler_spec / "
            "make_oracle_factory"
        ) from exc


def _root_seed_sequence(random_state) -> np.random.SeedSequence:
    if isinstance(random_state, np.random.SeedSequence):
        return random_state
    if isinstance(random_state, np.random.Generator):
        return random_state.bit_generator.seed_seq
    return np.random.SeedSequence(random_state)


def _task_seed(root: np.random.SeedSequence, spec_index: int,
               repeat: int) -> np.random.SeedSequence:
    """The independent seed stream of one (spec, repeat) task.

    Children are addressed by an explicit spawn key — the same
    construction ``SeedSequence.spawn`` uses internally — so a task's
    stream depends only on the root seed and its (spec, repeat)
    coordinates.  In particular it does NOT depend on ``n_repeats``:
    re-running a checkpointed grid with more repeats extends it
    in-place, and the already-completed shards keep exactly the streams
    they were computed with.
    """
    return np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=(*root.spawn_key, spec_index, repeat),
    )


def _seed_descriptor(seed_seq: np.random.SeedSequence) -> dict:
    """JSON-stable identity of a seed sequence for run manifests."""
    entropy = seed_seq.entropy
    if isinstance(entropy, (list, tuple)):
        entropy = [str(e) for e in entropy]
    else:
        entropy = str(entropy)
    return {"entropy": entropy, "spawn_key": [int(k) for k in seed_seq.spawn_key]}


def _oracle_descriptor(oracle_factory) -> str:
    if oracle_factory is None:
        return "deterministic"
    name = getattr(oracle_factory, "name", None)
    if isinstance(name, str):
        return name
    return getattr(type(oracle_factory), "__qualname__", repr(oracle_factory))


def _pool_fingerprint(pool) -> str:
    """Cheap content hash so a checkpoint cannot resume onto a
    different pool that happens to share a name."""
    import hashlib

    digest = hashlib.sha256()
    for array in (pool.predictions, pool.true_labels):
        digest.update(np.ascontiguousarray(array).tobytes())
    digest.update(np.ascontiguousarray(np.asarray(pool.scores, dtype=float)).tobytes())
    return digest.hexdigest()[:16]


def run_trials(
    pool: BenchmarkPool,
    specs: list[SamplerSpec],
    *,
    budgets,
    n_repeats: int = 50,
    batch_size: int = 1,
    oracle_factory=None,
    measure=None,
    random_state=None,
    n_workers: int = 1,
    checkpoint_dir=None,
    resume: bool = True,
) -> dict[str, TrialResult]:
    """Run every sampler spec ``n_repeats`` times on ``pool``.

    Parameters
    ----------
    pool:
        The benchmark pool under evaluation.
    specs:
        Sampler configurations to compare.
    budgets:
        Grid of distinct-label budgets at which estimates are recorded
        (sorted and deduplicated); the run stops at the largest.
    n_repeats:
        Independent repetitions per spec (the paper uses 1000; scale
        to taste — Monte-Carlo error shrinks as 1/sqrt(repeats)).
    batch_size:
        Draws per proposal refresh.  1 reproduces the paper's fully
        sequential protocol; larger blocks run every sampler through
        its batched engine (one oracle round-trip and one vectorised
        update per block), trading per-draw adaptivity for wall-clock
        speed.  Budgets are billed exactly for every batch size.
    oracle_factory:
        Callable ``(true_labels, rng) -> oracle``; defaults to the
        deterministic ground-truth oracle of the paper's experiments.
        The ``rng`` is a child generator reserved for the oracle —
        independent of the sampler's stream.
    measure:
        Target :class:`~repro.measures.ratio.RatioMeasure` (or kind
        name / spec dict) every sampler estimates; ``None`` keeps the
        historical F-measure path.  The reported ``true_value`` is the
        pool's ground-truth value of this measure, and sampler
        factories receive it as a ``measure=`` keyword.
    random_state:
        Seed (int / ``SeedSequence`` / ``Generator``) for the
        independent per-task streams.  Required (non-None) when
        ``checkpoint_dir`` is set, so a resumed run reproduces the
        original streams.
    n_workers:
        Process-pool width.  1 (default) runs in-process; larger values
        fan (spec, repeat) tasks out over ``n_workers`` processes.
        Results are bit-identical for every value of ``n_workers``.
    checkpoint_dir:
        Optional run directory.  Each completed repeat is streamed to a
        shard on disk; re-invoking with the same configuration skips
        completed shards (see
        :class:`~repro.experiments.persistence.TrialStore`).
    resume:
        With ``checkpoint_dir``: when True (default), completed shards
        are loaded instead of recomputed; when False, everything is
        recomputed and shards are overwritten.

    Returns
    -------
    dict mapping spec name to :class:`TrialResult`.
    """
    budgets = _normalise_budgets(budgets)
    batch_size = check_count(batch_size, "batch_size")
    n_workers = check_count(n_workers, "n_workers")
    n_repeats = check_count(n_repeats, "n_repeats")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(
            f"spec names must be unique (results and checkpoint shards "
            f"are keyed by name); duplicated: {duplicates}"
        )
    if measure is None:
        true_value = pool.performance["f_measure"]
    else:
        measure = measure_from_spec(measure)
        true_value = measure.value_from_counts(
            confusion_counts(pool.true_labels, pool.predictions)
        )

    root = _root_seed_sequence(random_state)
    store = None
    if checkpoint_dir is not None:
        if random_state is None:
            raise ValueError(
                "checkpoint_dir requires a reproducible random_state "
                "(int, SeedSequence or Generator), not None"
            )
        from repro.experiments.persistence import TrialStore

        store = TrialStore(checkpoint_dir)
        config = {
            "pool": getattr(pool, "name", "pool"),
            "pool_fingerprint": _pool_fingerprint(pool),
            "budgets": [int(b) for b in budgets],
            "batch_size": int(batch_size),
            "seed": _seed_descriptor(root),
            "oracle": _oracle_descriptor(oracle_factory),
            "specs": [spec.name for spec in specs],
        }
        if measure is not None:
            # Only stamped for measure-targeted runs, so pre-measure
            # run directories keep resuming without a config mismatch.
            config["measure"] = measure.spec()
        store.ensure_config(config, overwrite=not resume)

    # One seed sequence per (spec, repeat) task, addressed by position
    # so the stream of task (s, r) never depends on worker count,
    # scheduling, or which shards were resumed from disk.
    def task_seed(spec_index: int, repeat: int) -> np.random.SeedSequence:
        return _task_seed(root, spec_index, repeat)

    estimates = {
        spec.name: np.full((n_repeats, len(budgets)), np.nan) for spec in specs
    }

    pending: list[tuple[int, int]] = []
    for spec_index, spec in enumerate(specs):
        for repeat in range(n_repeats):
            if store is not None and resume:
                row = store.load_shard(spec_index, spec.name, repeat, budgets)
                if row is not None and len(row) == len(budgets):
                    estimates[spec.name][repeat] = row
                    continue
            pending.append((spec_index, repeat))

    def record(spec_index: int, repeat: int, row: np.ndarray) -> None:
        spec = specs[spec_index]
        estimates[spec.name][repeat] = row
        if store is not None:
            store.save_shard(spec_index, spec.name, repeat, budgets, row)

    if n_workers == 1 or not pending:
        for spec_index, repeat in pending:
            row = _run_one_trial(
                pool, specs[spec_index], budgets, batch_size,
                oracle_factory, task_seed(spec_index, repeat), measure,
            )
            record(spec_index, repeat, row)
    else:
        _check_picklable(specs, oracle_factory)
        max_workers = min(n_workers, len(pending))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(pool, specs, budgets, batch_size, oracle_factory,
                      measure),
        ) as executor:
            futures = {
                executor.submit(
                    _worker_trial, spec_index, task_seed(spec_index, repeat)
                ): (spec_index, repeat)
                for spec_index, repeat in pending
            }
            remaining = set(futures)
            while remaining:
                # Stream shard writes as repeats complete, so an
                # interrupted sweep keeps everything finished so far.
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    spec_index, repeat = futures[future]
                    record(spec_index, repeat, future.result())

    results: dict[str, TrialResult] = {}
    for spec in specs:
        results[spec.name] = TrialResult(
            name=spec.name,
            budgets=budgets,
            estimates=estimates[spec.name],
            true_value=true_value,
        )
    return results
