"""Repeated randomised sampler trials on a fixed pool.

The paper's methodology (section 6.3): fix the pool, run each
estimation method many times with independent randomness, and study
the estimate trajectories statistically.  ``run_trials`` executes that
loop, recording each run's F estimate at a grid of label budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.benchmark import BenchmarkPool
from repro.oracle.deterministic import DeterministicOracle
from repro.utils import spawn_rngs

__all__ = ["SamplerSpec", "run_trials"]


@dataclass
class SamplerSpec:
    """A sampler configuration entered in a comparison.

    Attributes
    ----------
    name:
        Display name ("OASIS 30", "Passive", ...).
    factory:
        Callable ``(predictions, scores, oracle, random_state) ->
        sampler``; partial out any other keyword arguments.
    use_calibrated_scores:
        Feed the pool's calibrated probabilities instead of margins.
    """

    name: str
    factory: object
    use_calibrated_scores: bool = False


@dataclass
class TrialResult:
    """Estimates of one sampler across repeats, on a budget grid.

    ``estimates`` has shape (n_repeats, n_budgets); NaN marks budgets a
    run never reached or where the estimate was undefined.
    """

    name: str
    budgets: np.ndarray
    estimates: np.ndarray
    true_value: float
    extras: dict = field(default_factory=dict)


def run_trials(
    pool: BenchmarkPool,
    specs: list[SamplerSpec],
    *,
    budgets,
    n_repeats: int = 50,
    batch_size: int = 1,
    oracle_factory=None,
    random_state=None,
) -> dict[str, TrialResult]:
    """Run every sampler spec ``n_repeats`` times on ``pool``.

    Parameters
    ----------
    pool:
        The benchmark pool under evaluation.
    specs:
        Sampler configurations to compare.
    budgets:
        Increasing grid of distinct-label budgets at which estimates
        are recorded; the run stops at ``budgets[-1]``.
    n_repeats:
        Independent repetitions per spec (the paper uses 1000; scale
        to taste — Monte-Carlo error shrinks as 1/sqrt(repeats)).
    batch_size:
        Draws per proposal refresh.  1 reproduces the paper's fully
        sequential protocol; larger blocks run every sampler through
        its batched engine (one oracle round-trip and one vectorised
        update per block), trading per-draw adaptivity for wall-clock
        speed.
    oracle_factory:
        Callable ``(true_labels, rng) -> oracle``; defaults to the
        deterministic ground-truth oracle of the paper's experiments.
    random_state:
        Seed for the independent per-run generators.

    Returns
    -------
    dict mapping spec name to :class:`TrialResult`.
    """
    budgets = np.asarray(sorted(budgets), dtype=int)
    if len(budgets) == 0 or budgets[0] <= 0:
        raise ValueError("budgets must be positive and non-empty")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1; got {batch_size}")
    true_value = pool.performance["f_measure"]
    rngs = spawn_rngs(random_state, n_repeats * len(specs))

    results: dict[str, TrialResult] = {}
    rng_index = 0
    for spec in specs:
        scores = pool.scores_calibrated if spec.use_calibrated_scores else pool.scores
        estimates = np.full((n_repeats, len(budgets)), np.nan)
        for repeat in range(n_repeats):
            rng = rngs[rng_index]
            rng_index += 1
            if oracle_factory is None:
                oracle = DeterministicOracle(pool.true_labels)
            else:
                oracle = oracle_factory(pool.true_labels, rng)
            sampler = spec.factory(pool.predictions, scores, oracle, rng)
            sampler.sample_until_budget(int(budgets[-1]), batch_size=batch_size)
            estimates[repeat] = sampler.estimate_at_budgets(budgets)
        results[spec.name] = TrialResult(
            name=spec.name,
            budgets=budgets,
            estimates=estimates,
            true_value=true_value,
        )
    return results
