"""Aggregation of trial trajectories into the paper's plotted curves.

Figure 2/3 plot, per label budget: the expected absolute error
E|F-hat - F| and the standard deviation of F-hat, averaged over
repeated runs.  The paper only plots points where the estimate is
defined with probability over 95% (section 6.3.1); the same rule is
applied here via ``defined_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TrajectoryStats", "aggregate_trajectories", "aggregate_all"]

# The paper's plotting rule: show a budget point only when at least
# this fraction of runs have a well-defined estimate there.
WELL_DEFINED_FRACTION = 0.95


@dataclass
class TrajectoryStats:
    """Aggregated error curves for one sampler.

    Attributes
    ----------
    budgets:
        Label-budget grid.
    abs_error:
        Expected absolute error per budget (NaN where undefined).
    std_dev:
        Standard deviation of the estimate per budget.
    bias:
        Mean signed error per budget.
    defined_fraction:
        Fraction of runs whose estimate is defined per budget.
    """

    name: str
    budgets: np.ndarray
    abs_error: np.ndarray
    std_dev: np.ndarray
    bias: np.ndarray
    defined_fraction: np.ndarray

    def final_abs_error(self) -> float:
        """Absolute error at the largest plotted budget."""
        defined = ~np.isnan(self.abs_error)
        if not defined.any():
            return float("nan")
        return float(self.abs_error[defined][-1])

    def labels_to_reach(self, tolerance: float) -> float:
        """Smallest budget with abs. error at or below ``tolerance``.

        The quantity behind the paper's headline "83% fewer labels":
        compare this across methods at a fixed tolerance.  Returns NaN
        if the tolerance is never reached.
        """
        ok = np.where(
            ~np.isnan(self.abs_error) & (self.abs_error <= tolerance)
        )[0]
        if len(ok) == 0:
            return float("nan")
        return float(self.budgets[ok[0]])


def aggregate_trajectories(result, *, min_defined=WELL_DEFINED_FRACTION) -> TrajectoryStats:
    """Aggregate one :class:`~repro.experiments.runner.TrialResult`.

    Budget points where fewer than ``min_defined`` of the runs have a
    defined estimate are masked to NaN (the paper's 95% rule).
    """
    estimates = result.estimates
    n_repeats = estimates.shape[0]
    defined = ~np.isnan(estimates)
    defined_fraction = defined.sum(axis=0) / n_repeats

    errors = estimates - result.true_value
    # All-NaN columns legitimately aggregate to NaN (estimate never
    # defined at that budget); silence numpy's empty-slice warnings.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        abs_error = np.nanmean(np.abs(errors), axis=0)
        std_dev = np.nanstd(estimates, axis=0)
        bias = np.nanmean(errors, axis=0)

    mask = defined_fraction < min_defined
    abs_error = np.where(mask, np.nan, abs_error)
    std_dev = np.where(mask, np.nan, std_dev)
    bias = np.where(mask, np.nan, bias)

    return TrajectoryStats(
        name=result.name,
        budgets=result.budgets,
        abs_error=abs_error,
        std_dev=std_dev,
        bias=bias,
        defined_fraction=defined_fraction,
    )


def aggregate_all(results: dict, *, min_defined=WELL_DEFINED_FRACTION) -> dict:
    """Aggregate a ``{name: TrialResult}`` mapping curve-by-curve.

    The convenience form used by the CLI and the sweep reports:
    :func:`aggregate_trajectories` applied to every sampler of one
    ``run_trials`` call, preserving insertion order.
    """
    return {
        name: aggregate_trajectories(result, min_defined=min_defined)
        for name, result in results.items()
    }
