"""Shared classifier infrastructure: scaling, splitting, base API."""

from __future__ import annotations

import abc

import numpy as np

from repro.utils import ensure_rng

__all__ = ["BinaryClassifier", "StandardScaler", "train_test_split"]


class BinaryClassifier(abc.ABC):
    """Common API for the pair classifiers.

    Labels are {0, 1}.  ``decision_function`` returns real-valued
    margin scores (positive => predicted match); ``predict`` thresholds
    them at zero.  Subclasses that natively produce probabilities also
    expose ``predict_proba``.
    """

    @abc.abstractmethod
    def fit(self, X, y) -> "BinaryClassifier":
        """Train on features ``X`` (n, d) and binary labels ``y``."""

    @abc.abstractmethod
    def decision_function(self, X) -> np.ndarray:
        """Real-valued scores; sign gives the predicted class."""

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int8)

    @staticmethod
    def _validate_training_data(X, y):
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D; got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)} labels")
        classes = set(np.unique(y).tolist())
        if not classes <= {0, 1}:
            raise ValueError(f"labels must be binary 0/1; found {classes}")
        if len(classes) < 2:
            raise ValueError("training data must contain both classes")
        return X, y.astype(np.int8)


class StandardScaler:
    """Column-wise standardisation to zero mean, unit variance."""

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        # Constant columns carry no signal; avoid division by zero.
        scale[scale == 0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X) -> np.ndarray:
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


def train_test_split(n: int, train_fraction: float = 0.5, *, random_state=None):
    """Random index split of ``range(n)`` into train/test index arrays."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1); got {train_fraction}")
    rng = ensure_rng(random_state)
    order = rng.permutation(n)
    cut = int(round(n * train_fraction))
    cut = min(max(cut, 1), n - 1)
    return np.sort(order[:cut]), np.sort(order[cut:])
