"""Platt scaling with cross-validated decision values (paper 6.3.2).

The paper obtains calibrated scores from LIBSVM's probability outputs,
which fit a sigmoid to five-fold cross-validated decision values [7].
:class:`PlattCalibrator` reproduces that recipe for any of our margin
classifiers: the wrapped classifier is re-trained on each fold, the
held-out margins collected, and a two-parameter sigmoid
``p = 1 / (1 + exp(A * s + B))`` fitted by Newton's method on the
regularised targets of Platt (1999).
"""

from __future__ import annotations

import copy

import numpy as np

from repro.classifiers.base import BinaryClassifier
from repro.utils import ensure_rng, expit

__all__ = ["PlattCalibrator"]


def _fit_platt_sigmoid(scores: np.ndarray, labels: np.ndarray, max_iter: int = 100):
    """Fit A, B of p = sigmoid(-(A*s + B)) by Newton's method.

    Uses Platt's regularised targets t+ = (N+ + 1) / (N+ + 2),
    t- = 1 / (N- + 2) to avoid overfitting the sigmoid to separable
    margins.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=float)
    n_pos = labels.sum()
    n_neg = len(labels) - n_pos
    t_pos = (n_pos + 1.0) / (n_pos + 2.0)
    t_neg = 1.0 / (n_neg + 2.0)
    targets = np.where(labels == 1, t_pos, t_neg)

    a, b = 0.0, np.log((n_neg + 1.0) / (n_pos + 1.0))
    for __ in range(max_iter):
        # p_i = sigmoid(-(a*s_i + b)) -- probability of the positive class.
        p = expit(-(a * scores + b))
        gradient_common = p - targets
        grad_a = float(np.sum(gradient_common * -scores))
        grad_b = float(np.sum(gradient_common * -1.0))
        w = np.maximum(p * (1.0 - p), 1e-12)
        h_aa = float(np.sum(w * scores * scores)) + 1e-12
        h_ab = float(np.sum(w * scores))
        h_bb = float(np.sum(w)) + 1e-12
        det = h_aa * h_bb - h_ab * h_ab
        if abs(det) < 1e-18:
            break
        da = (h_bb * grad_a - h_ab * grad_b) / det
        db = (h_aa * grad_b - h_ab * grad_a) / det
        a -= da
        b -= db
        if abs(da) < 1e-10 and abs(db) < 1e-10:
            break
    return a, b


class PlattCalibrator(BinaryClassifier):
    """Wraps a margin classifier with cross-validated Platt scaling.

    ``fit`` trains the base classifier on the full data for the final
    ``decision_function``, and additionally runs k-fold cross-validation
    to collect unbiased margins for the sigmoid fit — the LIBSVM
    procedure the paper calls a "built-in costly feature".

    Parameters
    ----------
    base:
        Any :class:`BinaryClassifier` exposing ``decision_function``.
    n_folds:
        Cross-validation folds (the paper/LIBSVM use 5).
    random_state:
        Seed or generator for the fold assignment.
    """

    def __init__(self, base, n_folds: int = 5, random_state=None):
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2; got {n_folds}")
        self.base = base
        self.n_folds = n_folds
        self.random_state = random_state

    def fit(self, X, y) -> "PlattCalibrator":
        X, y = self._validate_training_data(X, y)
        rng = ensure_rng(self.random_state)
        n = len(X)
        folds = np.tile(np.arange(self.n_folds), n // self.n_folds + 1)[:n]
        rng.shuffle(folds)

        cv_scores = np.empty(n)
        for fold in range(self.n_folds):
            held_out = folds == fold
            train = ~held_out
            # A fold may lack one class under extreme imbalance; fall
            # back to scoring with the full-data model for that fold.
            model = copy.deepcopy(self.base)
            try:
                model.fit(X[train], y[train])
                cv_scores[held_out] = model.decision_function(X[held_out])
            except ValueError:
                cv_scores[held_out] = np.nan

        self.base.fit(X, y)
        missing = np.isnan(cv_scores)
        if np.any(missing):
            cv_scores[missing] = self.base.decision_function(X[missing])
        self.a_, self.b_ = _fit_platt_sigmoid(cv_scores, y)
        return self

    def decision_function(self, X) -> np.ndarray:
        return self.base.decision_function(X)

    def predict_proba(self, X) -> np.ndarray:
        """Calibrated match probabilities via the fitted sigmoid."""
        scores = self.base.decision_function(X)
        return expit(-(self.a_ * scores + self.b_))

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int8)
