"""Discrete AdaBoost over depth-1 decision stumps (the paper's 'AB')."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BinaryClassifier

__all__ = ["AdaBoostClassifier"]


class _DecisionStump:
    """Axis-aligned threshold classifier: sign(polarity * (x_f - thr))."""

    __slots__ = ("feature", "threshold", "polarity")

    def __init__(self, feature: int, threshold: float, polarity: float):
        self.feature = feature
        self.threshold = threshold
        self.polarity = polarity

    def predict_sign(self, X: np.ndarray) -> np.ndarray:
        raw = self.polarity * (X[:, self.feature] - self.threshold)
        return np.where(raw >= 0, 1.0, -1.0)


def _fit_stump(X: np.ndarray, signs: np.ndarray, weights: np.ndarray):
    """Best stump under the current boosting weights.

    For each feature, sorts the values once and evaluates every midpoint
    threshold with cumulative weight sums — O(d * n log n) total.
    Returns the stump and its weighted error.
    """
    n, d = X.shape
    best_err = np.inf
    best = None
    total_pos = weights[signs > 0].sum()

    for feature in range(d):
        order = np.argsort(X[:, feature], kind="stable")
        values = X[order, feature]
        w_signed = (weights * signs)[order]
        # left_pos[i] = weighted signed sum of items with value <= values[i].
        cumulative = np.cumsum(w_signed)
        # Candidate thresholds between distinct consecutive values.
        distinct = np.nonzero(np.diff(values) > 0)[0]
        if len(distinct) == 0:
            continue
        for idx in distinct:
            threshold = 0.5 * (values[idx] + values[idx + 1])
            # polarity +1 classifies right side as +1:
            # error = w(+ on left) + w(- on right)
            #       = total_pos - (pos right) + (neg right) ... derived
            # Using signed cumsum: sum_{left} w*s = cumulative[idx]
            left_signed = cumulative[idx]
            # err(+1) = P(misclassify) = w(s=+1, left) + w(s=-1, right)
            # w(s=+1,left) - w(s=-1,left) = left_signed
            # w(s=+1,left) + w(s=-1,left) = left_total
            left_total = weights[order][: idx + 1].sum()
            w_pos_left = 0.5 * (left_total + left_signed)
            w_neg_left = left_total - w_pos_left
            w_neg_right = (1.0 - total_pos) - w_neg_left
            err_plus = w_pos_left + w_neg_right
            err_minus = 1.0 - err_plus
            if err_plus < best_err:
                best_err = err_plus
                best = _DecisionStump(feature, threshold, +1.0)
            if err_minus < best_err:
                best_err = err_minus
                best = _DecisionStump(feature, threshold, -1.0)
    return best, best_err


class AdaBoostClassifier(BinaryClassifier):
    """Discrete AdaBoost with decision stumps as weak learners.

    ``decision_function`` returns the boosted margin
    ``sum_m alpha_m h_m(x)`` normalised by ``sum_m alpha_m`` so scores
    lie in [-1, 1].

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds.
    """

    def __init__(self, n_estimators: int = 50):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1; got {n_estimators}")
        self.n_estimators = n_estimators

    def fit(self, X, y) -> "AdaBoostClassifier":
        X, y = self._validate_training_data(X, y)
        n = len(X)
        signs = 2.0 * y - 1.0
        weights = np.full(n, 1.0 / n)

        self.stumps_: list[_DecisionStump] = []
        self.alphas_: list[float] = []
        for __ in range(self.n_estimators):
            stump, err = _fit_stump(X, signs, weights)
            if stump is None:
                break
            err = min(max(err, 1e-12), 1.0 - 1e-12)
            if err >= 0.5:
                break
            alpha = 0.5 * np.log((1.0 - err) / err)
            predictions = stump.predict_sign(X)
            weights *= np.exp(-alpha * signs * predictions)
            weights /= weights.sum()
            self.stumps_.append(stump)
            self.alphas_.append(float(alpha))
            if err < 1e-10:
                break
        if not self.stumps_:
            raise RuntimeError("AdaBoost could not fit any stump better than chance")
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        total = np.zeros(len(X))
        for stump, alpha in zip(self.stumps_, self.alphas_):
            total += alpha * stump.predict_sign(X)
        return total / sum(self.alphas_)
