"""L2-regularised logistic regression via Newton's method (IRLS)."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BinaryClassifier
from repro.utils import expit

__all__ = ["LogisticRegression"]


class LogisticRegression(BinaryClassifier):
    """Binary logistic regression with an L2 penalty.

    Fitted by iteratively reweighted least squares (Newton steps on the
    penalised log-likelihood), which converges in a handful of
    iterations on the low-dimensional similarity features ER pipelines
    produce.  ``predict_proba`` outputs are natively near-calibrated,
    giving the probabilistic score regime of the paper.

    Parameters
    ----------
    reg:
        L2 penalty applied to the weights (not the intercept).
    max_iter:
        Maximum Newton iterations.
    tol:
        Convergence threshold on the parameter update norm.
    """

    def __init__(self, reg: float = 1e-4, max_iter: int = 100, tol: float = 1e-8):
        if reg < 0:
            raise ValueError(f"reg must be non-negative; got {reg}")
        self.reg = reg
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "LogisticRegression":
        X, y = self._validate_training_data(X, y)
        n, d = X.shape
        # Augment with a bias column; keep the bias unpenalised.
        Xb = np.hstack([X, np.ones((n, 1))])
        theta = np.zeros(d + 1)
        penalty = np.full(d + 1, self.reg)
        penalty[-1] = 0.0
        target = y.astype(float)

        self.n_iter_ = 0
        for iteration in range(self.max_iter):
            p = expit(Xb @ theta)
            gradient = Xb.T @ (p - target) / n + penalty * theta
            # Hessian with a ridge floor so it stays invertible when the
            # data are separable and p saturates at 0/1.
            r = np.maximum(p * (1.0 - p), 1e-10)
            hessian = (Xb * r[:, None]).T @ Xb / n + np.diag(penalty + 1e-12)
            update = np.linalg.solve(hessian, gradient)
            theta -= update
            self.n_iter_ = iteration + 1
            if np.linalg.norm(update) < self.tol:
                break

        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """P(match | features) under the fitted model."""
        return expit(self.decision_function(X))
