"""From-scratch pair classifiers (paper sections 6.1.2 and 6.3.4).

scikit-learn is not available offline, so every classifier type the
paper evaluates is implemented here on numpy: linear SVM (the main
pipeline classifier), logistic regression, a one-hidden-layer neural
network, AdaBoost over decision stumps, and an RBF-kernel SVM
approximated with random Fourier features.  Platt scaling provides the
calibrated probability scores of section 6.3.2.
"""

from repro.classifiers.adaboost import AdaBoostClassifier
from repro.classifiers.base import StandardScaler, train_test_split
from repro.classifiers.calibration import PlattCalibrator
from repro.classifiers.linear_svm import LinearSVM
from repro.classifiers.logistic import LogisticRegression
from repro.classifiers.mlp import MLPClassifier
from repro.classifiers.rbf_svm import RBFSampler, RbfSVM

__all__ = [
    "AdaBoostClassifier",
    "StandardScaler",
    "train_test_split",
    "PlattCalibrator",
    "LinearSVM",
    "LogisticRegression",
    "MLPClassifier",
    "RBFSampler",
    "RbfSVM",
]
