"""Linear SVM trained by Pegasos-style stochastic subgradient descent.

This is the paper's main pipeline classifier (L-SVM).  Its
``decision_function`` returns signed distances to the separating
hyperplane — the *uncalibrated* similarity scores of section 6.3.2.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BinaryClassifier
from repro.utils import ensure_rng

__all__ = ["LinearSVM"]


class LinearSVM(BinaryClassifier):
    """L2-regularised hinge-loss linear classifier.

    Minimises  lambda/2 ||w||^2 + mean_i hinge(y_i (w.x_i + b))  with the
    Pegasos learning-rate schedule eta_t = 1 / (lambda * t), iterating
    over mini-batches.  Class imbalance is handled by weighting the
    hinge loss of each class inversely to its frequency
    (``class_weight="balanced"``), which matters for ER training sets.

    Parameters
    ----------
    reg:
        Regularisation strength lambda.
    n_epochs:
        Full passes over the training data.
    batch_size:
        Mini-batch size for the subgradient steps.
    class_weight:
        ``None`` for unweighted hinge loss or ``"balanced"``.
    random_state:
        Seed or generator controlling shuffling.
    """

    def __init__(
        self,
        reg: float = 1e-4,
        n_epochs: int = 40,
        batch_size: int = 64,
        class_weight: str | None = "balanced",
        random_state=None,
    ):
        if reg <= 0:
            raise ValueError(f"reg must be positive; got {reg}")
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1; got {n_epochs}")
        if class_weight not in (None, "balanced"):
            raise ValueError(f"class_weight must be None or 'balanced'; got {class_weight!r}")
        self.reg = reg
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.class_weight = class_weight
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVM":
        X, y = self._validate_training_data(X, y)
        rng = ensure_rng(self.random_state)
        signs = 2.0 * y - 1.0  # {0,1} -> {-1,+1}
        n, d = X.shape

        if self.class_weight == "balanced":
            n_pos = max(int(y.sum()), 1)
            n_neg = max(n - int(y.sum()), 1)
            weights = np.where(y == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))
        else:
            weights = np.ones(n)

        w = np.zeros(d)
        b = 0.0
        step = 0
        for __ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                step += 1
                batch = order[start : start + self.batch_size]
                eta = 1.0 / (self.reg * step)
                margins = signs[batch] * (X[batch] @ w + b)
                active = margins < 1.0
                w *= 1.0 - eta * self.reg
                if np.any(active):
                    rows = batch[active]
                    coeff = weights[rows] * signs[rows]
                    w += (eta / len(batch)) * (coeff @ X[rows])
                    b += (eta / len(batch)) * coeff.sum()
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        margins = X @ self.coef_ + self.intercept_
        # Signed distance to the hyperplane (not the raw margin) so that
        # scores are comparable across differently-scaled weight vectors.
        norm = np.linalg.norm(self.coef_)
        if norm > 0:
            margins = margins / norm
        return margins
