"""RBF-kernel SVM via random Fourier features (the paper's 'R-SVM').

A true kernel SVM solver is replaced by the Rahimi-Rechht random
Fourier feature approximation of the RBF kernel followed by a linear
SVM.  This substitution (documented in DESIGN.md) preserves what the
evaluation experiments need: a non-linear decision function whose
margins serve as similarity scores.
"""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BinaryClassifier
from repro.classifiers.linear_svm import LinearSVM
from repro.utils import ensure_rng

__all__ = ["RBFSampler", "RbfSVM"]


class RBFSampler:
    """Random Fourier feature map approximating the RBF kernel.

    Maps x to sqrt(2/D) * cos(W x + b) with W ~ N(0, 2*gamma*I) and
    b ~ U[0, 2*pi); inner products of mapped points approximate
    exp(-gamma ||x - y||^2).
    """

    def __init__(self, gamma: float = 1.0, n_components: int = 100, random_state=None):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive; got {gamma}")
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1; got {n_components}")
        self.gamma = gamma
        self.n_components = n_components
        self.random_state = random_state

    def fit(self, X) -> "RBFSampler":
        X = np.asarray(X, dtype=float)
        rng = ensure_rng(self.random_state)
        d = X.shape[1]
        self.weights_ = rng.normal(
            0.0, np.sqrt(2.0 * self.gamma), size=(d, self.n_components)
        )
        self.offsets_ = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        projection = X @ self.weights_ + self.offsets_
        return np.sqrt(2.0 / self.n_components) * np.cos(projection)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


class RbfSVM(BinaryClassifier):
    """Approximate RBF-kernel SVM: random Fourier features + LinearSVM.

    Parameters
    ----------
    gamma:
        RBF kernel bandwidth; ``"scale"`` uses 1 / (d * var(X)) like
        common SVM defaults.
    n_components:
        Number of random Fourier features.
    reg, n_epochs:
        Passed through to the underlying :class:`LinearSVM`.
    random_state:
        Seed or generator shared by the feature map and the SVM.
    """

    def __init__(
        self,
        gamma="scale",
        n_components: int = 200,
        reg: float = 1e-4,
        n_epochs: int = 40,
        random_state=None,
    ):
        self.gamma = gamma
        self.n_components = n_components
        self.reg = reg
        self.n_epochs = n_epochs
        self.random_state = random_state

    def fit(self, X, y) -> "RbfSVM":
        X, y = self._validate_training_data(X, y)
        if self.gamma == "scale":
            variance = X.var()
            gamma = 1.0 / (X.shape[1] * variance) if variance > 0 else 1.0
        else:
            gamma = float(self.gamma)
        rng = ensure_rng(self.random_state)
        self._sampler = RBFSampler(
            gamma=gamma, n_components=self.n_components, random_state=rng
        )
        mapped = self._sampler.fit_transform(X)
        self._svm = LinearSVM(
            reg=self.reg, n_epochs=self.n_epochs, random_state=rng
        )
        self._svm.fit(mapped, y)
        return self

    def decision_function(self, X) -> np.ndarray:
        return self._svm.decision_function(self._sampler.transform(X))
