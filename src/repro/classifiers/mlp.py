"""One-hidden-layer perceptron trained with Adam (the paper's 'NN')."""

from __future__ import annotations

import numpy as np

from repro.classifiers.base import BinaryClassifier
from repro.utils import ensure_rng, expit

__all__ = ["MLPClassifier"]


class MLPClassifier(BinaryClassifier):
    """Multi-layer perceptron with one tanh hidden layer.

    Architecture: input -> tanh(hidden) -> linear output, trained on
    the logistic loss with the Adam optimiser.  ``decision_function``
    returns the pre-sigmoid logit; ``predict_proba`` the sigmoid of it.

    Parameters
    ----------
    hidden_units:
        Width of the single hidden layer.
    learning_rate:
        Adam step size.
    n_epochs:
        Passes over the training data.
    batch_size:
        Mini-batch size.
    reg:
        L2 penalty on all weight matrices.
    class_weight:
        ``None`` or ``"balanced"`` per-class loss weighting.
    random_state:
        Seed or generator for init and shuffling.
    """

    def __init__(
        self,
        hidden_units: int = 16,
        learning_rate: float = 1e-2,
        n_epochs: int = 100,
        batch_size: int = 64,
        reg: float = 1e-4,
        class_weight: str | None = "balanced",
        random_state=None,
    ):
        if hidden_units < 1:
            raise ValueError(f"hidden_units must be >= 1; got {hidden_units}")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.reg = reg
        self.class_weight = class_weight
        self.random_state = random_state

    def fit(self, X, y) -> "MLPClassifier":
        X, y = self._validate_training_data(X, y)
        rng = ensure_rng(self.random_state)
        n, d = X.shape
        h = self.hidden_units
        target = y.astype(float)

        if self.class_weight == "balanced":
            n_pos = max(int(y.sum()), 1)
            n_neg = max(n - int(y.sum()), 1)
            sample_w = np.where(y == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))
        else:
            sample_w = np.ones(n)

        # Glorot-style initialisation.
        params = {
            "W1": rng.normal(0.0, np.sqrt(2.0 / (d + h)), size=(d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0.0, np.sqrt(2.0 / (h + 1)), size=h),
            "b2": 0.0,
        }
        moments = {
            k: [np.zeros_like(np.asarray(v, dtype=float)),
                np.zeros_like(np.asarray(v, dtype=float))]
            for k, v in params.items()
        }
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        for __ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                step += 1
                batch = order[start : start + self.batch_size]
                xb, tb, wb = X[batch], target[batch], sample_w[batch]
                m = len(batch)

                hidden = np.tanh(xb @ params["W1"] + params["b1"])
                logits = hidden @ params["W2"] + params["b2"]
                probs = expit(logits)

                # Weighted logistic-loss gradient wrt logits.
                delta = wb * (probs - tb) / m
                grads = {
                    "W2": hidden.T @ delta + self.reg * params["W2"],
                    "b2": float(delta.sum()),
                }
                back = np.outer(delta, params["W2"]) * (1.0 - hidden**2)
                grads["W1"] = xb.T @ back + self.reg * params["W1"]
                grads["b1"] = back.sum(axis=0)

                for key in params:
                    g = np.asarray(grads[key], dtype=float)
                    m1, m2 = moments[key]
                    m1[...] = beta1 * m1 + (1 - beta1) * g
                    m2[...] = beta2 * m2 + (1 - beta2) * g * g
                    m1_hat = m1 / (1 - beta1**step)
                    m2_hat = m2 / (1 - beta2**step)
                    update = self.learning_rate * m1_hat / (np.sqrt(m2_hat) + eps)
                    if np.isscalar(params[key]):
                        params[key] = params[key] - float(update)
                    else:
                        params[key] = params[key] - update

        self._params = params
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        p = self._params
        hidden = np.tanh(X @ p["W1"] + p["b1"])
        return hidden @ p["W2"] + p["b2"]

    def predict_proba(self, X) -> np.ndarray:
        """Sigmoid output of the network (approximate probabilities)."""
        return expit(self.decision_function(X))
