"""Simulated crowdsourcing oracle: majority vote over noisy workers.

The paper motivates OASIS with crowdsourced labelling; its theory covers
any randomised oracle.  This oracle exercises that generality: each
query polls ``n_workers`` simulated annotators, each of whom reports the
true label with their own accuracy, and returns the majority vote.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.oracle.base import BaseOracle
from repro.utils import ensure_rng

__all__ = ["CrowdOracle"]


class CrowdOracle(BaseOracle):
    """Majority vote of independent noisy workers over ground truth.

    Parameters
    ----------
    true_labels:
        Binary ground-truth labels per pool item.
    worker_accuracies:
        Sequence of per-worker probabilities of reporting the true
        label.  Must have odd length so votes cannot tie.
    random_state:
        Seed or generator for the simulated workers.
    """

    def __init__(self, true_labels, worker_accuracies, random_state=None):
        labels = np.asarray(true_labels, dtype=np.int8)
        accs = np.asarray(worker_accuracies, dtype=float)
        if accs.ndim != 1 or len(accs) == 0:
            raise ValueError("worker_accuracies must be a non-empty 1-D sequence")
        if len(accs) % 2 == 0:
            raise ValueError("need an odd number of workers to avoid tied votes")
        if np.any((accs < 0) | (accs > 1)):
            raise ValueError("worker accuracies must lie in [0, 1]")
        self._labels = labels
        self._accs = accs
        self._rng = ensure_rng(random_state)
        self._p_correct_majority = self._majority_probability(accs)

    @staticmethod
    def _majority_probability(accs: np.ndarray) -> float:
        """P(majority vote is correct) for independent heterogeneous workers.

        Computed exactly by dynamic programming over the Poisson-binomial
        distribution of correct votes.
        """
        n = len(accs)
        # dist[k] = P(exactly k workers correct), built worker by worker.
        dist = np.zeros(n + 1)
        dist[0] = 1.0
        for acc in accs:
            dist[1:] = dist[1:] * (1 - acc) + dist[:-1] * acc
            dist[0] *= 1 - acc
        majority = n // 2 + 1
        return float(dist[majority:].sum())

    def __len__(self) -> int:
        return len(self._labels)

    def label(self, index: int) -> int:
        truth = int(self._labels[index])
        correct = self._rng.random(len(self._accs)) < self._accs
        votes = np.where(correct, truth, 1 - truth)
        return int(votes.sum() * 2 > len(votes))

    def _label_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised majority votes: one worker panel per distinct index.

        Draws a ``(batch, n_workers)`` uniform block, so the worker
        randomness matches a sequential loop of :meth:`label` calls.
        """
        truth = self._labels[indices].astype(np.int64)
        correct = self._rng.random((len(indices), len(self._accs))) < self._accs
        votes = np.where(correct, truth[:, None], 1 - truth[:, None])
        return (votes.sum(axis=1) * 2 > len(self._accs)).astype(np.int8)

    def probability(self, index: int) -> float:
        p = self._p_correct_majority
        return p if self._labels[index] == 1 else 1.0 - p

    @property
    def majority_accuracy(self) -> float:
        """Exact probability that a single majority vote is correct."""
        return self._p_correct_majority

    def wilson_interval(self, n_votes: int, confidence: float = 0.95) -> tuple:
        """Wilson score interval for the empirical majority accuracy.

        Utility for sizing crowd experiments: given ``n_votes`` queries,
        the interval within which the observed accuracy should fall.
        """
        if n_votes <= 0:
            raise ValueError("n_votes must be positive")
        z = float(stats.norm.ppf(0.5 + confidence / 2.0))
        p = self._p_correct_majority
        denom = 1.0 + z**2 / n_votes
        centre = (p + z**2 / (2 * n_votes)) / denom
        half = z * np.sqrt(p * (1 - p) / n_votes + z**2 / (4 * n_votes**2)) / denom
        return (max(0.0, centre - half), min(1.0, centre + half))
