"""Adapter turning any labelling callback into an oracle.

Real evaluations plug OASIS into an annotation UI or crowdsourcing
queue; this adapter wraps whatever callable provides those labels so
users need not subclass :class:`~repro.oracle.base.BaseOracle`.
"""

from __future__ import annotations

from repro.oracle.base import BaseOracle

__all__ = ["CallbackOracle"]


class CallbackOracle(BaseOracle):
    """Oracle delegating to a user-supplied ``label_fn(index) -> {0,1}``.

    Parameters
    ----------
    label_fn:
        Callable returning the binary label for a pool index.  May be
        randomised (crowd queue, annotator pool) or deterministic.
        Batch queries (:meth:`~repro.oracle.base.BaseOracle.query_many`)
        fall back to one call per distinct index.
    probability_fn:
        Optional callable returning p(1|z) for diagnostics; if omitted,
        :meth:`probability` raises ``NotImplementedError`` (samplers
        never need it — only convergence diagnostics do).
    """

    def __init__(self, label_fn, probability_fn=None):
        if not callable(label_fn):
            raise TypeError("label_fn must be callable")
        if probability_fn is not None and not callable(probability_fn):
            raise TypeError("probability_fn must be callable or None")
        self._label_fn = label_fn
        self._probability_fn = probability_fn

    def label(self, index: int) -> int:
        label = int(self._label_fn(int(index)))
        if label not in (0, 1):
            raise ValueError(
                f"label_fn returned {label!r} for index {index}; "
                "labels must be 0 or 1"
            )
        return label

    def probability(self, index: int) -> float:
        if self._probability_fn is None:
            raise NotImplementedError(
                "no probability_fn supplied; CallbackOracle only answers "
                "label queries"
            )
        return float(self._probability_fn(int(index)))
