"""Bernoulli noisy oracle with arbitrary per-item probabilities."""

from __future__ import annotations

import numpy as np

from repro.oracle.base import BaseOracle
from repro.utils import ensure_rng

__all__ = ["NoisyOracle"]


class NoisyOracle(BaseOracle):
    """Oracle drawing labels ``l ~ Bernoulli(p(1|z))``.

    Two construction styles are supported:

    * direct probabilities — pass ``probabilities`` with p(1|z) per item;
    * flip noise on ground truth — pass ``true_labels`` and ``flip_prob``;
      then ``p(1|z) = 1 - flip_prob`` for matches and ``flip_prob`` for
      non-matches, modelling an annotator with symmetric error rate.
    """

    def __init__(
        self,
        probabilities=None,
        *,
        true_labels=None,
        flip_prob: float = 0.0,
        random_state=None,
    ):
        if (probabilities is None) == (true_labels is None):
            raise ValueError("pass exactly one of probabilities / true_labels")
        if probabilities is not None:
            probs = np.asarray(probabilities, dtype=float)
            if np.any((probs < 0) | (probs > 1)):
                raise ValueError("probabilities must lie in [0, 1]")
        else:
            if not 0.0 <= flip_prob < 0.5:
                raise ValueError(f"flip_prob must be in [0, 0.5); got {flip_prob}")
            labels = np.asarray(true_labels, dtype=float)
            probs = labels * (1.0 - flip_prob) + (1.0 - labels) * flip_prob
        if probs.ndim != 1:
            raise ValueError(f"probabilities must be 1-D; got shape {probs.shape}")
        self._probs = probs
        self._rng = ensure_rng(random_state)

    def __len__(self) -> int:
        return len(self._probs)

    def label(self, index: int) -> int:
        return int(self._rng.random() < self._probs[index])

    def _label_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised Bernoulli draws, one uniform per distinct index.

        Consumes the same random stream as a sequential loop of
        :meth:`label` calls over ``indices``.
        """
        return (self._rng.random(len(indices)) < self._probs[indices]).astype(
            np.int8
        )

    def probability(self, index: int) -> float:
        return float(self._probs[index])

    @property
    def probabilities(self) -> np.ndarray:
        view = self._probs.view()
        view.flags.writeable = False
        return view
