"""Deterministic ground-truth oracle (the paper's experimental regime)."""

from __future__ import annotations

import numpy as np

from repro.oracle.base import BaseOracle

__all__ = ["DeterministicOracle"]


class DeterministicOracle(BaseOracle):
    """Oracle backed by a fixed ground-truth label vector.

    Oracle probabilities are exactly 0 or 1 (paper section 6.1.1: "we
    are in the regime of a deterministic Oracle").
    """

    def __init__(self, true_labels):
        labels = np.asarray(true_labels)
        if labels.ndim != 1:
            raise ValueError(f"true_labels must be 1-D; got shape {labels.shape}")
        unique = set(np.unique(labels).tolist())
        if not unique <= {0, 1}:
            raise ValueError(f"true_labels must be binary; found values {unique}")
        self._labels = labels.astype(np.int8)

    def __len__(self) -> int:
        return len(self._labels)

    def label(self, index: int) -> int:
        return int(self._labels[index])

    def _label_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised batch labelling: a single fancy-index gather."""
        return self._labels[indices]

    def probability(self, index: int) -> float:
        return float(self._labels[index])

    @property
    def labels(self) -> np.ndarray:
        """Read-only view of the ground-truth labels (for diagnostics)."""
        view = self._labels.view()
        view.flags.writeable = False
        return view
