"""Labelling oracles (paper Definition 4).

An oracle answers binary match/non-match queries on record pairs.  The
paper's experiments use a deterministic oracle built from ground truth;
the theory covers randomised oracles, which we also provide.
"""

from repro.oracle.base import BaseOracle, CountingOracle
from repro.oracle.callback import CallbackOracle
from repro.oracle.crowd import CrowdOracle
from repro.oracle.deterministic import DeterministicOracle
from repro.oracle.noisy import NoisyOracle

__all__ = [
    "BaseOracle",
    "CallbackOracle",
    "CountingOracle",
    "CrowdOracle",
    "DeterministicOracle",
    "NoisyOracle",
]
