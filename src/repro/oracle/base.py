"""Oracle protocol and query accounting.

Oracles label record pairs identified by integer pool indices.  The
samplers never see ground truth directly — they only see oracle
responses — which mirrors the paper's efficient-evaluation setting
where each query costs money/time.
"""

from __future__ import annotations

import abc

__all__ = ["BaseOracle", "CountingOracle"]


class BaseOracle(abc.ABC):
    """Randomised labelling oracle ``Oracle: pair index -> {0, 1}``."""

    @abc.abstractmethod
    def label(self, index: int) -> int:
        """Return a (possibly noisy) binary label for pool item ``index``."""

    @abc.abstractmethod
    def probability(self, index: int) -> float:
        """The oracle probability ``p(1|z)`` for pool item ``index``.

        Exposed for diagnostics and the exact-optimum computations of
        the convergence experiments; samplers must not consult it.
        """

    def __call__(self, index: int) -> int:
        return self.label(index)


class CountingOracle(BaseOracle):
    """Wrapper that counts queries to an inner oracle.

    ``n_queries`` counts every call; ``n_distinct`` counts distinct pool
    items queried, which is the paper's notion of label budget
    (footnote 5: re-queries of a cached pair are free).
    """

    def __init__(self, inner: BaseOracle):
        self.inner = inner
        self.n_queries = 0
        self._seen: set[int] = set()

    @property
    def n_distinct(self) -> int:
        return len(self._seen)

    def label(self, index: int) -> int:
        self.n_queries += 1
        self._seen.add(int(index))
        return self.inner.label(index)

    def probability(self, index: int) -> float:
        return self.inner.probability(index)

    def reset(self) -> None:
        """Clear the query counters (not the inner oracle)."""
        self.n_queries = 0
        self._seen.clear()
