"""Oracle protocol and query accounting.

Oracles label record pairs identified by integer pool indices.  The
samplers never see ground truth directly — they only see oracle
responses — which mirrors the paper's efficient-evaluation setting
where each query costs money/time.

Oracles answer one index at a time (:meth:`BaseOracle.label`) or a
whole batch in one call (:meth:`BaseOracle.query_many`).  The batch
entry point deduplicates repeated indices so a randomised oracle is
consulted exactly once per distinct pair — the bulk analogue of the
samplers' label cache (paper footnote 5) — and lets backends answer
vectorised by overriding :meth:`BaseOracle._label_batch`.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["BaseOracle", "CountingOracle"]


class BaseOracle(abc.ABC):
    """Randomised labelling oracle ``Oracle: pair index -> {0, 1}``."""

    @abc.abstractmethod
    def label(self, index: int) -> int:
        """Return a (possibly noisy) binary label for pool item ``index``."""

    @abc.abstractmethod
    def probability(self, index: int) -> float:
        """The oracle probability ``p(1|z)`` for pool item ``index``.

        Exposed for diagnostics and the exact-optimum computations of
        the convergence experiments; samplers must not consult it.
        """

    def _label_batch(self, indices: np.ndarray) -> np.ndarray:
        """Label a 1-D array of *distinct* pool indices.

        Backends with a vectorised source of truth override this; the
        default consults :meth:`label` per index in the given order, so
        randomised oracles consume their randomness exactly as a
        sequential loop would.
        """
        return np.fromiter(
            (self.label(int(i)) for i in indices),
            dtype=np.int8,
            count=len(indices),
        )

    def query_many(self, indices) -> np.ndarray:
        """Label a batch of pool indices in one call.

        Repeated indices are deduplicated before the backend is
        consulted — each distinct index is labelled exactly once (at
        its first occurrence) and the result is broadcast to every
        repeat, so a randomised oracle cannot contradict itself within
        a batch.  Distinct indices are queried in first-occurrence
        order, matching the randomness consumption of a sequential
        loop with label caching.

        Returns an ``int8`` array of labels aligned with ``indices``.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if indices.ndim != 1:
            raise ValueError(f"indices must be 1-D; got shape {indices.shape}")
        if len(indices) == 0:
            return np.zeros(0, dtype=np.int8)
        unique, first_pos, inverse = np.unique(
            indices, return_index=True, return_inverse=True
        )
        order = np.argsort(first_pos)  # first-occurrence order
        fresh_labels = np.asarray(self._label_batch(unique[order]))
        if fresh_labels.shape != order.shape:
            raise ValueError(
                f"oracle returned {fresh_labels.shape} labels for "
                f"{order.shape} distinct indices"
            )
        if np.any((fresh_labels != 0) & (fresh_labels != 1)):
            bad = fresh_labels[(fresh_labels != 0) & (fresh_labels != 1)][0]
            raise ValueError(f"oracle returned non-binary label {bad}")
        # Realign: ``fresh_labels`` follows first-occurrence order;
        # ``inverse`` indexes into the sorted ``unique`` array.
        rank = np.empty_like(order)
        rank[order] = np.arange(len(order))
        return fresh_labels.astype(np.int8)[rank][inverse]

    def __call__(self, index: int) -> int:
        return self.label(index)


class CountingOracle(BaseOracle):
    """Wrapper that counts queries to an inner oracle.

    ``n_queries`` counts every :meth:`label` call plus, per
    :meth:`query_many` call, the number of *deduplicated* queries
    forwarded to the inner oracle — the calls a sequential loop with
    intra-batch label caching would have made.  ``n_distinct`` counts
    distinct pool items queried, which is the paper's notion of label
    budget (footnote 5: re-queries of a cached pair are free).
    """

    def __init__(self, inner: BaseOracle):
        self.inner = inner
        self.n_queries = 0
        self._seen: set[int] = set()

    @property
    def n_distinct(self) -> int:
        return len(self._seen)

    def label(self, index: int) -> int:
        self.n_queries += 1
        self._seen.add(int(index))
        return self.inner.label(index)

    def query_many(self, indices) -> np.ndarray:
        """Batch labelling with query accounting.

        ``n_queries`` increases by the number of *deduplicated* queries
        forwarded to the inner oracle — the same count a sequential
        loop with label caching inside one batch would produce.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        unique = np.unique(indices)
        self.n_queries += len(unique)
        self._seen.update(int(i) for i in unique)
        return self.inner.query_many(indices)

    def probability(self, index: int) -> float:
        return self.inner.probability(index)

    def reset(self) -> None:
        """Clear the query counters (not the inner oracle)."""
        self.n_queries = 0
        self._seen.clear()
