"""Reproduction of "In Search of an Entity Resolution OASIS" (VLDB 2017).

OASIS — Optimal Asymptotic Sequential Importance Sampling — evaluates
entity-resolution systems under extreme class imbalance, estimating the
F-measure of a predicted resolution with far fewer oracle labels than
passive sampling while remaining statistically consistent.

Quickstart::

    from repro import OASISSampler, DeterministicOracle

    oracle = DeterministicOracle(true_labels)
    sampler = OASISSampler(predictions, scores, oracle, random_state=0)
    sampler.sample_until_budget(500)
    print(sampler.estimate)           # F-measure estimate
    print(sampler.labels_consumed)    # distinct labels used

See README.md for the quickstart and batched-mode examples, and the
docs/ tree for the API reference and the paper-to-implementation
mapping of every table and figure.
"""

from repro.core import OASISSampler, Strata, csf_stratify, stratify
from repro.core.estimators import AISEstimator
from repro.datasets import BENCHMARK_NAMES, load_benchmark
from repro.measures import (
    Accuracy,
    BalancedAccuracy,
    FMeasure,
    Precision,
    RatioMeasure,
    Recall,
    Specificity,
    WeightedRelativeAccuracy,
    f_measure,
    measure_from_spec,
    pool_performance,
    precision,
    recall,
)
from repro.oracle import CrowdOracle, DeterministicOracle, NoisyOracle
from repro.samplers import (
    ImportanceSampler,
    OSSSampler,
    PassiveSampler,
    StratifiedSampler,
)

__version__ = "1.0.0"

__all__ = [
    "OASISSampler",
    "Strata",
    "csf_stratify",
    "stratify",
    "AISEstimator",
    "BENCHMARK_NAMES",
    "load_benchmark",
    "f_measure",
    "pool_performance",
    "precision",
    "recall",
    "RatioMeasure",
    "FMeasure",
    "Precision",
    "Recall",
    "Accuracy",
    "Specificity",
    "BalancedAccuracy",
    "WeightedRelativeAccuracy",
    "measure_from_spec",
    "CrowdOracle",
    "DeterministicOracle",
    "NoisyOracle",
    "ImportanceSampler",
    "OSSSampler",
    "PassiveSampler",
    "StratifiedSampler",
    "__version__",
]
