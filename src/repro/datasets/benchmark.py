"""Named benchmark pools mirroring the paper's Tables 1 and 2.

Each benchmark runs the full pipeline end-to-end on a synthetic
counterpart of one paper dataset: generate the sources, assemble an
evaluation pool with the target match count and class-imbalance ratio,
train the pair classifier on a (non-representative) labelled subset,
and score the pool.  The result packages everything a sampler needs —
pairs, scores (uncalibrated margins and calibrated probabilities),
predictions and ground truth.

Scaled sizes: our pools keep the paper's imbalance ratios but use fewer
matches so that repeated sampling experiments run on one machine; the
``scale`` parameter selects the regime ("tiny" for unit tests, "small"
for benchmark runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.classifiers.base import train_test_split
from repro.classifiers.calibration import PlattCalibrator
from repro.classifiers.linear_svm import LinearSVM
from repro.datasets.citations import generate_citation_dedup, generate_citation_pair
from repro.datasets.products import generate_product_pair
from repro.datasets.restaurants import generate_restaurant_pair
from repro.datasets.tweets import generate_tweets
from repro.measures.fmeasure import pool_performance
from repro.pipeline.features import FieldSpec, PairFeatureExtractor
from repro.pipeline.matching import threshold_match
from repro.pipeline.records import MatchRelation, cross_product_pairs, dedup_pairs
from repro.utils import ensure_rng

__all__ = ["BENCHMARK_NAMES", "BenchmarkPool", "load_benchmark", "dataset_summary"]


@dataclass
class BenchmarkPool:
    """A ready-to-evaluate pool: the sampler-facing dataset interface.

    Attributes
    ----------
    name:
        Benchmark identifier.
    scores:
        Uncalibrated similarity scores (SVM margins) per pool item.
    scores_calibrated:
        Platt-calibrated match probabilities per pool item.
    predictions:
        Predicted labels (R-hat membership) per pool item.
    true_labels:
        Ground-truth labels per pool item (backs the oracle).
    pairs:
        (n, 2) record-index pairs, or None for non-ER pools (tweets).
    features:
        Pairwise similarity features used by the classifier.
    performance:
        True pool performance of the predictions (precision/recall/F).
    """

    name: str
    scores: np.ndarray
    scores_calibrated: np.ndarray
    predictions: np.ndarray
    true_labels: np.ndarray
    pairs: np.ndarray | None = None
    features: np.ndarray | None = None
    performance: dict = field(default_factory=dict)
    threshold: float = 0.0

    def __len__(self) -> int:
        return len(self.scores)

    @property
    def n_matches(self) -> int:
        return int(self.true_labels.sum())

    @property
    def imbalance_ratio(self) -> float:
        matches = self.n_matches
        if matches == 0:
            return float("inf")
        return (len(self) - matches) / matches


# Per-benchmark configuration.  ``matches``/``ratio`` are (tiny, small)
# pairs; ``noise`` tunes how separable the classifier's task is and
# ``target_recall`` sets the decision threshold's operating point, which
# together control where each benchmark lands on Table 2's quality
# spectrum (paper: Amazon-Google poor, DBLP-ACM near-perfect, etc.).
_CONFIGS = {
    "amazon_google": {
        "domain": "products",
        "matches": {"tiny": 10, "small": 30},
        "ratio": {"tiny": 200, "small": 3381},
        "noise": 3.0,
        "overlap": 0.5,
        "variant_prob": 0.35,
        "target_recall": 0.20,
    },
    "restaurant": {
        "domain": "restaurants",
        "matches": {"tiny": 10, "small": 20},
        "ratio": {"tiny": 200, "small": 3328},
        "noise": 0.8,
        "overlap": 0.3,
        "target_recall": 0.89,
    },
    "dblp_acm": {
        "domain": "citations",
        "matches": {"tiny": 10, "small": 20},
        "ratio": {"tiny": 200, "small": 2697},
        "noise": 0.3,
        "overlap": 0.6,
        "target_recall": 0.90,
    },
    "abt_buy": {
        "domain": "products",
        "matches": {"tiny": 15, "small": 50},
        "ratio": {"tiny": 150, "small": 1075},
        "noise": 2.0,
        "overlap": 0.5,
        "variant_prob": 0.15,
        "target_recall": 0.45,
    },
    "cora": {
        "domain": "dedup",
        "matches": {"tiny": 60, "small": 300},
        "ratio": {"tiny": 48, "small": 48},
        "noise": 1.5,
        "target_recall": 0.84,
    },
    "tweets100k": {
        "domain": "tweets",
        "matches": {"tiny": 500, "small": 2500},
        "ratio": {"tiny": 1.0, "small": 1.0},
        "separation": 1.45,
        "target_recall": None,
    },
}

BENCHMARK_NAMES = tuple(_CONFIGS)

_FIELD_SPECS = {
    "products": [
        FieldSpec("name", "short_text"),
        FieldSpec("description", "long_text"),
        FieldSpec("price", "numeric"),
    ],
    "restaurants": [
        FieldSpec("name", "short_text"),
        FieldSpec("address", "short_text"),
        FieldSpec("city", "short_text"),
        FieldSpec("cuisine", "short_text"),
        FieldSpec("phone", "short_text"),
    ],
    "citations": [
        FieldSpec("title", "short_text"),
        FieldSpec("authors", "short_text"),
        FieldSpec("venue", "short_text"),
        FieldSpec("year", "numeric"),
    ],
}
_FIELD_SPECS["dedup"] = _FIELD_SPECS["citations"]


def _generate_stores(config: dict, n_entities: int, rng):
    """Generate the record stores for a two-source or dedup domain."""
    domain = config["domain"]
    if domain == "products":
        return generate_product_pair(
            n_entities,
            config["overlap"],
            noise_level=config["noise"],
            variant_prob=config.get("variant_prob", 0.0),
            random_state=rng,
        )
    if domain == "restaurants":
        return generate_restaurant_pair(
            n_entities, config["overlap"], noise_level=config["noise"], random_state=rng
        )
    if domain == "citations":
        return generate_citation_pair(
            n_entities, config["overlap"], noise_level=config["noise"], random_state=rng
        )
    if domain == "dedup":
        store = generate_citation_dedup(
            n_entities, noise_level=config["noise"], random_state=rng
        )
        return store, store
    raise ValueError(f"unknown domain {domain!r}")


def _required_entities(config: dict, n_matches: int, pool_size: int) -> int:
    """Size the entity universe so the pool targets are reachable."""
    if config["domain"] == "dedup":
        # ~3.5 matching pairs per entity at the default duplication rate.
        return max(int(math.ceil(n_matches / 3.0)) + 20, 40)
    overlap = config["overlap"]
    # Each store holds m = shared + (n - shared)/2 records; the pair
    # space m^2 must exceed the pool with slack, and the shared-entity
    # count (the only source of matches) must exceed n_matches.
    m_needed = math.sqrt(1.5 * pool_size)
    shared_needed = 1.3 * n_matches
    # n from m: m = s + (n - s)/2  =>  n = 2m - s.
    n_from_pairs = 2 * m_needed - shared_needed
    n_from_matches = shared_needed / max(overlap, 1e-9)
    return int(math.ceil(max(n_from_pairs, n_from_matches, 30)))


def _assemble_pool(labels_full: np.ndarray, n_matches: int, ratio: float, rng):
    """Pick pool row indices: ``n_matches`` matches + ratio-many non-matches."""
    match_rows = np.nonzero(labels_full == 1)[0]
    nonmatch_rows = np.nonzero(labels_full == 0)[0]
    if len(match_rows) < n_matches:
        raise RuntimeError(
            f"pair space has only {len(match_rows)} matches; "
            f"need {n_matches} (enlarge the entity universe)"
        )
    n_nonmatches = int(round(n_matches * ratio))
    if len(nonmatch_rows) < n_nonmatches:
        raise RuntimeError(
            f"pair space has only {len(nonmatch_rows)} non-matches; "
            f"need {n_nonmatches} (enlarge the entity universe)"
        )
    chosen_matches = rng.choice(match_rows, size=n_matches, replace=False)
    chosen_nonmatches = rng.choice(nonmatch_rows, size=n_nonmatches, replace=False)
    pool_rows = np.concatenate([chosen_matches, chosen_nonmatches])
    rng.shuffle(pool_rows)
    return pool_rows


def _training_rows(labels_full: np.ndarray, pool_rows: np.ndarray, rng, *,
                   n_pos: int = 40, n_neg: int = 400):
    """Labelled training subset drawn from the full pair space.

    Deliberately *not* representative (heavily enriched in matches), as
    the paper notes heuristic training sets are fine for learning the
    scorer — only evaluation needs sound sampling.
    """
    match_rows = np.nonzero(labels_full == 1)[0]
    nonmatch_rows = np.nonzero(labels_full == 0)[0]
    n_pos = min(n_pos, len(match_rows))
    n_neg = min(n_neg, len(nonmatch_rows))
    pos = rng.choice(match_rows, size=n_pos, replace=False)
    neg = rng.choice(nonmatch_rows, size=n_neg, replace=False)
    return np.concatenate([pos, neg])


def _select_threshold(train_scores, train_labels, target_recall) -> float:
    """Pick the decision threshold hitting ``target_recall`` on training.

    The matcher keeps the pairs whose score is at least the threshold;
    choosing the (1 - target_recall) quantile of the positive-class
    training margins makes roughly ``target_recall`` of the training
    matches survive.  This is how the pipeline lands at each paper
    dataset's Table 2 operating point without consulting pool truth.
    """
    if target_recall is None:
        return 0.0
    positives = np.asarray(train_scores)[np.asarray(train_labels) == 1]
    if len(positives) == 0:
        return 0.0
    threshold = float(np.quantile(positives, 1.0 - target_recall))
    return max(threshold, 0.0)


def load_benchmark(
    name: str,
    scale: str = "small",
    *,
    classifier=None,
    random_state=None,
) -> BenchmarkPool:
    """Build a named benchmark pool end-to-end.

    Parameters
    ----------
    name:
        One of :data:`BENCHMARK_NAMES`.
    scale:
        "tiny" (unit-test size, capped imbalance) or "small"
        (benchmark size, paper imbalance ratios).
    classifier:
        Optional classifier instance replacing the default
        :class:`LinearSVM` (used by the Figure 5 experiment).
    random_state:
        Seed or generator; fixes the dataset, the pool and training.

    Returns
    -------
    BenchmarkPool
    """
    if name not in _CONFIGS:
        raise KeyError(f"unknown benchmark {name!r}; choose from {BENCHMARK_NAMES}")
    config = _CONFIGS[name]
    if scale not in ("tiny", "small"):
        raise ValueError(f"scale must be 'tiny' or 'small'; got {scale!r}")
    rng = ensure_rng(random_state)
    n_matches = config["matches"][scale]
    ratio = config["ratio"][scale]

    if config["domain"] == "tweets":
        return _load_tweets(name, config, n_matches, rng, classifier)

    pool_size = int(round(n_matches * (1 + ratio)))
    n_entities = _required_entities(config, n_matches, pool_size)
    store_a, store_b = _generate_stores(config, n_entities, rng)

    if config["domain"] == "dedup":
        pairs_full = dedup_pairs(len(store_a))
    else:
        pairs_full = cross_product_pairs(len(store_a), len(store_b))
    relation = MatchRelation.from_entity_ids(store_a, store_b, pairs_full)
    labels_full = relation.labels

    pool_rows = _assemble_pool(labels_full, n_matches, ratio, rng)
    train_rows = _training_rows(labels_full, pool_rows, rng)

    extractor = PairFeatureExtractor(_FIELD_SPECS[config["domain"]])
    extractor.fit(store_a, store_b)
    features_train = extractor.transform(pairs_full[train_rows])
    features_pool = extractor.transform(pairs_full[pool_rows])

    base = classifier if classifier is not None else LinearSVM(random_state=rng)
    model = PlattCalibrator(base, random_state=rng)
    model.fit(features_train, labels_full[train_rows])

    threshold = _select_threshold(
        model.decision_function(features_train),
        labels_full[train_rows],
        config["target_recall"],
    )
    scores = model.decision_function(features_pool)
    scores_calibrated = model.predict_proba(features_pool)
    predictions = threshold_match(scores, threshold)
    true_labels = labels_full[pool_rows].astype(np.int8)

    return BenchmarkPool(
        name=name,
        scores=scores,
        scores_calibrated=scores_calibrated,
        predictions=predictions,
        true_labels=true_labels,
        pairs=pairs_full[pool_rows],
        features=features_pool,
        performance=pool_performance(true_labels, predictions),
        threshold=threshold,
    )


def _load_tweets(name, config, n_pos: int, rng, classifier) -> BenchmarkPool:
    """Balanced non-ER benchmark: items are classified directly."""
    n_items = int(round(n_pos * (1 + config["ratio"]["small"])))
    features, labels = generate_tweets(
        n_items,
        separation=config["separation"],
        random_state=rng,
    )
    train_idx, pool_idx = train_test_split(n_items, 0.25, random_state=rng)
    base = classifier if classifier is not None else LinearSVM(random_state=rng)
    model = PlattCalibrator(base, random_state=rng)
    model.fit(features[train_idx], labels[train_idx])

    pool_features = features[pool_idx]
    scores = model.decision_function(pool_features)
    scores_calibrated = model.predict_proba(pool_features)
    predictions = threshold_match(scores, 0.0)
    true_labels = labels[pool_idx].astype(np.int8)
    return BenchmarkPool(
        name=name,
        scores=scores,
        scores_calibrated=scores_calibrated,
        predictions=predictions,
        true_labels=true_labels,
        pairs=None,
        features=pool_features,
        performance=pool_performance(true_labels, predictions),
    )


def dataset_summary(pool: BenchmarkPool) -> dict:
    """The Table 1 / Table 2 row for a benchmark pool."""
    perf = pool.performance
    return {
        "dataset": pool.name,
        "size": len(pool),
        "imbalance_ratio": round(pool.imbalance_ratio, 2),
        "n_matches": pool.n_matches,
        "precision": round(perf["precision"], 3),
        "recall": round(perf["recall"], 3),
        "f_measure": round(perf["f_measure"], 3),
    }
