"""Vocabulary-driven entity generators.

Each generator fabricates *entities* (the latent objects records refer
to) with seeded randomness: products with brand/model/title/price,
academic papers with authors/title/venue/year, restaurant listings with
name/address/city/cuisine/phone.  Generators emit plain dicts; the
dataset modules render them into noisy :class:`~repro.pipeline.Record`
objects per source.
"""

from __future__ import annotations

from repro.utils import ensure_rng

__all__ = [
    "ProductEntityGenerator",
    "PaperEntityGenerator",
    "RestaurantEntityGenerator",
]

_BRANDS = [
    "acme", "zenith", "polar", "vertex", "nimbus", "quasar", "stellar",
    "orion", "fluxon", "kinetic", "aurora", "pinnacle", "cascade", "ember",
    "granite", "halcyon", "iris", "jade", "krypton", "lumen",
]
_PRODUCT_NOUNS = [
    "speaker", "headphones", "monitor", "keyboard", "camera", "printer",
    "router", "charger", "tablet", "projector", "microphone", "scanner",
    "turntable", "subwoofer", "receiver", "adapter", "enclosure", "dock",
]
_PRODUCT_ADJECTIVES = [
    "wireless", "portable", "compact", "digital", "professional",
    "ergonomic", "premium", "ultra", "smart", "rugged", "slim", "gaming",
]
_DESCRIPTION_FILLER = [
    "high performance", "easy setup", "long battery life", "low latency",
    "studio quality", "energy efficient", "plug and play", "award winning",
    "heavy duty", "limited edition", "sleek design", "crystal clear sound",
    "fast shipping", "two year warranty", "usb connectivity", "bluetooth",
    "noise cancelling", "anti glare", "high resolution", "surround sound",
]

_FIRST_NAMES = [
    "alice", "bruno", "carla", "deepak", "elena", "felix", "grace",
    "hiro", "ines", "jonas", "keiko", "liam", "mira", "nadia", "oscar",
    "priya", "quentin", "rosa", "stefan", "tanya", "umar", "vera",
    "wei", "xenia", "yusuf", "zoe",
]
_LAST_NAMES = [
    "anderson", "baptiste", "chen", "dimitrov", "eriksen", "fernandez",
    "gupta", "hansen", "ivanov", "jensen", "kowalski", "larsen", "moreau",
    "nakamura", "okafor", "petrov", "quinn", "rossi", "schmidt", "tanaka",
    "ullman", "vasquez", "weber", "xu", "yamamoto", "zhang",
]
_TITLE_TOPICS = [
    "entity resolution", "record linkage", "importance sampling",
    "query optimisation", "stream processing", "crowdsourcing",
    "active learning", "data cleaning", "schema matching", "indexing",
    "approximate inference", "transaction processing", "graph mining",
    "federated search", "provenance tracking", "duplicate detection",
]
_TITLE_PATTERNS = [
    "efficient {topic} for large scale systems",
    "a survey of {topic} techniques",
    "scalable {topic} with probabilistic guarantees",
    "on the complexity of {topic}",
    "adaptive {topic} in distributed databases",
    "towards practical {topic}",
    "learning based {topic} revisited",
    "{topic} under resource constraints",
]
_VENUES = [
    ("very large data bases", "vldb"),
    ("international conference on management of data", "sigmod"),
    ("international conference on data engineering", "icde"),
    ("conference on information and knowledge management", "cikm"),
    ("knowledge discovery and data mining", "kdd"),
    ("extending database technology", "edbt"),
]

_RESTAURANT_STYLES = [
    "bistro", "grill", "kitchen", "cafe", "diner", "trattoria", "cantina",
    "brasserie", "tavern", "eatery", "house", "garden",
]
_RESTAURANT_NAMES = [
    "golden", "blue", "silver", "rustic", "urban", "coastal", "royal",
    "little", "grand", "old town", "corner", "harbour", "sunset",
    "lakeside", "midnight", "emerald", "copper", "ivory",
]
_CUISINES = [
    "italian", "french", "japanese", "mexican", "indian", "thai",
    "mediterranean", "american", "chinese", "spanish", "korean", "greek",
]
_STREETS = [
    "main", "oak", "maple", "cedar", "elm", "park", "lake", "hill",
    "river", "church", "market", "bridge", "station", "garden", "mill",
]
_CITIES = [
    "springfield", "riverton", "lakeview", "fairmont", "brookside",
    "hillcrest", "westfield", "eastport", "northgate", "southbank",
]


class ProductEntityGenerator:
    """Fabricates e-commerce product entities.

    Each entity has a brand, model code, short name, long description
    and price — the field mix of the Abt-Buy / Amazon-GoogleProducts
    schemas (short text, long text, numeric).

    Parameters
    ----------
    variant_prob:
        Probability that a new entity is a *variant* of an earlier one:
        same brand/series name with a different model code and nearby
        price.  Variants are distinct entities whose records look very
        similar — the hard negatives that give real product-matching
        datasets (Amazon-GoogleProducts especially) their low
        precision.
    """

    def __init__(self, random_state=None, *, variant_prob: float = 0.0):
        if not 0.0 <= variant_prob < 1.0:
            raise ValueError(f"variant_prob must be in [0, 1); got {variant_prob}")
        self._rng = ensure_rng(random_state)
        self.variant_prob = variant_prob

    def generate(self, n: int) -> list[dict]:
        entities = []
        for entity_id in range(n):
            rng = self._rng
            if entities and rng.random() < self.variant_prob:
                parent = entities[int(rng.integers(len(entities)))]
                entity = self._make_variant(entity_id, parent, rng)
            else:
                entity = self._make_fresh(entity_id, rng)
            entities.append(entity)
        return entities

    @staticmethod
    def _make_fresh(entity_id: int, rng) -> dict:
        brand = rng.choice(_BRANDS)
        adjective = rng.choice(_PRODUCT_ADJECTIVES)
        noun = rng.choice(_PRODUCT_NOUNS)
        model = f"{rng.choice(list('abcdefgh'))}{rng.integers(100, 9999)}"
        name = f"{brand} {adjective} {noun} {model}"
        n_filler = int(rng.integers(3, 7))
        filler = rng.choice(_DESCRIPTION_FILLER, size=n_filler, replace=False)
        description = f"{name} {' '.join(filler)}"
        price = round(float(rng.lognormal(4.0, 0.8)), 2)
        return {
            "entity_id": entity_id,
            "name": name,
            "description": description,
            "price": price,
        }

    @staticmethod
    def _make_variant(entity_id: int, parent: dict, rng) -> dict:
        """A sibling product: same series, new model code, nearby price."""
        tokens = parent["name"].split()
        model = f"{rng.choice(list('abcdefgh'))}{rng.integers(100, 9999)}"
        name = " ".join([*tokens[:-1], model])
        n_filler = int(rng.integers(3, 7))
        filler = rng.choice(_DESCRIPTION_FILLER, size=n_filler, replace=False)
        description = f"{name} {' '.join(filler)}"
        price = round(parent["price"] * float(rng.uniform(0.85, 1.15)), 2)
        return {
            "entity_id": entity_id,
            "name": name,
            "description": description,
            "price": price,
        }


class PaperEntityGenerator:
    """Fabricates bibliographic entities (papers) for citation datasets."""

    def __init__(self, random_state=None):
        self._rng = ensure_rng(random_state)

    def generate(self, n: int) -> list[dict]:
        entities = []
        for entity_id in range(n):
            rng = self._rng
            n_authors = int(rng.integers(1, 5))
            authors = []
            for __ in range(n_authors):
                first = rng.choice(_FIRST_NAMES)
                last = rng.choice(_LAST_NAMES)
                authors.append(f"{first} {last}")
            pattern = rng.choice(_TITLE_PATTERNS)
            title = pattern.format(topic=rng.choice(_TITLE_TOPICS))
            venue_full, venue_abbrev = _VENUES[int(rng.integers(len(_VENUES)))]
            year = int(rng.integers(1995, 2017))
            entities.append(
                {
                    "entity_id": entity_id,
                    "title": title,
                    "authors": ", ".join(authors),
                    "venue": venue_full,
                    "venue_abbrev": venue_abbrev,
                    "year": year,
                }
            )
        return entities


class RestaurantEntityGenerator:
    """Fabricates restaurant listings (name/address/city/cuisine/phone)."""

    def __init__(self, random_state=None):
        self._rng = ensure_rng(random_state)

    def generate(self, n: int) -> list[dict]:
        entities = []
        for entity_id in range(n):
            rng = self._rng
            name = (
                f"{rng.choice(_RESTAURANT_NAMES)} "
                f"{rng.choice(_CUISINES)} {rng.choice(_RESTAURANT_STYLES)}"
            )
            number = int(rng.integers(1, 999))
            address = f"{number} {rng.choice(_STREETS)} street"
            city = rng.choice(_CITIES)
            cuisine = rng.choice(_CUISINES)
            phone = f"{rng.integers(200, 999)} {rng.integers(200, 999)} {rng.integers(1000, 9999)}"
            entities.append(
                {
                    "entity_id": entity_id,
                    "name": name,
                    "address": address,
                    "city": city,
                    "cuisine": cuisine,
                    "phone": phone,
                }
            )
        return entities
