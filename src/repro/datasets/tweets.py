"""Balanced non-ER classification set (synthetic *tweets100k*).

The paper includes tweets100k (a balanced crowdsourced sentiment
dataset) purely as a control: with no class imbalance, all sampling
methods should perform about equally (section 6.3.1, "Balanced
classes").  We synthesise the equivalent directly in feature space —
a two-component Gaussian mixture with adjustable separation — since the
samplers only ever see (scores, predictions, labels).
"""

from __future__ import annotations

import numpy as np

from repro.utils import ensure_rng

__all__ = ["generate_tweets"]


def generate_tweets(
    n_items: int = 20_000,
    *,
    positive_fraction: float = 0.5,
    separation: float = 1.4,
    n_features: int = 4,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a balanced binary classification dataset.

    Parameters
    ----------
    n_items:
        Number of items (the paper's pool uses 20,000).
    positive_fraction:
        Fraction of positive items; 0.5 reproduces the balanced regime.
    separation:
        Distance between class means in units of the (unit) class
        standard deviation; ~1.4 yields accuracies near the paper's
        F of 0.77 for a linear classifier.
    n_features:
        Feature dimensionality.
    random_state:
        Seed or generator.

    Returns
    -------
    (features, labels):
        Feature matrix (n, d) and binary labels (n,).
    """
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError(
            f"positive_fraction must be in (0, 1); got {positive_fraction}"
        )
    rng = ensure_rng(random_state)
    n_pos = int(round(n_items * positive_fraction))
    n_neg = n_items - n_pos

    direction = rng.normal(size=n_features)
    direction /= np.linalg.norm(direction)
    offset = 0.5 * separation * direction

    features = np.vstack(
        [
            rng.normal(size=(n_pos, n_features)) + offset,
            rng.normal(size=(n_neg, n_features)) - offset,
        ]
    )
    labels = np.concatenate(
        [np.ones(n_pos, dtype=np.int8), np.zeros(n_neg, dtype=np.int8)]
    )
    order = rng.permutation(n_items)
    return features[order], labels[order]
