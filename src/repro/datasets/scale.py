"""Synthetic scale ladder: bounded-memory million-record pool generation.

The paper's regime is realistic database sizes; the ladder provides
seeded two-source product pools at small/medium/large (and beyond)
record counts so the out-of-core pipeline can be benchmarked as a
*trajectory* rather than a point.  The key property is statelessness:
every entity is derived from ``(seed, entity_id)`` alone, so generation
streams records straight into a
:class:`~repro.pipeline.storage.ChunkedRecordStore` writer without ever
holding an entity table in memory — the generator's resident cost is
one chunk buffer regardless of pool size.

Source A holds one clean record per entity; source B holds a corrupted
duplicate for ``duplicate_frac`` of A's entities (typos, token drops,
abbreviation, price noise via :mod:`repro.datasets.corruption`) plus
``distractor_frac`` records of B-only entities.  Ground truth is exact:
records match iff they share an ``entity_id``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.datasets.corruption import corrupt_string, perturb_number
from repro.datasets.entities import (
    _DESCRIPTION_FILLER,
    _PRODUCT_ADJECTIVES,
    _PRODUCT_NOUNS,
)
from repro.pipeline.records import BaseRecordStore, Record, RecordStore
from repro.pipeline.storage import ChunkedStoreWriter

__all__ = ["ScaleSpec", "DATASET_SPECS", "ScaleSources", "generate_scale_sources"]

_SCHEMA = ("name", "description", "price")
_B_RECORD_BASE = 1_000_000_000


@dataclass(frozen=True)
class ScaleSpec:
    """One rung of the scale ladder.

    Attributes
    ----------
    name:
        Rung identifier (``small``/``medium``/``large``/``xlarge``).
    n_entities:
        Entities in source A (one clean record each).
    duplicate_frac:
        Fraction of A's entities that also appear in B as a corrupted
        duplicate — these cross-source pairs are the true matches.
    distractor_frac:
        B-only entities, as a fraction of ``n_entities`` — the
        non-match bulk that gives the pool its class imbalance.
    typo_rate, drop_prob, abbreviation_prob, missing_prob, price_noise:
        Corruption severities applied to B's duplicate records (see
        :mod:`repro.datasets.corruption`).
    chunk_size:
        Default chunk size when the rung is generated into a
        :class:`~repro.pipeline.storage.ChunkedRecordStore`.
    """

    name: str
    n_entities: int
    duplicate_frac: float = 0.3
    distractor_frac: float = 0.7
    typo_rate: float = 0.02
    drop_prob: float = 0.05
    abbreviation_prob: float = 0.05
    missing_prob: float = 0.02
    price_noise: float = 0.05
    chunk_size: int = 8_192

    @property
    def n_records_a(self) -> int:
        return self.n_entities

    @property
    def n_records_b(self) -> int:
        return int(round(self.n_entities * self.duplicate_frac)) + int(
            round(self.n_entities * self.distractor_frac)
        )

    @property
    def n_records(self) -> int:
        """Total records across both sources."""
        return self.n_records_a + self.n_records_b

    @property
    def exact_pair_space(self) -> int:
        """Pairs the full A x B cross product would materialise."""
        return self.n_records_a * self.n_records_b


# The ladder.  ``small`` doubles as the parity rung where the exact
# token-blocking oracle still fits; ``large`` crosses the 1e5-record
# line where the eager cross product is unmaterialisable; ``xlarge``
# approaches the million-record regime for dedicated runs.
DATASET_SPECS: dict[str, ScaleSpec] = {
    "small": ScaleSpec(name="small", n_entities=2_500),
    "medium": ScaleSpec(name="medium", n_entities=15_000),
    "large": ScaleSpec(name="large", n_entities=60_000),
    "xlarge": ScaleSpec(name="xlarge", n_entities=500_000, chunk_size=16_384),
}


# Syllable fabric for brand names.  A fixed 20-word brand list would
# make unrelated entities share name tokens at a rate that scales the
# candidate space quadratically; composing three of 80 syllables gives
# ~5e5 distinct brands, so accidental name similarity stays rare at
# every ladder rung while duplicates remain trivially similar.
_SYLLABLES = [c + v for c in "bcdfghklmnprstvz" for v in "aeiou"]


def _entity_fields(seed: int, entity_id: int) -> dict:
    """The clean rendition of one entity, derived statelessly.

    Seeding a fresh generator from ``(seed, entity_id)`` makes the
    fabric addressable: any record of any entity can be re-derived
    without an entity table, which is what lets both sources stream.
    """
    rng = np.random.default_rng([seed, entity_id])
    brand = "".join(rng.choice(_SYLLABLES, size=3))
    adjective = rng.choice(_PRODUCT_ADJECTIVES)
    noun = rng.choice(_PRODUCT_NOUNS)
    model = f"{rng.choice(list('abcdefgh'))}{rng.integers(100, 9999)}"
    name = f"{brand} {adjective} {noun} {model}"
    n_filler = int(rng.integers(3, 7))
    filler = rng.choice(_DESCRIPTION_FILLER, size=n_filler, replace=False)
    description = f"{name} {' '.join(filler)}"
    price = round(float(rng.lognormal(4.0, 0.8)), 2)
    return {"name": name, "description": description, "price": price}


def _is_duplicated(seed: int, entity_id: int, duplicate_frac: float) -> bool:
    """Whether entity ``entity_id`` gets a corrupted twin in source B."""
    rng = np.random.default_rng([seed, entity_id, 1])
    return bool(rng.random() < duplicate_frac)


def _corrupted_fields(spec: ScaleSpec, seed: int, entity_id: int) -> dict:
    """Source B's noisy rendition of an entity."""
    clean = _entity_fields(seed, entity_id)
    rng = np.random.default_rng([seed, entity_id, 2])
    return {
        "name": corrupt_string(
            clean["name"],
            rng,
            typo_rate=spec.typo_rate,
            abbreviation_prob=spec.abbreviation_prob,
            drop_prob=spec.drop_prob,
            missing_prob=spec.missing_prob,
        ),
        "description": corrupt_string(
            clean["description"],
            rng,
            typo_rate=spec.typo_rate,
            drop_prob=spec.drop_prob,
        ),
        "price": perturb_number(
            clean["price"],
            spec.price_noise,
            rng,
            missing_prob=spec.missing_prob,
        ),
    }


def _iter_records_a(spec: ScaleSpec, seed: int):
    for entity_id in range(spec.n_entities):
        yield Record(
            record_id=entity_id,
            entity_id=entity_id,
            fields=_entity_fields(seed, entity_id),
        )


def _iter_records_b(spec: ScaleSpec, seed: int):
    record_id = _B_RECORD_BASE
    emitted_duplicates = 0
    target_duplicates = int(round(spec.n_entities * spec.duplicate_frac))
    for entity_id in range(spec.n_entities):
        if emitted_duplicates >= target_duplicates:
            break
        if not _is_duplicated(seed, entity_id, spec.duplicate_frac):
            continue
        fields = {
            k: v
            for k, v in _corrupted_fields(spec, seed, entity_id).items()
            if v is not None
        }
        yield Record(record_id=record_id, entity_id=entity_id, fields=fields)
        record_id += 1
        emitted_duplicates += 1
    n_distractors = int(round(spec.n_entities * spec.distractor_frac))
    for offset in range(n_distractors):
        entity_id = spec.n_entities + offset
        yield Record(
            record_id=record_id,
            entity_id=entity_id,
            fields=_entity_fields(seed, entity_id),
        )
        record_id += 1


@dataclass
class ScaleSources:
    """A generated rung: the two sources plus its spec and seed."""

    spec: ScaleSpec
    seed: int
    store_a: BaseRecordStore
    store_b: BaseRecordStore

    def true_match_pairs(self) -> np.ndarray:
        """All (index_a, index_b) pairs sharing an entity, from compact
        entity-id arrays only (no record materialisation)."""
        ids_a = self.store_a.entity_ids()
        ids_b = self.store_b.entity_ids()
        # A has one record per entity with entity_id == index; B's
        # duplicates carry entity ids < len(A).  Positions in B whose
        # entity exists in A pair with exactly that A index.
        matched_b = np.flatnonzero(ids_b < len(ids_a))
        return np.column_stack([ids_b[matched_b], matched_b]).astype(np.int64)


def generate_scale_sources(
    spec: ScaleSpec | str,
    *,
    seed: int = 0,
    directory=None,
    chunk_size: int | None = None,
) -> ScaleSources:
    """Generate one ladder rung, streaming if a directory is given.

    Parameters
    ----------
    spec:
        A :class:`ScaleSpec` or a ``DATASET_SPECS`` key.
    seed:
        Master seed; the whole rung is a pure function of
        ``(spec, seed)``.
    directory:
        When given, records stream into two
        :class:`~repro.pipeline.storage.ChunkedRecordStore` directories
        (``<directory>/a`` and ``<directory>/b``) through a bounded
        chunk buffer; when None, plain in-memory stores are built (the
        small-pool fast path).
    chunk_size:
        Chunk size override for the on-disk layout.
    """
    if isinstance(spec, str):
        try:
            spec = DATASET_SPECS[spec]
        except KeyError:
            raise KeyError(
                f"unknown scale spec {spec!r}; choose from "
                f"{sorted(DATASET_SPECS)}"
            ) from None
    if chunk_size is not None:
        spec = replace(spec, chunk_size=int(chunk_size))

    if directory is None:
        store_a = RecordStore(_SCHEMA, name=f"{spec.name}-a")
        for record in _iter_records_a(spec, seed):
            store_a.add(record)
        store_b = RecordStore(_SCHEMA, name=f"{spec.name}-b")
        for record in _iter_records_b(spec, seed):
            store_b.add(record)
        return ScaleSources(spec=spec, seed=seed, store_a=store_a, store_b=store_b)

    directory = Path(directory)
    writer_a = ChunkedStoreWriter(
        directory / "a", _SCHEMA, name=f"{spec.name}-a", chunk_size=spec.chunk_size
    )
    writer_a.extend(_iter_records_a(spec, seed))
    store_a = writer_a.close()
    writer_b = ChunkedStoreWriter(
        directory / "b", _SCHEMA, name=f"{spec.name}-b", chunk_size=spec.chunk_size
    )
    writer_b.extend(_iter_records_b(spec, seed))
    store_b = writer_b.close()
    return ScaleSources(spec=spec, seed=seed, store_a=store_a, store_b=store_b)
