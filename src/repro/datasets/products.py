"""Two-store e-commerce dataset generator.

Stands in for the paper's Abt-Buy and Amazon-GoogleProducts datasets:
two product catalogues describing an overlapping set of entities with
store-specific noise.  Schema: ``name`` (short text), ``description``
(long text), ``price`` (numeric).
"""

from __future__ import annotations

from repro.datasets.corruption import corrupt_string, perturb_number
from repro.datasets.entities import ProductEntityGenerator
from repro.pipeline.records import Record, RecordStore
from repro.utils import ensure_rng

__all__ = ["generate_product_pair", "PRODUCT_SCHEMA"]

PRODUCT_SCHEMA = ("name", "description", "price")


def _render_product(record_id: int, entity: dict, rng, noise: dict) -> Record:
    """Render one noisy record of a product entity."""
    name = corrupt_string(
        entity["name"],
        rng,
        typo_rate=noise["typo_rate"],
        drop_prob=noise["drop_prob"],
    )
    description = corrupt_string(
        entity["description"],
        rng,
        typo_rate=noise["typo_rate"] / 2,
        drop_prob=noise["drop_prob"],
        missing_prob=noise["missing_prob"],
    )
    price = perturb_number(
        entity["price"],
        noise["price_noise"],
        rng,
        missing_prob=noise["missing_prob"],
    )
    return Record(
        record_id=record_id,
        entity_id=entity["entity_id"],
        fields={"name": name, "description": description, "price": price},
    )


def generate_product_pair(
    n_entities: int = 300,
    overlap: float = 0.5,
    *,
    noise_level: float = 1.0,
    variant_prob: float = 0.0,
    random_state=None,
) -> tuple[RecordStore, RecordStore]:
    """Generate two product catalogues with partially shared entities.

    Parameters
    ----------
    n_entities:
        Number of distinct products in the shared universe.
    overlap:
        Fraction of the universe listed by *both* stores; the rest is
        split between them, so matches exist only for the overlap.
    noise_level:
        Scales every corruption severity; 1.0 is moderately dirty
        (Abt-Buy-like), higher is dirtier (Amazon-Google-like).
    variant_prob:
        Fraction of entities that are near-identical variants of other
        entities (hard negatives); see
        :class:`~repro.datasets.entities.ProductEntityGenerator`.
    random_state:
        Seed or generator.

    Returns
    -------
    (store_a, store_b):
        Two :class:`RecordStore` objects sharing ``PRODUCT_SCHEMA``.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1]; got {overlap}")
    rng = ensure_rng(random_state)
    generator = ProductEntityGenerator(rng, variant_prob=variant_prob)
    entities = generator.generate(n_entities)

    noise = {
        "typo_rate": 0.015 * noise_level,
        "drop_prob": 0.05 * noise_level,
        "missing_prob": min(0.05 * noise_level, 0.5),
        "price_noise": 0.02 * noise_level,
    }

    n_shared = int(round(overlap * n_entities))
    order = rng.permutation(n_entities)
    shared = order[:n_shared]
    leftover = order[n_shared:]
    half = len(leftover) // 2
    only_a = leftover[:half]
    only_b = leftover[half:]

    store_a = RecordStore(PRODUCT_SCHEMA, name="store_a")
    store_b = RecordStore(PRODUCT_SCHEMA, name="store_b")
    record_id = 0
    for entity_index in sorted([*shared, *only_a]):
        store_a.add(_render_product(record_id, entities[entity_index], rng, noise))
        record_id += 1
    for entity_index in sorted([*shared, *only_b]):
        store_b.add(_render_product(record_id, entities[entity_index], rng, noise))
        record_id += 1
    return store_a, store_b
