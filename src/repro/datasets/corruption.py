"""Record-noise model: how two descriptions of one entity diverge.

Matched records across sources differ by typos, abbreviation, token
drops and numeric perturbation.  These functions implement that noise;
the generators compose them with configurable severity so each
synthetic dataset can mimic how "clean" or "dirty" its real counterpart
is (e.g. cora citations are far noisier than DBLP-ACM).
"""

from __future__ import annotations

import string

from repro.utils import ensure_rng

__all__ = [
    "typo_string",
    "abbreviate_tokens",
    "drop_tokens",
    "perturb_number",
    "corrupt_string",
]

_ALPHABET = string.ascii_lowercase


def typo_string(text: str, n_typos: int, rng) -> str:
    """Apply ``n_typos`` random character edits to ``text``.

    Edit types: substitute, insert, delete, transpose — the classic
    keyboard/OCR error model.
    """
    rng = ensure_rng(rng)
    chars = list(text)
    for __ in range(n_typos):
        if not chars:
            chars = [rng.choice(list(_ALPHABET))]
            continue
        op = rng.integers(4)
        pos = int(rng.integers(len(chars)))
        if op == 0:  # substitute
            chars[pos] = rng.choice(list(_ALPHABET))
        elif op == 1:  # insert
            chars.insert(pos, rng.choice(list(_ALPHABET)))
        elif op == 2:  # delete
            del chars[pos]
        elif len(chars) >= 2:  # transpose
            other = min(pos + 1, len(chars) - 1)
            chars[pos], chars[other] = chars[other], chars[pos]
    return "".join(chars)


def abbreviate_tokens(text: str, prob: float, rng) -> str:
    """Abbreviate each token to its first letter with probability ``prob``.

    Models 'John' -> 'J', 'Street' -> 'S' style abbreviation common in
    citations and address data.
    """
    rng = ensure_rng(rng)
    tokens = text.split()
    out = []
    for token in tokens:
        if len(token) > 1 and rng.random() < prob:
            out.append(token[0])
        else:
            out.append(token)
    return " ".join(out)


def drop_tokens(text: str, prob: float, rng) -> str:
    """Drop each token independently with probability ``prob``.

    At least one token is always kept so the field stays non-empty.
    """
    rng = ensure_rng(rng)
    tokens = text.split()
    if not tokens:
        return text
    kept = [token for token in tokens if rng.random() >= prob]
    if not kept:
        kept = [tokens[int(rng.integers(len(tokens)))]]
    return " ".join(kept)


def perturb_number(value: float, relative_noise: float, rng, *, missing_prob: float = 0.0):
    """Multiplicative noise on a numeric field; optionally go missing.

    Returns ``None`` with probability ``missing_prob`` (a missing
    value), otherwise ``value * (1 + eps)`` with Gaussian ``eps``.
    """
    rng = ensure_rng(rng)
    if missing_prob > 0 and rng.random() < missing_prob:
        return None
    return float(value) * (1.0 + rng.normal(0.0, relative_noise))


def corrupt_string(
    text: str,
    rng,
    *,
    typo_rate: float = 0.02,
    abbreviation_prob: float = 0.0,
    drop_prob: float = 0.0,
    missing_prob: float = 0.0,
):
    """Compose the string corruptions with one severity knob each.

    ``typo_rate`` is expected typos per character (Poisson).  Returns
    ``None`` (missing) with probability ``missing_prob``.
    """
    rng = ensure_rng(rng)
    if missing_prob > 0 and rng.random() < missing_prob:
        return None
    out = text
    if drop_prob > 0:
        out = drop_tokens(out, drop_prob, rng)
    if abbreviation_prob > 0:
        out = abbreviate_tokens(out, abbreviation_prob, rng)
    if typo_rate > 0:
        n_typos = int(rng.poisson(typo_rate * max(len(out), 1)))
        if n_typos:
            out = typo_string(out, n_typos, rng)
    return out
