"""Two-guidebook restaurant listings generator (synthetic *restaurant*).

The paper's restaurant dataset pairs listings from two guidebooks; the
characteristic noise is address abbreviation ('street' vs 'st'), phone
format drift and cuisine-label disagreement.
"""

from __future__ import annotations

from repro.datasets.corruption import corrupt_string
from repro.datasets.entities import RestaurantEntityGenerator
from repro.pipeline.records import Record, RecordStore
from repro.utils import ensure_rng

__all__ = ["generate_restaurant_pair", "RESTAURANT_SCHEMA"]

RESTAURANT_SCHEMA = ("name", "address", "city", "cuisine", "phone")

_ADDRESS_ABBREV = {"street": "st", "avenue": "ave", "road": "rd"}


def _abbreviate_address(address: str, rng) -> str:
    tokens = address.split()
    out = []
    for token in tokens:
        if token in _ADDRESS_ABBREV and rng.random() < 0.7:
            out.append(_ADDRESS_ABBREV[token])
        else:
            out.append(token)
    return " ".join(out)


def _render_restaurant(record_id: int, entity: dict, rng, noise: dict, abbreviate: bool) -> Record:
    name = corrupt_string(entity["name"], rng, typo_rate=noise["typo_rate"])
    address = entity["address"]
    if abbreviate:
        address = _abbreviate_address(address, rng)
    address = corrupt_string(address, rng, typo_rate=noise["typo_rate"])
    city = corrupt_string(entity["city"], rng, typo_rate=noise["typo_rate"] / 2)
    cuisine = entity["cuisine"]
    if rng.random() < noise["cuisine_flip_prob"]:
        cuisine = None  # the guides often disagree; model as missing
    phone = entity["phone"]
    if abbreviate and rng.random() < 0.5:
        phone = phone.replace(" ", "-")
    phone = corrupt_string(phone, rng, typo_rate=noise["typo_rate"] / 3)
    return Record(
        record_id=record_id,
        entity_id=entity["entity_id"],
        fields={
            "name": name,
            "address": address,
            "city": city,
            "cuisine": cuisine,
            "phone": phone,
        },
    )


def generate_restaurant_pair(
    n_entities: int = 250,
    overlap: float = 0.3,
    *,
    noise_level: float = 1.0,
    random_state=None,
) -> tuple[RecordStore, RecordStore]:
    """Two restaurant guidebooks over a shared set of establishments.

    Guide B abbreviates addresses and reformats phone numbers, so the
    same restaurant reads differently across sources.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1]; got {overlap}")
    rng = ensure_rng(random_state)
    entities = RestaurantEntityGenerator(rng).generate(n_entities)

    noise = {
        "typo_rate": 0.01 * noise_level,
        "cuisine_flip_prob": min(0.2 * noise_level, 0.9),
    }

    n_shared = int(round(overlap * n_entities))
    order = rng.permutation(n_entities)
    shared = order[:n_shared]
    leftover = order[n_shared:]
    half = len(leftover) // 2

    store_a = RecordStore(RESTAURANT_SCHEMA, name="guide_a")
    store_b = RecordStore(RESTAURANT_SCHEMA, name="guide_b")
    record_id = 0
    for entity_index in sorted([*shared, *leftover[:half]]):
        store_a.add(_render_restaurant(record_id, entities[entity_index], rng, noise, False))
        record_id += 1
    for entity_index in sorted([*shared, *leftover[half:]]):
        store_b.add(_render_restaurant(record_id, entities[entity_index], rng, noise, True))
        record_id += 1
    return store_a, store_b
