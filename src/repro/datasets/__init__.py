"""Synthetic dataset generators standing in for the paper's datasets.

The paper evaluates on six public datasets (Table 1).  Offline, we
generate seeded synthetic equivalents that preserve the properties the
samplers are sensitive to: class-imbalance ratio, pool size regime,
score-distribution shape and ground-truth availability.  See DESIGN.md
section 4 for the substitution rationale.
"""

from repro.datasets.benchmark import (
    BENCHMARK_NAMES,
    BenchmarkPool,
    dataset_summary,
    load_benchmark,
)
from repro.datasets.citations import generate_citation_dedup, generate_citation_pair
from repro.datasets.corruption import (
    abbreviate_tokens,
    corrupt_string,
    drop_tokens,
    perturb_number,
    typo_string,
)
from repro.datasets.entities import (
    PaperEntityGenerator,
    ProductEntityGenerator,
    RestaurantEntityGenerator,
)
from repro.datasets.products import generate_product_pair
from repro.datasets.scale import (
    DATASET_SPECS,
    ScaleSources,
    ScaleSpec,
    generate_scale_sources,
)
from repro.datasets.restaurants import generate_restaurant_pair
from repro.datasets.tweets import generate_tweets

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkPool",
    "dataset_summary",
    "load_benchmark",
    "generate_citation_dedup",
    "generate_citation_pair",
    "abbreviate_tokens",
    "corrupt_string",
    "drop_tokens",
    "perturb_number",
    "typo_string",
    "PaperEntityGenerator",
    "ProductEntityGenerator",
    "RestaurantEntityGenerator",
    "generate_product_pair",
    "generate_restaurant_pair",
    "generate_tweets",
    "DATASET_SPECS",
    "ScaleSources",
    "ScaleSpec",
    "generate_scale_sources",
]
