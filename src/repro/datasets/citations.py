"""Bibliographic dataset generators.

Two flavours mirror the paper's citation datasets:

* :func:`generate_citation_pair` — two bibliography sources listing an
  overlapping set of papers (synthetic **DBLP-ACM**): relatively clean
  records, venue names differing by full-name vs abbreviation.
* :func:`generate_citation_dedup` — one source with duplicate clusters
  per paper (synthetic **cora**): much dirtier records, author
  abbreviation, token drops, and several duplicates per entity, so the
  class imbalance is mild (paper Table 1: cora's ratio is only ~48).
"""

from __future__ import annotations

from repro.datasets.corruption import corrupt_string, perturb_number
from repro.datasets.entities import PaperEntityGenerator
from repro.pipeline.records import Record, RecordStore
from repro.utils import ensure_rng

__all__ = ["generate_citation_pair", "generate_citation_dedup", "CITATION_SCHEMA"]

CITATION_SCHEMA = ("title", "authors", "venue", "year")


def _render_citation(
    record_id: int,
    entity: dict,
    rng,
    *,
    typo_rate: float,
    author_abbrev_prob: float,
    drop_prob: float,
    use_abbrev_venue: bool,
    year_noise_prob: float,
) -> Record:
    title = corrupt_string(entity["title"], rng, typo_rate=typo_rate, drop_prob=drop_prob)
    authors = corrupt_string(
        entity["authors"],
        rng,
        typo_rate=typo_rate / 2,
        abbreviation_prob=author_abbrev_prob,
    )
    venue = entity["venue_abbrev"] if use_abbrev_venue else entity["venue"]
    venue = corrupt_string(venue, rng, typo_rate=typo_rate / 2)
    year = entity["year"]
    if rng.random() < year_noise_prob:
        year = perturb_number(year, 0.0, rng, missing_prob=0.5)
        if year is not None:
            year = int(year) + int(rng.integers(-1, 2))
    return Record(
        record_id=record_id,
        entity_id=entity["entity_id"],
        fields={"title": title, "authors": authors, "venue": venue, "year": year},
    )


def generate_citation_pair(
    n_entities: int = 400,
    overlap: float = 0.6,
    *,
    noise_level: float = 0.6,
    random_state=None,
) -> tuple[RecordStore, RecordStore]:
    """Two bibliography sources over a shared paper universe (DBLP-ACM-like).

    Source A lists venues by full name, source B by abbreviation —
    the systematic discrepancy that makes venue matching non-trivial.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1]; got {overlap}")
    rng = ensure_rng(random_state)
    entities = PaperEntityGenerator(rng).generate(n_entities)

    n_shared = int(round(overlap * n_entities))
    order = rng.permutation(n_entities)
    shared = order[:n_shared]
    leftover = order[n_shared:]
    half = len(leftover) // 2

    common = dict(
        typo_rate=0.008 * noise_level,
        author_abbrev_prob=0.15 * noise_level,
        drop_prob=0.02 * noise_level,
        year_noise_prob=0.05 * noise_level,
    )

    store_a = RecordStore(CITATION_SCHEMA, name="dblp_like")
    store_b = RecordStore(CITATION_SCHEMA, name="acm_like")
    record_id = 0
    for entity_index in sorted([*shared, *leftover[:half]]):
        store_a.add(
            _render_citation(
                record_id, entities[entity_index], rng,
                use_abbrev_venue=False, **common,
            )
        )
        record_id += 1
    for entity_index in sorted([*shared, *leftover[half:]]):
        store_b.add(
            _render_citation(
                record_id, entities[entity_index], rng,
                use_abbrev_venue=True, **common,
            )
        )
        record_id += 1
    return store_a, store_b


def generate_citation_dedup(
    n_entities: int = 120,
    *,
    mean_duplicates: float = 3.0,
    noise_level: float = 1.5,
    random_state=None,
) -> RecordStore:
    """A single dirty bibliography with duplicate clusters (cora-like).

    Each paper appears ``1 + Poisson(mean_duplicates - 1)`` times with
    heavy corruption.  Casting deduplication as ER of the store with
    itself (pairs i < j) yields the mildly-imbalanced regime of cora.
    """
    if mean_duplicates < 1.0:
        raise ValueError(f"mean_duplicates must be >= 1; got {mean_duplicates}")
    rng = ensure_rng(random_state)
    entities = PaperEntityGenerator(rng).generate(n_entities)

    store = RecordStore(CITATION_SCHEMA, name="cora_like")
    record_id = 0
    for entity in entities:
        n_copies = 1 + int(rng.poisson(mean_duplicates - 1.0))
        for __ in range(n_copies):
            store.add(
                _render_citation(
                    record_id,
                    entity,
                    rng,
                    typo_rate=0.01 * noise_level,
                    author_abbrev_prob=0.25 * noise_level,
                    drop_prob=0.05 * noise_level,
                    use_abbrev_venue=bool(rng.random() < 0.5),
                    year_noise_prob=0.1 * noise_level,
                )
            )
            record_id += 1
    return store
