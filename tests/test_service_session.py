"""EvaluationSession: protocol semantics, bit-identity, WAL restore.

The acceptance bar (ISSUE 4): the propose/ingest path produces
estimates bit-identical to the oracle-driven ``sample()`` loop at the
same seed, and a kill+restore anywhere mid-session reproduces the
uninterrupted trajectory exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.specs import SAMPLER_KINDS
from repro.oracle import DeterministicOracle
from repro.service import (
    EvaluationSession,
    SessionConflictError,
    SessionNotFoundError,
)

N_ITEMS = 400

KIND_KWARGS = {
    "oasis": {"n_strata": 8},
    "passive": {},
    "stratified": {"n_strata": 6},
    "importance": {},
    "oss": {"n_strata": 6},
}


def make_pool(seed=0, n=N_ITEMS):
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.1).astype(np.int8)
    scores = rng.normal(size=n) + 2.5 * labels
    predictions = (scores > 0.5).astype(np.int8)
    return predictions, scores, labels


def drive(session, labels, batch_sizes):
    """Answer every proposal from ground truth, like a perfect labeller."""
    for batch in batch_sizes:
        proposal = session.propose(batch)
        answers = [int(labels[i]) for i in proposal["pending"]]
        session.ingest(proposal["ticket"], answers)
    return session


def reference(kind, predictions, scores, labels, seed, batch_sizes):
    sampler = SAMPLER_KINDS[kind](
        predictions, scores, DeterministicOracle(labels),
        random_state=seed, **KIND_KWARGS[kind],
    )
    for batch in batch_sizes:
        sampler.sample_batch(batch)
    return sampler


def assert_same_trajectory(session, sampler):
    np.testing.assert_array_equal(
        np.asarray(session.sampler.history), np.asarray(sampler.history))
    assert session.sampler.budget_history == sampler.budget_history
    assert session.sampler.sampled_indices == sampler.sampled_indices
    assert (session.sampler.rng.bit_generator.state
            == sampler.rng.bit_generator.state)


class TestBitIdentity:
    @pytest.mark.parametrize("kind", sorted(KIND_KWARGS))
    def test_matches_oracle_driven_loop(self, kind):
        predictions, scores, labels = make_pool()
        batches = [1, 5, 16, 1, 32, 8]
        session = EvaluationSession.create(
            predictions, scores, sampler=kind,
            sampler_kwargs=KIND_KWARGS[kind], seed=7)
        drive(session, labels, batches)
        assert_same_trajectory(
            session, reference(kind, predictions, scores, labels, 7, batches))

    def test_matches_sequential_sample_loop(self):
        """batch_size=1 sessions replicate the paper's sequential protocol."""
        predictions, scores, labels = make_pool()
        session = EvaluationSession.create(
            predictions, scores, sampler="oasis",
            sampler_kwargs={"n_strata": 8}, seed=3)
        drive(session, labels, [1] * 60)
        sampler = SAMPLER_KINDS["oasis"](
            predictions, scores, DeterministicOracle(labels),
            random_state=3, n_strata=8)
        sampler.sample(60)  # the sequential _step() path
        assert_same_trajectory(session, sampler)

    def test_labels_as_mapping(self):
        predictions, scores, labels = make_pool()
        session = EvaluationSession.create(predictions, scores, seed=1,
                                           sampler_kwargs={"n_strata": 8})
        proposal = session.propose(10)
        mapping = {int(i): int(labels[i]) for i in proposal["pending"]}
        session.ingest(proposal["ticket"], mapping)
        sampler = SAMPLER_KINDS["oasis"](
            predictions, scores, DeterministicOracle(labels),
            random_state=1, n_strata=8)
        sampler.sample_batch(10)
        assert_same_trajectory(session, sampler)

    def test_cached_redraws_need_no_labels(self):
        predictions, scores, labels = make_pool(n=10)  # tiny: cache fills fast
        session = EvaluationSession.create(predictions, scores,
                                           sampler="passive", seed=0)
        proposal = session.propose(30)
        session.ingest(proposal["ticket"],
                       [int(labels[i]) for i in proposal["pending"]])
        proposal = session.propose(30)
        # nearly everything is cached now; pending may be tiny or empty
        assert len(proposal["pending"]) <= 10
        result = session.ingest(
            proposal["ticket"], [int(labels[i]) for i in proposal["pending"]])
        assert result["draws"] == 60


class TestProtocol:
    def make_session(self, **kwargs):
        predictions, scores, labels = make_pool()
        session = EvaluationSession.create(
            predictions, scores, sampler_kwargs={"n_strata": 8}, **kwargs)
        return session, labels

    def test_double_propose_conflicts(self):
        session, labels = self.make_session()
        session.propose(5)
        with pytest.raises(SessionConflictError, match="outstanding"):
            session.propose(5)

    def test_ingest_without_propose_conflicts(self):
        session, __ = self.make_session()
        with pytest.raises(SessionConflictError, match="no outstanding"):
            session.ingest(1, [])

    def test_stale_ticket_conflicts(self):
        session, labels = self.make_session()
        proposal = session.propose(5)
        with pytest.raises(SessionConflictError, match="ticket"):
            session.ingest(proposal["ticket"] + 1, [])

    def test_wrong_label_count_rejected_without_losing_the_batch(self):
        session, labels = self.make_session()
        proposal = session.propose(5)
        with pytest.raises(ValueError, match="expected"):
            session.ingest(proposal["ticket"], [0])
        # proposal still outstanding and completable
        answers = [int(labels[i]) for i in proposal["pending"]]
        session.ingest(proposal["ticket"], answers)

    def test_non_binary_labels_rejected(self):
        session, labels = self.make_session()
        proposal = session.propose(5)
        bad = [2] * len(proposal["pending"])
        with pytest.raises(ValueError, match="0 or 1"):
            session.ingest(proposal["ticket"], bad)

    def test_mapping_with_missing_or_extra_pairs_rejected(self):
        session, labels = self.make_session()
        proposal = session.propose(8)
        pending = proposal["pending"]
        assert pending  # fresh session: every draw needs a label
        with pytest.raises(ValueError, match="missing"):
            session.ingest(proposal["ticket"],
                           {pending[0]: 1} if len(pending) > 1 else {})
        complete = {int(i): int(labels[i]) for i in pending}
        complete[N_ITEMS + 5] = 1  # never proposed
        with pytest.raises(ValueError, match="not proposed"):
            session.ingest(proposal["ticket"], complete)

    def test_closed_session_refuses_work(self):
        session, __ = self.make_session()
        session.close()
        with pytest.raises(SessionConflictError, match="closed"):
            session.propose(1)

    def test_unknown_sampler_kind(self):
        predictions, scores, __ = make_pool()
        with pytest.raises(ValueError, match="unknown sampler kind"):
            EvaluationSession.create(predictions, scores, sampler="bogus")

    def test_status_reports_outstanding(self):
        session, __ = self.make_session()
        proposal = session.propose(4)
        status = session.status()
        assert status["outstanding"]["ticket"] == proposal["ticket"]
        assert status["outstanding"]["pending"] == proposal["pending"]

    def test_oracle_queries_are_blocked(self):
        session, __ = self.make_session()
        with pytest.raises(RuntimeError, match="ingest"):
            session.sampler.oracle.label(0)


class TestRestore:
    def run_restored(self, tmp_path, labels, kill_after, batches, *,
                     checkpoint_every=None):
        """Drive batches, simulating a kill (re-restore) after each of
        ``kill_after`` completed batches."""
        predictions, scores, __ = make_pool(3)
        session = EvaluationSession.create(
            predictions, scores, sampler="oasis",
            sampler_kwargs={"n_strata": 8}, seed=11,
            directory=tmp_path / "session")
        for position, batch in enumerate(batches):
            if position in kill_after:
                session = EvaluationSession.restore(tmp_path / "session")
            proposal = session.propose(batch)
            answers = [int(labels[i]) for i in proposal["pending"]]
            session.ingest(proposal["ticket"], answers)
            if checkpoint_every and (position + 1) % checkpoint_every == 0:
                session.checkpoint()
        return session

    def test_restore_between_batches_bit_identical(self, tmp_path):
        predictions, scores, labels = make_pool(3)
        batches = [4, 9, 1, 16, 2]
        session = self.run_restored(tmp_path, labels, {1, 3}, batches)
        assert_same_trajectory(
            session,
            reference("oasis", predictions, scores, labels, 11, batches))

    def test_restore_with_checkpoints_bit_identical(self, tmp_path):
        predictions, scores, labels = make_pool(3)
        batches = [4, 9, 1, 16, 2, 7]
        session = self.run_restored(tmp_path, labels, {2, 5}, batches,
                                    checkpoint_every=2)
        assert_same_trajectory(
            session,
            reference("oasis", predictions, scores, labels, 11, batches))

    def test_kill_mid_batch_restores_outstanding_proposal(self, tmp_path):
        predictions, scores, labels = make_pool(3)
        session = EvaluationSession.create(
            predictions, scores, sampler="oasis",
            sampler_kwargs={"n_strata": 8}, seed=11,
            directory=tmp_path / "session")
        first = session.propose(12)
        session.ingest(first["ticket"], [int(labels[i]) for i in first["pending"]])
        outstanding = session.propose(20)
        del session  # killed with a proposal in flight

        restored = EvaluationSession.restore(tmp_path / "session")
        status = restored.status()
        assert status["outstanding"]["ticket"] == outstanding["ticket"]
        assert status["outstanding"]["pending"] == outstanding["pending"]
        restored.ingest(outstanding["ticket"],
                        [int(labels[i]) for i in outstanding["pending"]])
        assert_same_trajectory(
            restored,
            reference("oasis", predictions, scores, labels, 11, [12, 20]))

    def test_checkpoint_mid_batch_restores_mid_batch(self, tmp_path):
        predictions, scores, labels = make_pool(3)
        session = EvaluationSession.create(
            predictions, scores, sampler="oasis",
            sampler_kwargs={"n_strata": 8}, seed=11,
            directory=tmp_path / "session")
        outstanding = session.propose(15)
        session.checkpoint()
        restored = EvaluationSession.restore(tmp_path / "session")
        restored.ingest(outstanding["ticket"],
                        [int(labels[i]) for i in outstanding["pending"]])
        assert_same_trajectory(
            restored,
            reference("oasis", predictions, scores, labels, 11, [15]))

    def test_restore_missing_directory(self, tmp_path):
        with pytest.raises(SessionNotFoundError):
            EvaluationSession.restore(tmp_path / "nothing-here")

    def test_memory_only_session_cannot_checkpoint(self):
        predictions, scores, __ = make_pool()
        session = EvaluationSession.create(predictions, scores, seed=0,
                                           sampler_kwargs={"n_strata": 8})
        with pytest.raises(ValueError, match="memory-only"):
            session.checkpoint()


@settings(max_examples=15, deadline=None)
@given(
    kind=st.sampled_from(sorted(KIND_KWARGS)),
    seed=st.integers(0, 2**16),
    batches=st.lists(st.integers(1, 20), min_size=2, max_size=6),
    data=st.data(),
)
def test_kill_restore_property(tmp_path_factory, kind, seed, batches, data):
    """Hypothesis: a kill after any completed batch restores exactly."""
    kill_at = data.draw(st.integers(1, len(batches) - 1))
    tmp = tmp_path_factory.mktemp("wal")
    predictions, scores, labels = make_pool(1, n=150)
    session = EvaluationSession.create(
        predictions, scores, sampler=kind, sampler_kwargs=KIND_KWARGS[kind],
        seed=seed, directory=tmp / "session")
    for position, batch in enumerate(batches):
        if position == kill_at:
            session = EvaluationSession.restore(tmp / "session")
        proposal = session.propose(batch)
        session.ingest(proposal["ticket"],
                       [int(labels[i]) for i in proposal["pending"]])

    sampler = SAMPLER_KINDS[kind](
        predictions, scores, DeterministicOracle(labels),
        random_state=seed, **KIND_KWARGS[kind])
    for batch in batches:
        sampler.sample_batch(batch)
    assert_same_trajectory(session, sampler)
