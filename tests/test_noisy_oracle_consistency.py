"""Consistency under randomised oracles (the theory's full setting).

The paper's theorems cover any randomised oracle with probabilities
p(1|z); the experiments only exercise the deterministic case.  These
tests verify the general claim: the estimate converges to the
*population* F-measure defined against the oracle's distribution,

    F = sum_i p(1|z_i) lhat_i / (alpha sum_i lhat_i
                                 + (1-alpha) sum_i p(1|z_i)),

not against any single realisation of labels.
"""

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.oracle import NoisyOracle
from repro.samplers import PassiveSampler


def noisy_target_f(oracle_probs, predictions, alpha=0.5):
    """The population F-measure against the oracle distribution."""
    oracle_probs = np.asarray(oracle_probs, dtype=float)
    predictions = np.asarray(predictions, dtype=float)
    tp = float(np.sum(oracle_probs * predictions))
    denominator = alpha * float(predictions.sum()) + (1 - alpha) * float(
        oracle_probs.sum()
    )
    return tp / denominator


@pytest.fixture
def noisy_setup(rng):
    n = 3000
    labels = np.zeros(n, dtype=np.int8)
    labels[rng.choice(n, size=120, replace=False)] = 1
    scores = labels * 2.5 + rng.normal(0, 1.0, size=n)
    predictions = (scores > 1.2).astype(np.int8)
    flip = 0.05
    oracle_probs = labels * (1 - flip) + (1 - labels) * flip
    return scores, predictions, labels, oracle_probs, flip


class TestNoisyConsistency:
    def test_target_differs_from_clean_f(self, noisy_setup):
        from repro.measures import f_measure

        __, predictions, labels, oracle_probs, __flip = noisy_setup
        clean = f_measure(labels, predictions)
        noisy = noisy_target_f(oracle_probs, predictions)
        # Under imbalance even 5% flip noise visibly moves the target
        # (false-positive flood); at 1:24 imbalance the shift is a few
        # points of F.
        assert abs(clean - noisy) > 0.02

    def test_oasis_converges_to_noisy_target(self, noisy_setup):
        scores, predictions, labels, oracle_probs, flip = noisy_setup
        target = noisy_target_f(oracle_probs, predictions)
        estimates = []
        for seed in range(6):
            oracle = NoisyOracle(
                true_labels=labels, flip_prob=flip, random_state=seed
            )
            sampler = OASISSampler(
                predictions, scores, oracle, random_state=seed
            )
            # Iterations, not budget: with a noisy oracle, repeated
            # draws of one pair would ideally be re-queried; our label
            # cache freezes the first answer, so run many iterations
            # and rely on the pool being large.
            sampler.sample(4000)
            estimates.append(sampler.estimate)
        assert float(np.mean(estimates)) == pytest.approx(target, abs=0.08)

    def test_passive_also_converges_to_noisy_target(self, noisy_setup):
        scores, predictions, labels, oracle_probs, flip = noisy_setup
        target = noisy_target_f(oracle_probs, predictions)
        estimates = []
        for seed in range(6):
            oracle = NoisyOracle(
                true_labels=labels, flip_prob=flip, random_state=seed
            )
            sampler = PassiveSampler(
                predictions, scores, oracle, random_state=seed
            )
            sampler.sample(2500)
            if not np.isnan(sampler.estimate):
                estimates.append(sampler.estimate)
        assert estimates
        assert float(np.mean(estimates)) == pytest.approx(target, abs=0.08)

    def test_noisier_oracle_lower_target(self, noisy_setup):
        __, predictions, labels, __probs, __flip = noisy_setup
        targets = []
        for flip in [0.0, 0.05, 0.15]:
            probs = labels * (1 - flip) + (1 - labels) * flip
            targets.append(noisy_target_f(probs, predictions))
        # More flip noise floods the denominator with phantom
        # positives: the target F strictly decreases.
        assert targets[0] > targets[1] > targets[2]
