"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    PaperEntityGenerator,
    ProductEntityGenerator,
    RestaurantEntityGenerator,
    generate_citation_dedup,
    generate_citation_pair,
    generate_product_pair,
    generate_restaurant_pair,
    generate_tweets,
)
from repro.pipeline import MatchRelation, cross_product_pairs, dedup_pairs


class TestEntityGenerators:
    def test_product_fields(self):
        entities = ProductEntityGenerator(0).generate(10)
        assert len(entities) == 10
        for e in entities:
            assert set(e) == {"entity_id", "name", "description", "price"}
            assert e["price"] > 0

    def test_paper_fields(self):
        entities = PaperEntityGenerator(0).generate(5)
        for e in entities:
            assert 1995 <= e["year"] < 2017
            assert e["venue_abbrev"]

    def test_restaurant_fields(self):
        entities = RestaurantEntityGenerator(0).generate(5)
        for e in entities:
            assert "street" in e["address"]

    def test_entity_ids_sequential(self):
        entities = ProductEntityGenerator(0).generate(7)
        assert [e["entity_id"] for e in entities] == list(range(7))

    def test_variants_share_series_name(self):
        entities = ProductEntityGenerator(0, variant_prob=0.9).generate(40)
        # With high variant probability, many entities share all but
        # the model code of their name.
        prefixes = [" ".join(e["name"].split()[:-1]) for e in entities]
        assert len(set(prefixes)) < len(prefixes)

    def test_variant_prob_validation(self):
        with pytest.raises(ValueError, match="variant_prob"):
            ProductEntityGenerator(0, variant_prob=1.5)

    def test_deterministic(self):
        a = ProductEntityGenerator(3).generate(5)
        b = ProductEntityGenerator(3).generate(5)
        assert a == b


class TestTwoSourceGenerators:
    @pytest.mark.parametrize(
        "generate",
        [generate_product_pair, generate_restaurant_pair, generate_citation_pair],
    )
    def test_overlap_controls_matches(self, generate):
        store_a, store_b = generate(60, overlap=0.5, random_state=0)
        pairs = cross_product_pairs(len(store_a), len(store_b))
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
        assert relation.n_matches == 30

    @pytest.mark.parametrize(
        "generate",
        [generate_product_pair, generate_restaurant_pair, generate_citation_pair],
    )
    def test_zero_overlap_no_matches(self, generate):
        store_a, store_b = generate(30, overlap=0.0, random_state=0)
        pairs = cross_product_pairs(len(store_a), len(store_b))
        relation = MatchRelation.from_entity_ids(store_a, store_b, pairs)
        assert relation.n_matches == 0

    def test_invalid_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            generate_product_pair(10, overlap=1.5)

    def test_matched_records_similar_but_not_identical(self):
        store_a, store_b = generate_product_pair(
            40, overlap=1.0, noise_level=1.0, random_state=0
        )
        ids_a = store_a.entity_ids()
        ids_b = store_b.entity_ids()
        differing = 0
        for i, eid in enumerate(ids_a):
            j = int(np.nonzero(ids_b == eid)[0][0])
            if store_a[i].fields != store_b[j].fields:
                differing += 1
        assert differing > len(store_a) / 2

    def test_reproducible(self):
        a1, b1 = generate_product_pair(20, random_state=5)
        a2, b2 = generate_product_pair(20, random_state=5)
        assert [r.fields for r in a1] == [r.fields for r in a2]
        assert [r.fields for r in b1] == [r.fields for r in b2]


class TestDedupGenerator:
    def test_duplicate_clusters_exist(self):
        store = generate_citation_dedup(50, mean_duplicates=3.0, random_state=0)
        ids = store.entity_ids()
        __, counts = np.unique(ids, return_counts=True)
        assert counts.max() >= 2
        assert len(store) > 50

    def test_matching_pairs_from_clusters(self):
        store = generate_citation_dedup(40, mean_duplicates=3.0, random_state=1)
        pairs = dedup_pairs(len(store))
        relation = MatchRelation.from_entity_ids(store, store, pairs)
        assert relation.n_matches > 0
        # Mild imbalance: far less extreme than two-source ER.
        assert relation.imbalance_ratio < 500

    def test_mean_duplicates_validation(self):
        with pytest.raises(ValueError, match="mean_duplicates"):
            generate_citation_dedup(10, mean_duplicates=0.5)


class TestTweets:
    def test_shapes(self):
        X, y = generate_tweets(500, random_state=0)
        assert X.shape == (500, 4)
        assert y.shape == (500,)

    def test_balanced(self):
        __, y = generate_tweets(2000, random_state=0)
        assert y.mean() == pytest.approx(0.5, abs=0.02)

    def test_fraction_control(self):
        __, y = generate_tweets(2000, positive_fraction=0.2, random_state=0)
        assert y.mean() == pytest.approx(0.2, abs=0.02)

    def test_separation_makes_classes_separable(self):
        X, y = generate_tweets(3000, separation=4.0, random_state=0)
        centre_pos = X[y == 1].mean(axis=0)
        centre_neg = X[y == 0].mean(axis=0)
        assert np.linalg.norm(centre_pos - centre_neg) > 3.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError, match="positive_fraction"):
            generate_tweets(100, positive_fraction=0.0)
