"""Tests for the callback oracle adapter."""

import numpy as np
import pytest

from repro.core import OASISSampler
from repro.oracle import CallbackOracle


class TestCallbackOracle:
    def test_delegates_to_callable(self):
        labels = [1, 0, 1]
        oracle = CallbackOracle(lambda i: labels[i])
        assert [oracle.label(i) for i in range(3)] == labels

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError, match="callable"):
            CallbackOracle("not a function")

    def test_rejects_bad_probability_fn(self):
        with pytest.raises(TypeError, match="probability_fn"):
            CallbackOracle(lambda i: 1, probability_fn=0.5)

    def test_non_binary_return_rejected(self):
        oracle = CallbackOracle(lambda i: 2)
        with pytest.raises(ValueError, match="must be 0 or 1"):
            oracle.label(0)

    def test_probability_without_fn_raises(self):
        oracle = CallbackOracle(lambda i: 1)
        with pytest.raises(NotImplementedError):
            oracle.probability(0)

    def test_probability_with_fn(self):
        oracle = CallbackOracle(lambda i: 1, probability_fn=lambda i: 0.75)
        assert oracle.probability(0) == pytest.approx(0.75)

    def test_boolean_returns_coerced(self):
        oracle = CallbackOracle(lambda i: i > 1)
        assert oracle.label(0) == 0
        assert oracle.label(2) == 1

    def test_drives_oasis(self, imbalanced_pool):
        pool = imbalanced_pool
        truth = pool["true_labels"]
        calls = []

        def annotate(index):
            calls.append(index)
            return int(truth[index])

        sampler = OASISSampler(
            pool["predictions"], pool["scores"], CallbackOracle(annotate),
            random_state=0,
        )
        sampler.sample_until_budget(100)
        # One callback invocation per distinct label (caching upstream).
        assert len(calls) == sampler.labels_consumed == 100
