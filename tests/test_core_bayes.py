"""Tests for the stratified Beta-Bernoulli model (section 4.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BetaBernoulliModel


def uniform_prior(k=3, strength=2.0):
    return strength * np.vstack([np.full(k, 0.5), np.full(k, 0.5)])


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(2, K\)"):
            BetaBernoulliModel(np.ones((3, 4)))

    def test_positivity_validation(self):
        bad = np.array([[1.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="positive"):
            BetaBernoulliModel(bad)

    def test_n_strata(self):
        model = BetaBernoulliModel(uniform_prior(7))
        assert model.n_strata == 7


class TestUpdates:
    def test_posterior_mean_prior_only(self):
        model = BetaBernoulliModel(uniform_prior(2))
        np.testing.assert_allclose(model.posterior_mean(), [0.5, 0.5])

    def test_match_label_raises_mean(self):
        model = BetaBernoulliModel(uniform_prior(2))
        model.update(0, 1)
        mean = model.posterior_mean()
        assert mean[0] > 0.5
        assert mean[1] == pytest.approx(0.5)

    def test_nonmatch_label_lowers_mean(self):
        model = BetaBernoulliModel(uniform_prior(2))
        model.update(1, 0)
        assert model.posterior_mean()[1] < 0.5

    def test_conjugate_update_arithmetic(self):
        # Beta(1,1) + 3 matches + 1 non-match = Beta(4, 2) -> mean 2/3.
        prior = np.array([[1.0], [1.0]])
        model = BetaBernoulliModel(prior)
        for __ in range(3):
            model.update(0, 1)
        model.update(0, 0)
        assert model.posterior_mean()[0] == pytest.approx(4.0 / 6.0)

    def test_labels_per_stratum(self):
        model = BetaBernoulliModel(uniform_prior(3))
        model.update(0, 1)
        model.update(0, 0)
        model.update(2, 1)
        np.testing.assert_array_equal(model.labels_per_stratum, [2, 0, 1])

    def test_invalid_stratum(self):
        model = BetaBernoulliModel(uniform_prior(2))
        with pytest.raises(IndexError):
            model.update(5, 1)

    def test_invalid_label(self):
        model = BetaBernoulliModel(uniform_prior(2))
        with pytest.raises(ValueError, match="label"):
            model.update(0, 2)

    def test_reset(self):
        model = BetaBernoulliModel(uniform_prior(2))
        model.update(0, 1)
        model.reset()
        np.testing.assert_allclose(model.posterior_mean(), [0.5, 0.5])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 1)), max_size=60))
    def test_property_mean_in_unit_interval(self, updates):
        model = BetaBernoulliModel(uniform_prior(3))
        for stratum, label in updates:
            model.update(stratum, label)
        mean = model.posterior_mean()
        assert np.all((mean > 0) & (mean < 1))

    def test_posterior_concentrates_on_truth(self):
        rng = np.random.default_rng(0)
        true_pi = 0.2
        model = BetaBernoulliModel(uniform_prior(1, strength=2.0))
        for __ in range(2000):
            model.update(0, int(rng.random() < true_pi))
        assert model.posterior_mean()[0] == pytest.approx(true_pi, abs=0.03)


class TestDecayingPrior:
    def test_no_labels_equals_plain_prior(self):
        prior = uniform_prior(2, strength=10.0)
        plain = BetaBernoulliModel(prior)
        decayed = BetaBernoulliModel(prior, decaying_prior=True)
        np.testing.assert_allclose(plain.posterior_mean(), decayed.posterior_mean())

    def test_decay_weakens_prior_influence(self):
        # A badly misspecified prior (pi ~ 0.9) against all-zero labels:
        # the decaying model must approach 0 much faster.
        prior = 20.0 * np.vstack([[0.9, 0.9], [0.1, 0.1]])
        plain = BetaBernoulliModel(prior)
        decayed = BetaBernoulliModel(prior, decaying_prior=True)
        for __ in range(10):
            plain.update(0, 0)
            decayed.update(0, 0)
        assert decayed.posterior_mean()[0] < plain.posterior_mean()[0]

    def test_decay_only_affects_sampled_strata(self):
        prior = uniform_prior(2, strength=8.0)
        model = BetaBernoulliModel(prior, decaying_prior=True)
        model.update(0, 1)
        # Stratum 1 has no labels: prior untouched.
        assert model.posterior_mean()[1] == pytest.approx(0.5)

    def test_gamma_matrix_shape(self):
        model = BetaBernoulliModel(uniform_prior(4), decaying_prior=True)
        assert model.gamma.shape == (2, 4)


class TestUncertainty:
    def test_variance_shrinks_with_data(self):
        model = BetaBernoulliModel(uniform_prior(1))
        before = model.posterior_variance()[0]
        for __ in range(50):
            model.update(0, 1)
        after = model.posterior_variance()[0]
        assert after < before

    def test_credible_interval_contains_mean(self):
        model = BetaBernoulliModel(uniform_prior(3))
        model.update(0, 1)
        interval = model.credible_interval(0.9)
        mean = model.posterior_mean()
        assert np.all(interval[0] <= mean)
        assert np.all(mean <= interval[1])

    def test_credible_interval_level_validation(self):
        model = BetaBernoulliModel(uniform_prior(1))
        with pytest.raises(ValueError):
            model.credible_interval(1.0)
