"""Unit tests for the ratio-measure abstraction (ISSUE 5 tentpole).

Each measure is checked against a hand-computed value on explicit
confusion counts, its gradient against central finite differences, its
degenerate-denominator behaviour (NaN, never an exception), and its
spec round-trip.  The F-measure's closed-form instrumental profile is
verified to coincide with the generic gradient-based derivation of the
base class — the sense in which paper Eqn (5) "falls out" of the
measure abstraction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measures import ConfusionCounts
from repro.measures.ratio import (
    MEASURE_KINDS,
    Accuracy,
    BalancedAccuracy,
    FMeasure,
    LinearRatioMeasure,
    Precision,
    RatioMeasure,
    Recall,
    Specificity,
    WeightedRelativeAccuracy,
    mass_to_moment_coefficients,
    measure_from_spec,
    resolve_measure,
)

COUNTS = ConfusionCounts(tp=30.0, fp=10.0, fn=20.0, tn=140.0)

EXPECTED = {
    "precision": 30.0 / 40.0,
    "recall": 30.0 / 50.0,
    "accuracy": 170.0 / 200.0,
    "specificity": 140.0 / 150.0,
    "balanced_accuracy": 0.5 * (30.0 / 50.0) + 0.5 * (140.0 / 150.0),
    "wracc": 30.0 / 200.0 - (40.0 / 200.0) * (50.0 / 200.0),
}


def moments(counts: ConfusionCounts) -> tuple:
    return (
        counts.tp,
        counts.predicted_positives,
        counts.actual_positives,
        counts.total,
    )


class TestValues:
    @pytest.mark.parametrize("kind", sorted(EXPECTED))
    def test_hand_computed(self, kind):
        measure = MEASURE_KINDS[kind]()
        assert measure.value_from_counts(COUNTS) == pytest.approx(EXPECTED[kind])

    def test_fmeasure_matches_family(self):
        for alpha in (0.0, 0.25, 0.5, 1.0):
            expected = COUNTS.tp / (
                alpha * COUNTS.predicted_positives
                + (1 - alpha) * COUNTS.actual_positives
            )
            assert FMeasure(alpha).value_from_counts(COUNTS) == pytest.approx(
                expected
            )

    def test_precision_recall_are_f_extremes(self):
        assert Precision().value_from_counts(COUNTS) == FMeasure(
            1.0
        ).value_from_counts(COUNTS)
        assert Recall().value_from_counts(COUNTS) == FMeasure(
            0.0
        ).value_from_counts(COUNTS)

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(0)
        tp = rng.random(50) * 10
        extra_p = rng.random(50) * 10
        extra_a = rng.random(50) * 10
        extra_t = rng.random(50) * 10
        predicted = tp + extra_p
        actual = tp + extra_a
        total = predicted + extra_a + extra_t
        for kind, cls in MEASURE_KINDS.items():
            measure = cls()
            vector = np.asarray(
                measure.value_from_moments(tp, predicted, actual, total)
            )
            for i in range(0, 50, 7):
                scalar = float(
                    measure.value_from_moments(
                        tp[i], predicted[i], actual[i], total[i]
                    )
                )
                assert scalar == vector[i] or (
                    np.isnan(scalar) and np.isnan(vector[i])
                ), kind

    def test_labelled_data_evaluation(self):
        true = [1, 1, 0, 0, 1, 0]
        pred = [1, 0, 1, 0, 1, 0]
        # tp=2 fp=1 fn=1 tn=2
        assert Accuracy().value(true, pred) == pytest.approx(4.0 / 6.0)
        assert Precision().value(true, pred) == pytest.approx(2.0 / 3.0)


class TestDegenerate:
    def test_zero_denominators_are_nan(self):
        zero = ConfusionCounts(0.0, 0.0, 0.0, 0.0)
        for kind, cls in MEASURE_KINDS.items():
            value = cls().value_from_counts(zero)
            assert np.isnan(value), kind

    def test_recall_without_positives(self):
        counts = ConfusionCounts(tp=0.0, fp=3.0, fn=0.0, tn=7.0)
        assert np.isnan(Recall().value_from_counts(counts))
        assert not np.isnan(Precision().value_from_counts(counts))

    def test_specificity_without_negatives(self):
        counts = ConfusionCounts(tp=5.0, fp=0.0, fn=5.0, tn=0.0)
        assert np.isnan(Specificity().value_from_counts(counts))
        assert np.isnan(BalancedAccuracy().value_from_counts(counts))

    def test_gradient_nan_when_undefined(self):
        for kind, cls in MEASURE_KINDS.items():
            gradient = cls().moment_gradient(0.0, 0.0, 0.0, 0.0)
            assert np.all(np.isnan(gradient)), kind

    def test_clamp_respects_bounds(self):
        # Roundoff-style overshoot is pulled back into bounds on the
        # estimator (clamp=True) path only.
        measure = FMeasure(0.5)
        assert float(
            measure.value_from_moments(1.0 + 1e-9, 1.0, 1.0, 2.0)
        ) == 1.0
        assert float(
            measure.value_from_moments(1.0 + 1e-9, 1.0, 1.0, 2.0, clamp=False)
        ) > 1.0

    def test_wracc_bounds(self):
        assert WeightedRelativeAccuracy().bounds == (-0.25, 0.25)

    def test_custom_linear_bounds_are_derived(self):
        # (TP - FP) / (TP + FP) ranges over [-1, 1]; the clamp must use
        # the derived range, not a hard-coded [0, 1].
        contrast = LinearRatioMeasure(
            numerator=(1.0, -1.0, 0.0, 0.0), denominator=(1.0, 1.0, 0.0, 0.0)
        )
        assert contrast.bounds == (-1.0, 1.0)
        counts = ConfusionCounts(tp=1.0, fp=3.0, fn=0.0, tn=0.0)
        assert contrast.value_from_counts(counts, clamp=True) == pytest.approx(
            -0.5
        )
        # Zero-denominator cells with positive numerator mass push the
        # bound to infinity instead of inventing a finite clamp.
        unbounded = LinearRatioMeasure(
            numerator=(1.0, 0.0, 1.0, 0.0), denominator=(1.0, 1.0, 0.0, 0.0)
        )
        assert unbounded.bounds == (0.0, np.inf)
        # The classical measures still derive exactly (0, 1).
        for kind in ("precision", "recall", "accuracy", "specificity"):
            assert MEASURE_KINDS[kind]().bounds == (0.0, 1.0), kind
        for alpha in (0.0, 0.3, 1.0):
            assert FMeasure(alpha).bounds == (0.0, 1.0)

    def test_scalar_fast_path_matches_vectorised(self):
        rng = np.random.default_rng(11)
        for __ in range(200):
            tp = float(rng.random() * 5)
            predicted = tp + float(rng.random() * 5)
            actual = tp + float(rng.random() * 5)
            total = predicted + actual - tp + float(rng.random() * 5)
            for kind, cls in MEASURE_KINDS.items():
                measure = cls()
                for clamp in (True, False):
                    fast = measure.value_from_sums(
                        tp, predicted, actual, total, clamp=clamp
                    )
                    slow = float(
                        measure.value_from_moments(
                            tp, predicted, actual, total, clamp=clamp
                        )
                    )
                    assert fast == slow or (
                        np.isnan(fast) and np.isnan(slow)
                    ), (kind, clamp)

    def test_f_instrumental_nan_estimate_falls_back_to_base(self):
        base = np.array([0.25, 0.75])
        weights = FMeasure(0.5).instrumental_weights(
            base, np.array([1.0, 0.0]), np.array([0.5, 0.5]), float("nan")
        )
        np.testing.assert_array_equal(weights, base)
        assert weights is not base  # a copy, per the contract

    def test_uses_true_negatives(self):
        positive_only = {"fmeasure", "precision", "recall"}
        for kind, cls in MEASURE_KINDS.items():
            assert cls().uses_true_negatives == (
                kind not in positive_only
            ), kind


class TestGradients:
    @pytest.mark.parametrize("kind", sorted(MEASURE_KINDS))
    def test_matches_finite_differences(self, kind):
        measure = MEASURE_KINDS[kind]()
        point = np.array(moments(COUNTS), dtype=float)
        gradient = np.asarray(measure.moment_gradient(*point), dtype=float)
        step = 1e-5
        for axis in range(4):
            offset = np.zeros(4)
            offset[axis] = step
            high = float(
                measure.value_from_moments(*(point + offset), clamp=False)
            )
            low = float(
                measure.value_from_moments(*(point - offset), clamp=False)
            )
            numeric = (high - low) / (2 * step)
            assert gradient[axis] == pytest.approx(numeric, abs=1e-6), (
                kind,
                axis,
            )

    def test_mass_gradient_is_cellwise(self):
        # Perturbing one confusion cell moves the value by the mass
        # gradient component for that cell.
        measure = BalancedAccuracy()
        gradient = measure.mass_gradient(*moments(COUNTS))
        step = 1e-5
        perturbations = {
            0: ConfusionCounts(COUNTS.tp + step, COUNTS.fp, COUNTS.fn, COUNTS.tn),
            1: ConfusionCounts(COUNTS.tp, COUNTS.fp + step, COUNTS.fn, COUNTS.tn),
            2: ConfusionCounts(COUNTS.tp, COUNTS.fp, COUNTS.fn + step, COUNTS.tn),
            3: ConfusionCounts(COUNTS.tp, COUNTS.fp, COUNTS.fn, COUNTS.tn + step),
        }
        base = measure.value_from_counts(COUNTS)
        for cell, counts in perturbations.items():
            numeric = (measure.value_from_counts(counts) - base) / step
            assert gradient[cell] == pytest.approx(numeric, abs=1e-6)

    def test_moment_conversion_is_exact_for_f(self):
        alpha = 0.3
        derived = mass_to_moment_coefficients((1.0, alpha, 1.0 - alpha, 0.0))
        assert derived[0] == 0.0
        assert derived[1] == alpha
        assert derived[2] == 1.0 - alpha
        assert derived[3] == 0.0


class TestInstrumentalProfiles:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 12),
        st.floats(0.01, 0.99),
        st.floats(0.0, 1.0),
        st.integers(0, 2**16),
    )
    def test_f_closed_form_matches_generic_gradient(self, k, f, alpha, seed):
        """Paper Eqn (5) falls out of the generic gradient derivation."""
        rng = np.random.default_rng(seed)
        base = rng.random(k) + 1e-3
        base = base / base.sum()
        predictions = rng.random(k)
        probabilities = rng.random(k)
        measure = FMeasure(alpha)
        closed = measure.instrumental_weights(
            base, predictions, probabilities, f
        )
        generic = LinearRatioMeasure.instrumental_weights(
            measure, base, predictions, probabilities, f
        )
        np.testing.assert_allclose(closed, generic, atol=1e-12, rtol=1e-9)

    def test_recall_profile_differs_from_f(self):
        base = np.full(4, 0.25)
        predictions = np.array([1.0, 1.0, 0.0, 0.0])
        probabilities = np.array([0.9, 0.2, 0.6, 0.05])
        f_weights = FMeasure(0.5).instrumental_weights(
            base, predictions, probabilities, 0.7
        )
        r_weights = Recall().instrumental_weights(
            base, predictions, probabilities, 0.7
        )
        f_norm = f_weights / f_weights.sum()
        r_norm = r_weights / r_weights.sum()
        assert np.max(np.abs(f_norm - r_norm)) > 1e-3

    def test_nonlinear_measure_produces_valid_weights(self):
        rng = np.random.default_rng(1)
        base = rng.random(8)
        base /= base.sum()
        predictions = rng.random(8)
        probabilities = rng.random(8)
        for measure in (BalancedAccuracy(), WeightedRelativeAccuracy()):
            weights = measure.instrumental_weights(
                base, predictions, probabilities, 0.5
            )
            assert weights.shape == (8,)
            assert np.all(np.isfinite(weights))
            assert np.all(weights >= 0)

    def test_degenerate_gradient_falls_back_to_base(self):
        base = np.array([0.5, 0.5])
        # No actual-positive mass: balanced accuracy has no gradient.
        weights = BalancedAccuracy().instrumental_weights(
            base, np.array([0.0, 0.0]), np.array([0.0, 0.0]), 0.5
        )
        np.testing.assert_array_equal(weights, base)


class TestSpecsAndRegistry:
    @pytest.mark.parametrize("kind", sorted(MEASURE_KINDS))
    def test_spec_round_trip(self, kind):
        measure = MEASURE_KINDS[kind]()
        clone = measure_from_spec(measure.spec())
        assert clone == measure
        assert clone.name == measure.name

    def test_fmeasure_spec_keeps_alpha(self):
        clone = measure_from_spec({"kind": "fmeasure", "alpha": 0.125})
        assert isinstance(clone, FMeasure)
        assert clone.alpha == 0.125
        assert clone != FMeasure(0.5)

    def test_string_spec(self):
        assert measure_from_spec("recall") == Recall()

    def test_generic_linear_spec(self):
        custom = LinearRatioMeasure(
            numerator=(1.0, 0.0, 0.0, 0.0), denominator=(1.0, 2.0, 0.5, 0.0)
        )
        clone = measure_from_spec(custom.spec())
        assert clone == custom

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown measure kind"):
            measure_from_spec("gini")
        with pytest.raises(ValueError, match="unknown measure kind"):
            measure_from_spec({"kind": "gini"})

    def test_resolve_rejects_both(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_measure(Recall(), 0.5)

    def test_resolve_defaults(self):
        assert resolve_measure(None, None) == FMeasure(0.5)
        assert resolve_measure(None, 0.25) == FMeasure(0.25)
        assert resolve_measure("accuracy", None) == Accuracy()

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            FMeasure(1.5)

    def test_negative_denominator_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LinearRatioMeasure((1, 0, 0, 0), (1, -1, 0, 0))

    def test_measures_are_value_objects(self):
        assert len({FMeasure(0.5), FMeasure(0.5), Recall()}) == 2
        assert isinstance(Recall(), RatioMeasure)
