"""Tests for the instrumental distributions (Eqns 5, 6, 12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    epsilon_greedy,
    optimal_instrumental_pointwise,
    stratified_optimal_instrumental,
)
from repro.utils import normalise


class TestPointwiseOptimal:
    def test_is_probability_vector(self):
        q = optimal_instrumental_pointwise(
            normalise(np.ones(6)),
            [1, 1, 0, 0, 1, 0],
            [0.9, 0.2, 0.05, 0.5, 0.99, 0.01],
            f_measure=0.7,
        )
        assert q.sum() == pytest.approx(1.0)
        assert np.all(q >= 0)

    def test_nan_f_falls_back_to_underlying(self):
        p = normalise([1.0, 2.0, 3.0])
        q = optimal_instrumental_pointwise(p, [1, 0, 1], [0.5, 0.5, 0.5], float("nan"))
        np.testing.assert_allclose(q, p)

    def test_zero_probability_nonpredicted_gets_zero_mass(self):
        # l-hat = 0 and p(1|z) = 0: the item cannot contribute to F.
        q = optimal_instrumental_pointwise(
            normalise(np.ones(3)), [0, 1, 1], [0.0, 0.5, 0.5], 0.5
        )
        assert q[0] == pytest.approx(0.0)

    def test_predicted_positive_weighted_higher(self):
        # Same oracle probability: a predicted positive carries both FP
        # and TP risk and should receive more mass than a non-predicted
        # item at moderate p.
        q = optimal_instrumental_pointwise(
            normalise(np.ones(2)), [1, 0], [0.5, 0.5], 0.5
        )
        assert q[0] > q[1]

    def test_alpha_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            optimal_instrumental_pointwise(
                normalise(np.ones(2)), [1, 0], [0.5, 0.5], 0.5, alpha=2.0
            )


class TestStratifiedOptimal:
    def test_matches_pointwise_on_singleton_strata(self):
        # With one item per stratum the stratified formula reduces to
        # the pointwise one.
        predictions = np.array([1, 0, 1, 0])
        probs = np.array([0.9, 0.3, 0.6, 0.05])
        weights = normalise(np.ones(4))
        f = 0.6
        pointwise = optimal_instrumental_pointwise(weights, predictions, probs, f)
        stratified = stratified_optimal_instrumental(weights, predictions, probs, f)
        np.testing.assert_allclose(stratified, pointwise, atol=1e-12)

    def test_probability_vector(self):
        v = stratified_optimal_instrumental(
            [0.8, 0.15, 0.05], [0.0, 0.5, 1.0], [0.01, 0.4, 0.95], 0.5
        )
        assert v.sum() == pytest.approx(1.0)

    def test_nan_f_gives_weights(self):
        omega = np.array([0.5, 0.3, 0.2])
        v = stratified_optimal_instrumental(omega, [0, 1, 1], [0.1, 0.5, 0.9], float("nan"))
        np.testing.assert_allclose(v, omega)

    def test_pure_negative_stratum_mass_scales_with_pi(self):
        # Non-predicted strata matter only through possible FNs: mass
        # grows with pi.
        v = stratified_optimal_instrumental(
            [0.5, 0.5], [0.0, 0.0], [0.01, 0.49], 0.5
        )
        assert v[1] > v[0]

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(2, 10),
        st.floats(0.01, 0.99),
        st.floats(0, 1),
    )
    def test_property_valid_distribution(self, k, f, alpha):
        rng = np.random.default_rng(k)
        omega = normalise(rng.random(k) + 1e-3)
        lam = rng.random(k)
        pi = rng.random(k)
        v = stratified_optimal_instrumental(omega, lam, pi, f, alpha=alpha)
        assert v.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(v >= 0)


class TestEpsilonGreedy:
    def test_epsilon_one_is_underlying(self):
        optimal = np.array([1.0, 0.0])
        underlying = np.array([0.5, 0.5])
        np.testing.assert_allclose(
            epsilon_greedy(optimal, underlying, 1.0), underlying
        )

    def test_lower_bound_guarantee(self):
        # q >= epsilon * p everywhere (Remark 5's consistency condition).
        optimal = np.array([1.0, 0.0, 0.0])
        underlying = normalise(np.ones(3))
        for eps in [1e-3, 0.1, 0.5]:
            q = epsilon_greedy(optimal, underlying, eps)
            assert np.all(q >= eps * underlying - 1e-15)

    def test_preserves_total_mass(self):
        optimal = normalise([3.0, 1.0, 1.0])
        underlying = normalise(np.ones(3))
        q = epsilon_greedy(optimal, underlying, 0.2)
        assert q.sum() == pytest.approx(1.0)

    def test_epsilon_zero_rejected(self):
        with pytest.raises(ValueError, match="epsilon"):
            epsilon_greedy(np.ones(2) / 2, np.ones(2) / 2, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            epsilon_greedy(np.ones(2) / 2, np.ones(3) / 3, 0.5)
