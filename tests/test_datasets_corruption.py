"""Tests for the record-corruption noise model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets import (
    abbreviate_tokens,
    corrupt_string,
    drop_tokens,
    perturb_number,
    typo_string,
)

words = st.text(alphabet="abcdef ", min_size=1, max_size=30)


class TestTypoString:
    def test_zero_typos_identity(self):
        rng = np.random.default_rng(0)
        assert typo_string("hello world", 0, rng) == "hello world"

    def test_single_typo_changes_little(self):
        rng = np.random.default_rng(0)
        out = typo_string("abcdefgh", 1, rng)
        assert abs(len(out) - 8) <= 1

    def test_never_crashes_on_empty(self):
        rng = np.random.default_rng(0)
        out = typo_string("", 3, rng)
        assert isinstance(out, str)

    @given(words, st.integers(0, 5))
    def test_property_returns_string(self, text, n):
        out = typo_string(text, n, np.random.default_rng(0))
        assert isinstance(out, str)

    def test_deterministic_given_rng(self):
        a = typo_string("determinism", 3, np.random.default_rng(9))
        b = typo_string("determinism", 3, np.random.default_rng(9))
        assert a == b


class TestAbbreviateTokens:
    def test_prob_one_abbreviates_all_long_tokens(self):
        rng = np.random.default_rng(0)
        out = abbreviate_tokens("john michael smith", 1.0, rng)
        assert out == "j m s"

    def test_prob_zero_identity(self):
        rng = np.random.default_rng(0)
        assert abbreviate_tokens("john smith", 0.0, rng) == "john smith"

    def test_single_letter_tokens_kept(self):
        rng = np.random.default_rng(0)
        assert abbreviate_tokens("a b", 1.0, rng) == "a b"


class TestDropTokens:
    def test_prob_zero_identity(self):
        rng = np.random.default_rng(0)
        assert drop_tokens("keep all tokens", 0.0, rng) == "keep all tokens"

    def test_never_empties(self):
        rng = np.random.default_rng(0)
        for __ in range(20):
            out = drop_tokens("one two three", 0.99, rng)
            assert len(out.split()) >= 1

    def test_empty_input_passthrough(self):
        rng = np.random.default_rng(0)
        assert drop_tokens("", 0.5, rng) == ""


class TestPerturbNumber:
    def test_zero_noise_identity(self):
        rng = np.random.default_rng(0)
        assert perturb_number(10.0, 0.0, rng) == pytest.approx(10.0)

    def test_missing_prob_one(self):
        rng = np.random.default_rng(0)
        assert perturb_number(10.0, 0.1, rng, missing_prob=1.0) is None

    def test_noise_scale(self):
        rng = np.random.default_rng(0)
        draws = [perturb_number(100.0, 0.05, rng) for __ in range(500)]
        assert np.std(draws) == pytest.approx(5.0, rel=0.3)


class TestCorruptString:
    def test_no_noise_identity(self):
        rng = np.random.default_rng(0)
        out = corrupt_string("pristine text", rng, typo_rate=0.0)
        assert out == "pristine text"

    def test_missing(self):
        rng = np.random.default_rng(0)
        assert corrupt_string("x", rng, missing_prob=1.0) is None

    def test_higher_rate_more_damage(self):
        base = "the quick brown fox jumps over the lazy dog"
        light_changes = 0
        heavy_changes = 0
        for seed in range(30):
            light = corrupt_string(base, np.random.default_rng(seed), typo_rate=0.01)
            heavy = corrupt_string(base, np.random.default_rng(seed), typo_rate=0.2)
            light_changes += light != base
            heavy_changes += heavy != base
        assert heavy_changes >= light_changes

    @given(words)
    def test_property_type_stable(self, text):
        out = corrupt_string(
            text, np.random.default_rng(1), typo_rate=0.1, drop_prob=0.1
        )
        assert out is None or isinstance(out, str)
